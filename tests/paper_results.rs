//! Reproduction checks for the paper's headline numbers: these tests pin
//! the *shape* of every table and figure (who wins, by roughly what factor,
//! where the crossovers fall). EXPERIMENTS.md records the exact values.

use bittrans::benchmarks as bm;
use bittrans::prelude::*;

fn options() -> CompareOptions {
    CompareOptions { verify_vectors: 0, ..Default::default() }
}

/// Table I: conventional 9.4 ns / 479 gates, BLC 9.57 ns (one 18δ cycle) /
/// 518 gates, optimized 3.55 ns / 452 gates.
#[test]
fn table1_numbers() {
    let spec = bm::three_adds();
    let conv = baseline(&spec, 3, &options()).unwrap().implementation;
    let chained = blc(&spec, 1, &options()).unwrap().implementation;
    let opt = optimize(&spec, 3, &options()).unwrap().implementation;

    assert_eq!(conv.cycle_delta, 16);
    assert!((conv.cycle_ns - 9.4).abs() < 0.05);
    assert!((conv.area.total() - 479.0).abs() / 479.0 < 0.02);

    assert_eq!(chained.cycle_delta, 18);
    assert_eq!(chained.latency, 1);
    assert!((chained.area.total() - 518.0).abs() / 518.0 < 0.02);

    assert_eq!(opt.cycle_delta, 6);
    assert!((opt.cycle_ns - 3.55).abs() < 0.05);
    assert!((opt.area.total() - 452.0).abs() / 452.0 < 0.10);
    assert_eq!(opt.stored_bits, 5, "C5, E4 and the three carry-outs");

    // The orderings the paper's §2 narrative rests on:
    assert!(opt.cycle_ns < conv.cycle_ns / 2.0);
    assert!(opt.execution_ns < conv.execution_ns / 2.0);
    assert!((opt.execution_ns - chained.execution_ns).abs() < 1.5);
    assert!(opt.area.total() < conv.area.total());
    assert!(opt.area.total() < chained.area.total());
}

/// Fig. 3 h: 62 % cycle reduction at λ = 3 on the 8-addition DFG.
#[test]
fn fig3h_cycle_reduction() {
    let spec = bm::fig3_dfg();
    let cmp = compare(&spec, 3, &options()).unwrap();
    assert_eq!(cmp.original.cycle_delta, 8);
    assert_eq!(cmp.optimized.cycle_delta, 3);
    let saved = cmp.cycle_saved_pct();
    assert!((saved - 62.0).abs() < 3.0, "paper: 62 %, got {saved:.1} %");
}

/// Table II: every benchmark/latency pair saves a large fraction of the
/// cycle (the paper reports 41.75–84.67 %, average 67 %).
#[test]
fn table2_savings_shape() {
    let mut savings = Vec::new();
    for b in bm::table2_benchmarks() {
        for &latency in &b.latencies {
            let cmp = compare(&b.spec, latency, &options()).unwrap();
            let saved = cmp.cycle_saved_pct();
            assert!(saved > 40.0, "{} λ={latency}: only {saved:.1} % saved", b.name);
            savings.push(saved);
        }
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(avg > 60.0, "average saving {avg:.1} % below the paper's band");
}

/// Table II: savings grow (weakly) with latency per benchmark — "the cycle
/// length saved has grown with the circuit latency".
#[test]
fn savings_grow_with_latency() {
    for b in bm::table2_benchmarks() {
        let mut latencies = b.latencies.clone();
        latencies.sort_unstable();
        let mut prev = -1.0;
        for &latency in &latencies {
            let cmp = compare(&b.spec, latency, &options()).unwrap();
            let saved = cmp.cycle_saved_pct();
            assert!(
                saved >= prev - 7.0,
                "{}: saving dropped sharply {prev:.1} -> {saved:.1} at λ={latency}",
                b.name
            );
            prev = saved;
        }
    }
}

/// Table III: the ADPCM modules improve strongly with area close to or
/// below the baseline (the paper: 66 % faster, 4 % smaller on average).
#[test]
fn table3_shape() {
    for b in bm::table3_benchmarks() {
        for &latency in &b.latencies {
            let cmp = compare(&b.spec, latency, &options()).unwrap();
            assert!(cmp.cycle_saved_pct() > 30.0, "{}: {:.1} %", b.name, cmp.cycle_saved_pct());
            assert!(
                cmp.area_delta_pct() < 10.0,
                "{}: area grew {:.1} %",
                b.name,
                cmp.area_delta_pct()
            );
        }
    }
}

/// Fig. 4: the gap between the curves widens as λ grows, because the
/// baseline flattens at the slowest atomic operation while the optimized
/// cycle keeps shrinking.
#[test]
fn fig4_divergence() {
    let spec = bm::elliptic();
    let points = latency_sweep(&spec, 3..=15, &options()).expect("fig4 sweep");
    assert!(points.len() >= 12);
    let first = &points[0];
    let last = points.last().unwrap();
    let gap_first = first.original_ns - first.optimized_ns;
    let gap_last = last.original_ns - last.optimized_ns;
    assert!(gap_first > 0.0 && gap_last > 0.0);
    // Optimized cycle decreases monotonically (within rounding).
    for w in points.windows(2) {
        assert!(w[1].optimized_ns <= w[0].optimized_ns + 1e-9);
    }
    // The ratio original/optimized grows across the sweep.
    let r_first = first.original_ns / first.optimized_ns;
    let r_last = last.original_ns / last.optimized_ns;
    assert!(r_last > r_first * 1.5, "ratio should widen: {r_first:.2} -> {r_last:.2}");
}

/// The paper's §1 bullet points, as executable claims on the motivational
/// example.
#[test]
fn section1_claims() {
    let spec = bm::three_adds();
    let opt = optimize(&spec, 3, &options()).unwrap();
    // "clock cycle duration independent of the execution times of
    //  operations": 6δ cycle vs 16δ operations.
    assert!(opt.schedule.cycle < 16);
    // "one original operation may be executed in several cycles":
    let g_frags = opt
        .fragmented
        .per_source
        .values()
        .last()
        .unwrap()
        .iter()
        .map(|id| opt.schedule.cycle_of(*id).unwrap())
        .collect::<std::collections::BTreeSet<_>>();
    assert!(g_frags.len() >= 3);
    // "one operation may start before its predecessors complete": E's
    // first fragment runs in cycle 1 while C finishes in cycle 3.
    let sources: Vec<_> = opt.fragmented.per_source.keys().copied().collect();
    let c_last = opt.fragmented.per_source[&sources[0]]
        .iter()
        .map(|id| opt.schedule.cycle_of(*id).unwrap())
        .max()
        .unwrap();
    let e_first = opt.fragmented.per_source[&sources[1]]
        .iter()
        .map(|id| opt.schedule.cycle_of(*id).unwrap())
        .min()
        .unwrap();
    assert!(e_first < c_last);
}

/// Unconsecutive-cycle execution (the paper's unique capability) actually
/// occurs on the Fig. 3 DFG: some operation has fragments in cycles 1 and
/// 3 but not 2.
#[test]
fn unconsecutive_cycles_happen() {
    let spec = bm::fig3_dfg();
    let opt = optimize(&spec, 3, &options()).unwrap();
    let unconsecutive = opt.fragmented.per_source.values().any(|ids| {
        let cycles: std::collections::BTreeSet<u32> =
            ids.iter().map(|id| opt.schedule.cycle_of(*id).unwrap()).collect();
        cycles.contains(&1) && cycles.contains(&3) && !cycles.contains(&2)
    });
    // The balanced schedule places A in cycles 1 and 3 (paper Fig. 3 g).
    assert!(
        unconsecutive,
        "no operation executed in unconsecutive cycles:\n{}",
        opt.schedule.render(&opt.fragmented.spec)
    );
}
