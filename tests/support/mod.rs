//! Shared process harness for the CLI integration suites: locating the
//! compiled `bittrans` binary, running it, and driving a real `serve`
//! process over a loopback port. Each test crate compiles its own view
//! of this module and uses its own subset, hence the blanket allow.
#![allow(dead_code)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// The `bittrans` binary built alongside the test executable.
pub fn bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug|release/
    p.push(format!("bittrans{}", std::env::consts::EXE_SUFFIX));
    p
}

/// A path relative to the repository root.
pub fn repo(path: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(path)
}

/// Runs the binary with extra environment variables; returns
/// `(success, stdout, stderr)`.
pub fn run_env(args: &[&str], env: &[(&str, &str)]) -> (bool, String, String) {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    for (key, value) in env {
        cmd.env(key, value);
    }
    let out = cmd.output().expect("bittrans binary runs (build it with the test profile)");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Runs the binary with the ambient environment.
pub fn run(args: &[&str]) -> (bool, String, String) {
    run_env(args, &[])
}

/// A running `bittrans serve` process over a store, killed on drop so a
/// failing assert never leaks a listener.
pub struct ServerProc {
    child: Child,
    /// The `host:port` the server announced (port 0 resolved).
    pub addr: String,
}

impl ServerProc {
    /// Spawns `serve --addr 127.0.0.1:0 --cache-dir … --jobs …` and reads
    /// the resolved address off the banner line.
    pub fn start(cache_dir: &Path, jobs: usize) -> ServerProc {
        let jobs = jobs.to_string();
        let mut child = Command::new(bin())
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
                "--jobs",
                &jobs,
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("serve spawns");
        // The first stdout line announces the resolved port.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("serve announces its address");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected serve banner: {line}"))
            .to_string();
        ServerProc { child, addr }
    }

    /// Runs `bittrans client` against this server.
    pub fn client(&self, extra: &[&str]) -> (bool, String, String) {
        let mut args = vec!["client"];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--addr", &self.addr]);
        run(&args)
    }

    /// Asks the server to drain and exit, then reaps it.
    pub fn shutdown(mut self) {
        let (ok, stdout, stderr) = self.client(&["--shutdown"]);
        assert!(ok, "shutdown failed: {stderr}");
        assert!(stdout.contains("acknowledged"), "{stdout}");
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exited with {status}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
