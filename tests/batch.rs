//! Tier-1 coverage of the batch engine through the facade and the CLI:
//! `bittrans batch` over the shipped spec directory must agree with serial
//! `compare` runs, and a repeated engine batch must be 100 % cache hits.

use bittrans::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug|release/
    p.push(format!("bittrans{}", std::env::consts::EXE_SUFFIX));
    p
}

fn repo(path: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(path)
}

#[test]
fn facade_engine_batches_and_caches() {
    let spec = Spec::parse(
        "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
          C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
    )
    .unwrap();
    let engine = Engine::new(EngineOptions { workers: Some(2), ..Default::default() });
    let jobs: Vec<Job> = (2..=5).map(|latency| Job::new(spec.clone(), latency)).collect();

    let first = engine.run(jobs.clone());
    for (job, outcome) in jobs.iter().zip(&first.outcomes) {
        let direct = compare(&spec, job.latency, &CompareOptions::default()).unwrap();
        let batched = outcome.result.as_ref().as_ref().unwrap();
        assert_eq!(batched.optimized.cycle_ns, direct.optimized.cycle_ns);
        assert_eq!(batched.original.cycle_ns, direct.original.cycle_ns);
    }

    let second = engine.run(jobs);
    assert_eq!(second.stats.hit_rate(), 100.0);
}

#[test]
fn cli_batch_runs_a_directory_in_parallel() {
    let out = Command::new(bin())
        .args(["batch", repo("specs").to_str().unwrap(), "--latency", "4", "--jobs", "2"])
        .output()
        .expect("bittrans binary runs (build it with the test profile)");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("ewf_section"), "{stdout}");
    assert!(stdout.contains("saturating_mac"), "{stdout}");
    assert!(stdout.contains("engine:"), "{stdout}");
    assert!(stdout.contains("2 workers"), "{stdout}");

    // The CLI batch rows must agree with serial single-spec compare runs.
    for name in ["ewf_section", "saturating_mac"] {
        let src = std::fs::read_to_string(repo(&format!("specs/{name}.spec"))).unwrap();
        let spec = Spec::parse(&src).unwrap();
        let cmp = compare(&spec, 4, &CompareOptions::default()).unwrap();
        let row = stdout
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("no row for {name} in {stdout}"));
        let expect = format!("{:.2}", cmp.optimized.cycle_ns);
        assert!(row.contains(&expect), "row `{row}` missing optimized cycle {expect}");
    }
}

#[test]
fn cli_batch_rejects_zero_jobs() {
    let out = Command::new(bin())
        .args(["batch", repo("specs").to_str().unwrap(), "--jobs", "0"])
        .output()
        .expect("bittrans binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs"), "{stderr}");
}
