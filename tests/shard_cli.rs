//! End-to-end tests of `explore --shards K` against the compiled binary:
//! the sharded run's `--json` output must be byte-identical to the
//! single-process run on the same grid (after dropping the `elapsed_ms`
//! line, which differs even between two identical single-process runs),
//! the merged `EngineStats` totals must account for every deduplicated job
//! exactly once, and a worker killed mid-shard (the
//! `BITTRANS_SHARD_FAULT` hook) must not change a byte of the report.
//!
//! The remote-transport half drives `explore --workers` against spawned
//! `bittrans serve` processes: the same byte-identity contract over TCP,
//! plus flag validation and the unreachable-fleet fallback.

mod support;

use std::path::PathBuf;
use support::{repo, run_env, ServerProc};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bittrans_shardcli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Additionally blanks `workers`, which legitimately differs once a shard
/// died (its pool is no longer part of the sum) — the same normalization
/// `bittrans report normalize` applies.
fn strip_run_shape(json: &str) -> String {
    bittrans::engine::report::normalize_run_shape(json)
}

fn stat(json: &str, field: &str) -> u64 {
    // The stats block is the only object with these counters; grab the
    // first occurrence of `"<field>": N`.
    let needle = format!("\"{field}\": ");
    let start = json.find(&needle).unwrap_or_else(|| panic!("{field} in {json}")) + needle.len();
    json[start..].chars().take_while(char::is_ascii_digit).collect::<String>().parse().unwrap()
}

/// The paper grid both runs share: 2 specs × 3 latencies × 2 adders = 12
/// deduplicated jobs.
fn grid_args<'a>(cache: &'a str, extra: &[&'a str]) -> Vec<String> {
    let mut args: Vec<String> = vec![
        "explore".into(),
        repo("specs/ewf_section.spec").to_string_lossy().into_owned(),
        repo("specs/saturating_mac.spec").to_string_lossy().into_owned(),
        "--latency".into(),
        "3..5".into(),
        "--adders".into(),
        "rca,cla".into(),
        "--jobs".into(),
        "4".into(),
        "--cache-dir".into(),
        cache.into(),
        "--json".into(),
    ];
    args.extend(extra.iter().map(|s| (*s).to_string()));
    args
}

fn run_grid(cache: &std::path::Path, extra: &[&str], env: &[(&str, &str)]) -> (String, String) {
    let cache = cache.to_string_lossy().into_owned();
    let args = grid_args(&cache, extra);
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    let (ok, stdout, stderr) = run_env(&args, env);
    assert!(ok, "explore failed: {stderr}");
    (stdout, stderr)
}

#[test]
fn sharded_json_is_byte_identical_to_single_process() {
    let (dir_a, dir_b) = (temp_dir("diff_a"), temp_dir("diff_b"));
    let (single, _) = run_grid(&dir_a, &[], &[]);
    let (sharded, stderr) = run_grid(&dir_b, &["--shards", "4"], &[]);

    // Byte-identical modulo the run shape — including from_cache flags
    // and per-cell comparisons. The stage counters are part of the run
    // shape: four single-job shard batches share fewer stage prefixes
    // than one 12-job pool, without changing a result byte.
    assert_eq!(strip_run_shape(&single), strip_run_shape(&sharded));

    // Merged totals: every deduplicated job exactly once.
    assert_eq!(stat(&sharded, "jobs"), 12);
    assert_eq!(stat(&sharded, "cache_hits") + stat(&sharded, "cache_misses"), 12);
    assert_eq!(stat(&sharded, "cache_misses"), stat(&single, "cache_misses"));
    // All four workers reported in.
    for shard in 0..4 {
        assert!(stderr.contains(&format!("shard {shard}/4:")), "{stderr}");
    }
    assert!(!stderr.contains("failed"), "{stderr}");
}

#[test]
fn sharded_rerun_is_served_from_the_shared_store() {
    let dir = temp_dir("warm");
    run_grid(&dir, &["--shards", "3"], &[]);
    let (warm, _) = run_grid(&dir, &["--shards", "3"], &[]);
    assert_eq!(stat(&warm, "cache_hits"), 12, "{warm}");
    assert_eq!(stat(&warm, "cache_misses"), 0);
    assert!(warm.contains("\"hit_rate_pct\": 100.0"), "{warm}");
    assert!(warm.contains("\"from_cache\": true"));
    assert!(!warm.contains("\"from_cache\": false"));
    // And it matches a single-process warm run over a store with the same
    // content (modulo `workers`: an all-hits single-process batch reports
    // its idle pool as 1, the sharded run sums the three shard pools).
    let dir_single = temp_dir("warm_single");
    run_grid(&dir_single, &[], &[]);
    let (warm_single, _) = run_grid(&dir_single, &[], &[]);
    assert_eq!(strip_run_shape(&warm_single), strip_run_shape(&warm));
}

#[test]
fn killed_worker_is_detected_and_its_range_retried() {
    let (dir_a, dir_b) = (temp_dir("fault_a"), temp_dir("fault_b"));
    let (single, _) = run_grid(&dir_a, &[], &[]);
    // Shard 1 of 4 dies after one of its three jobs.
    let (sharded, stderr) =
        run_grid(&dir_b, &["--shards", "4"], &[("BITTRANS_SHARD_FAULT", "1:1")]);

    // The coordinator saw the abort, reported the gap, and retried it.
    assert!(stderr.contains("injected fault after 1 job(s)"), "{stderr}");
    assert!(stderr.contains("shard 1/4: failed"), "{stderr}");
    assert!(stderr.contains("retried 2 missing job(s) in-process"), "{stderr}");

    // The report is still bit-exact (workers legitimately differs: the
    // dead shard's pool is not in the sum).
    assert_eq!(strip_run_shape(&single), strip_run_shape(&sharded));
    assert_eq!(stat(&sharded, "jobs"), 12);
    assert_eq!(stat(&sharded, "cache_misses"), 12);
}

#[test]
fn worker_dead_on_arrival_loses_no_results() {
    let (dir_a, dir_b) = (temp_dir("doa_a"), temp_dir("doa_b"));
    let (single, _) = run_grid(&dir_a, &[], &[]);
    // Shard 2 aborts before completing anything: its whole range is a gap.
    let (sharded, stderr) =
        run_grid(&dir_b, &["--shards", "4"], &[("BITTRANS_SHARD_FAULT", "2:0")]);
    assert!(stderr.contains("shard 2/4: failed"), "{stderr}");
    assert!(stderr.contains("retried 3 missing job(s)"), "{stderr}");
    assert_eq!(strip_run_shape(&single), strip_run_shape(&sharded));
}

#[test]
fn single_shard_and_ephemeral_cache_dir_work() {
    // --shards 1 still goes through the worker protocol; without
    // --cache-dir the coordinator shards into a temporary store and cleans
    // it up.
    let spec = repo("specs/saturating_mac.spec");
    let (ok, stdout, stderr) = run_env(
        &["explore", spec.to_str().unwrap(), "--latency", "3..4", "--shards", "1", "--json"],
        &[],
    );
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stat(&stdout, "jobs"), 2);
    assert!(stderr.contains("shard 0/1:"), "{stderr}");
}

#[test]
fn remote_workers_match_single_process_byte_for_byte() {
    let (shared, dir_single) = (temp_dir("remote"), temp_dir("remote_single"));
    std::fs::create_dir_all(&shared).unwrap();
    let a = ServerProc::start(&shared, 1);
    let b = ServerProc::start(&shared, 1);
    let workers = format!("{},{}", a.addr, b.addr);

    let (single, _) = run_grid(&dir_single, &[], &[]);
    let (remote, stderr) = run_grid(&shared, &["--workers", &workers, "--shards", "2"], &[]);

    // Byte-identical modulo wall clock and pool shape (the remote merged
    // `workers` sums the fleet's batch pools, not one local pool).
    assert_eq!(strip_run_shape(&single), strip_run_shape(&remote));
    // run_grid passes --jobs, which remote dispatch cannot honor — the
    // CLI must say so instead of silently dropping the cap.
    assert!(stderr.contains("--jobs has no effect with --workers"), "{stderr}");
    assert_eq!(stat(&remote, "jobs"), 12);
    assert_eq!(stat(&remote, "cache_hits") + stat(&remote, "cache_misses"), 12);
    // Both shards dispatched, none failed, and the per-endpoint
    // attribution lines name the fleet.
    assert!(stderr.contains("shard 0/2:"), "{stderr}");
    assert!(stderr.contains("shard 1/2:"), "{stderr}");
    assert!(!stderr.contains("failed"), "{stderr}");
    assert!(
        stderr.contains(&format!("endpoint {}", a.addr))
            || stderr.contains(&format!("endpoint {}", b.addr)),
        "{stderr}"
    );

    // A warm remote rerun is served entirely from the shared store.
    let (warm, _) = run_grid(&shared, &["--workers", &workers, "--shards", "2"], &[]);
    assert_eq!(stat(&warm, "cache_hits"), 12, "{warm}");
    assert_eq!(stat(&warm, "cache_misses"), 0);
    assert!(warm.contains("\"hit_rate_pct\": 100.0"), "{warm}");

    a.shutdown();
    b.shutdown();
}

#[test]
fn unreachable_fleet_falls_back_to_in_process() {
    let (dir_a, dir_b) = (temp_dir("fallback_a"), temp_dir("fallback_b"));
    let (single, _) = run_grid(&dir_a, &[], &[]);
    // Port 1 on loopback refuses instantly; the run must complete via the
    // coordinator's in-process recomputation, not hang or fail.
    let (remote, stderr) = run_grid(&dir_b, &["--workers", "127.0.0.1:1", "--timeout", "2"], &[]);
    assert_eq!(strip_run_shape(&single), strip_run_shape(&remote));
    assert!(stderr.contains("the coordinator recomputes the range"), "{stderr}");
    assert!(stderr.contains("retried 12 missing job(s) in-process"), "{stderr}");
}

#[test]
fn workers_flag_is_validated() {
    let spec = repo("specs/saturating_mac.spec");
    let spec = spec.to_str().unwrap();
    let cache = temp_dir("workers_valid");
    let cache = cache.to_string_lossy().into_owned();

    // An empty endpoint list.
    let (ok, _, stderr) = run_env(&["explore", spec, "--workers", "", "--cache-dir", &cache], &[]);
    assert!(!ok);
    assert!(stderr.contains("at least one host:port"), "{stderr}");

    // Unparseable endpoints: no port, bad port.
    for bad in ["nohost", "h:notaport", "h:0", "a:1,,b:2"] {
        let (ok, _, stderr) =
            run_env(&["explore", spec, "--workers", bad, "--cache-dir", &cache], &[]);
        assert!(!ok, "`--workers {bad}` should be rejected");
        assert!(stderr.contains("error:"), "{stderr}");
    }

    // Remote dispatch without the shared store is refused up front.
    let (ok, _, stderr) = run_env(&["explore", spec, "--workers", "127.0.0.1:4850"], &[]);
    assert!(!ok);
    assert!(stderr.contains("--cache-dir"), "{stderr}");

    // A zero timeout is always a mistyped flag.
    let (ok, _, stderr) = run_env(
        &["explore", spec, "--workers", "127.0.0.1:4850", "--cache-dir", &cache, "--timeout", "0"],
        &[],
    );
    assert!(!ok);
    assert!(stderr.contains("--timeout must be at least 1"), "{stderr}");
}

#[test]
fn shard_worker_rejects_a_bad_manifest() {
    let dir = temp_dir("badmanifest");
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("manifest.json");
    std::fs::write(&manifest, "{\"schema\": 42}").unwrap();
    let (ok, _, stderr) = run_env(&["shard-worker", manifest.to_str().unwrap()], &[]);
    assert!(!ok);
    assert!(stderr.contains("schema"), "{stderr}");
}
