//! Property-based tests over the whole pipeline: for random specifications
//! and random latencies, every transformation stage must preserve
//! behaviour, every schedule must respect structure, and the cost model
//! must behave monotonically.

use bittrans::benchmarks::{random_spec, RandomSpecOptions};
use bittrans::prelude::*;
use bittrans::sched::fragment::verify_schedule;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel extraction preserves behaviour for arbitrary DFGs.
    #[test]
    fn prop_kernel_equivalent(seed in 0u64..500, ops in 4usize..14) {
        let spec = random_spec(seed, &RandomSpecOptions { ops, ..Default::default() });
        let kernel = extract(&spec).unwrap();
        prop_assert!(kernel.is_additive_form());
        check_equivalence(&spec, &kernel, seed ^ 0xAB, 40)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Fragmentation preserves behaviour at every feasible latency.
    #[test]
    fn prop_fragmentation_equivalent(seed in 0u64..500, latency in 1u32..6) {
        let spec = random_spec(seed, &RandomSpecOptions { ops: 8, ..Default::default() });
        let kernel = extract(&spec).unwrap();
        let f = fragment(&kernel, &FragmentOptions::with_latency(latency)).unwrap();
        check_equivalence(&spec, &f.spec, seed ^ 0xCD, 40)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Fragment schedules verify bit-exactly and respect data dependence.
    #[test]
    fn prop_schedules_verify(seed in 0u64..300, latency in 1u32..5) {
        let spec = random_spec(seed, &RandomSpecOptions { ops: 8, ..Default::default() });
        let kernel = extract(&spec).unwrap();
        let f = fragment(&kernel, &FragmentOptions::with_latency(latency)).unwrap();
        let s = schedule_fragments(&f, &FragmentScheduleOptions::default()).unwrap();
        prop_assert_eq!(verify_schedule(&f, &s), None);
        // Op-level dependence holds between non-glue producers and non-glue
        // consumers (glue is bit-level wiring: a consumer may legitimately
        // read a concatenation's low bits before its high inputs exist).
        let users = f.spec.users();
        for op in f.spec.ops() {
            if op.kind().is_glue() {
                continue;
            }
            let k = s.cycle_of(op.id()).unwrap();
            for (u, _) in users.get(&op.result()).into_iter().flatten() {
                if !f.spec.op(*u).kind().is_glue() {
                    prop_assert!(s.cycle_of(*u).unwrap() >= k);
                }
            }
        }
    }

    /// The optimized cycle length never increases when latency grows.
    #[test]
    fn prop_cycle_monotone_in_latency(seed in 0u64..200) {
        let spec = random_spec(seed, &RandomSpecOptions { ops: 8, ..Default::default() });
        let kernel = extract(&spec).unwrap();
        let mut prev = u32::MAX;
        for latency in 1..=6 {
            let f = fragment(&kernel, &FragmentOptions::with_latency(latency)).unwrap();
            prop_assert!(f.cycle <= prev, "λ={latency}: {} > {prev}", f.cycle);
            prev = f.cycle;
        }
    }

    /// Fragment widths partition every kernel addition exactly.
    #[test]
    fn prop_fragments_partition(seed in 0u64..300, latency in 1u32..6) {
        let spec = random_spec(seed, &RandomSpecOptions { ops: 8, ..Default::default() });
        let kernel = extract(&spec).unwrap();
        let f = fragment(&kernel, &FragmentOptions::with_latency(latency)).unwrap();
        for op in kernel.ops() {
            if op.kind() != OpKind::Add {
                continue;
            }
            let ids = &f.per_source[&op.id()];
            let mut covered = 0;
            for id in ids {
                let info = &f.fragments[id];
                prop_assert_eq!(info.range.lo(), covered, "gap in {}", op.label());
                prop_assert!(info.asap <= info.alap);
                prop_assert!(info.alap <= latency);
                covered = info.range.end();
            }
            prop_assert_eq!(covered, op.width(), "{} not fully covered", op.label());
        }
    }

    /// The conventional baseline is feasible and its minimal cycle shrinks
    /// (weakly) as latency grows.
    #[test]
    fn prop_baseline_monotone(seed in 0u64..200) {
        let spec = random_spec(seed, &RandomSpecOptions { ops: 8, ..Default::default() });
        let mut prev = u32::MAX;
        for latency in 1..=6 {
            let s = schedule_conventional(&spec, &ConventionalOptions::with_latency(latency))
                .unwrap();
            prop_assert!(s.cycle <= prev);
            prev = s.cycle;
        }
    }

    /// End-to-end: the optimized implementation's execution time never
    /// exceeds the baseline's at equal latency.
    #[test]
    fn prop_optimized_never_slower(seed in 0u64..100, latency in 2u32..5) {
        let spec = random_spec(seed, &RandomSpecOptions { ops: 8, ..Default::default() });
        let options = CompareOptions { verify_vectors: 0, ..Default::default() };
        let cmp = compare(&spec, latency, &options).unwrap();
        prop_assert!(cmp.optimized.cycle_ns <= cmp.original.cycle_ns + 1e-9);
    }
}
