//! Cross-crate integration tests: the complete pipeline — kernel
//! extraction, fragmentation, scheduling, allocation — on every benchmark,
//! with behavioural equivalence verified by co-simulation.

use bittrans::benchmarks as bm;
use bittrans::prelude::*;
use bittrans::sched::fragment::verify_schedule;

fn run_verified(spec: &Spec, latency: u32) {
    let options = CompareOptions { verify_vectors: 60, ..Default::default() };
    let opt = optimize(spec, latency, &options)
        .unwrap_or_else(|e| panic!("{} λ={latency}: {e}", spec.name()));
    // The schedule replays bit-exactly.
    assert_eq!(
        verify_schedule(&opt.fragmented, &opt.schedule),
        None,
        "{} λ={latency}: schedule fails bit-exact verification",
        spec.name()
    );
    // Every fragment sits inside its mobility window.
    for (op, info) in &opt.fragmented.fragments {
        let k = opt.schedule.cycle_of(*op).unwrap();
        assert!(
            (info.asap..=info.alap).contains(&k),
            "{} λ={latency}: {op} at {k} outside {}..={}",
            spec.name(),
            info.asap,
            info.alap
        );
    }
    // The baseline also synthesises, and the optimized cycle never loses.
    let base = baseline(spec, latency, &options).unwrap();
    assert!(
        opt.implementation.cycle_ns <= base.implementation.cycle_ns + 1e-9,
        "{} λ={latency}: optimized cycle worse than baseline",
        spec.name()
    );
}

#[test]
fn motivational_example_all_latencies() {
    let spec = bm::three_adds();
    for latency in 1..=9 {
        run_verified(&spec, latency);
    }
}

#[test]
fn fig3_dfg_all_latencies() {
    let spec = bm::fig3_dfg();
    for latency in 1..=6 {
        run_verified(&spec, latency);
    }
}

#[test]
fn diffeq_pipeline() {
    let spec = bm::diffeq();
    for latency in [4, 5, 6] {
        run_verified(&spec, latency);
    }
}

#[test]
fn fir2_pipeline() {
    let spec = bm::fir2();
    for latency in [3, 5] {
        run_verified(&spec, latency);
    }
}

#[test]
fn iir4_pipeline() {
    let spec = bm::iir4();
    for latency in [5, 6] {
        run_verified(&spec, latency);
    }
}

#[test]
fn elliptic_pipeline() {
    let spec = bm::elliptic();
    for latency in [4, 6, 11] {
        run_verified(&spec, latency);
    }
}

#[test]
fn adpcm_modules_pipeline() {
    for b in bm::table3_benchmarks() {
        for &latency in &b.latencies {
            run_verified(&b.spec, latency);
        }
    }
}

#[test]
fn random_specs_pipeline() {
    for seed in 0..8 {
        let spec = bm::random_spec(seed, &bm::RandomSpecOptions { ops: 12, ..Default::default() });
        for latency in [2, 4] {
            run_verified(&spec, latency);
        }
    }
}

#[test]
fn shift_add_strategy_is_equivalent_too() {
    let spec = bm::fir2();
    let kernel =
        extract_with_options(&spec, &ExtractOptions { mul_strategy: MulStrategy::ShiftAdd })
            .unwrap();
    let f = fragment(&kernel, &FragmentOptions::with_latency(5)).unwrap();
    check_equivalence(&spec, &f.spec, 99, 150).unwrap();
    let s = schedule_fragments(&f, &FragmentScheduleOptions::default()).unwrap();
    assert_eq!(verify_schedule(&f, &s), None);
}

#[test]
fn vhdl_emission_of_transformed_specs() {
    let spec = bm::three_adds();
    let opt = optimize(&spec, 3, &CompareOptions::default()).unwrap();
    let text = bittrans::ir::vhdl::emit(&opt.fragmented.spec);
    assert!(text.contains("entity example_kernel_frag is"));
    assert!(text.contains("C_f0"));
}
