//! End-to-end tests of `bittrans serve` / `bittrans client` against the
//! compiled binary: a real server process on a loopback port, driven by
//! real client invocations. The warm-cache contract is the headline: two
//! identical requests must produce byte-identical reports (modulo the
//! wall-clock line) with the second served entirely from the cache — and
//! protocol abuse must cost one response, never the server.

mod support;

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use support::{repo, run, ServerProc};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bittrans_servecli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Drops the volatile wall-clock value from a compact report.
fn strip_elapsed(json: &str) -> String {
    bittrans::engine::report::strip_elapsed_ms(json)
}

/// Cuts a compact report down to its cell payload — everything except the
/// cache-visibility metadata that legitimately differs between a cold and
/// a warm run of the same grid (`from_cache` flags and the stats block).
fn payload(report: &str) -> String {
    let stats = report.find(",\"stats\":").expect("report has stats");
    report[..stats].replace("\"from_cache\":true", "\"from_cache\":false")
}

#[test]
fn repeated_requests_are_byte_identical_and_warm() {
    let cache = temp_dir("warm");
    let server = ServerProc::start(&cache, 2);
    let spec = repo("specs/saturating_mac.spec");
    let grid = [spec.to_str().unwrap(), "--latency", "3..5", "--adders", "rca,cla", "--json"];

    let (ok, cold, stderr) = server.client(&grid);
    assert!(ok, "cold request failed: {stderr}");
    assert!(cold.starts_with("{\"cells\":"), "{cold}");
    assert!(cold.contains("\"cache_misses\":6"), "{cold}");

    let (ok, warm, _) = server.client(&grid);
    assert!(ok);
    // The warm run recomputed nothing, yet every comparison byte matches.
    assert_eq!(payload(&cold), payload(&warm));
    assert!(warm.contains("\"hit_rate_pct\":100.0"), "{warm}");
    assert!(warm.contains("\"cache_hits\":6"), "{warm}");

    // Two warm runs are byte-identical outright (modulo wall clock).
    let (ok, warm_again, _) = server.client(&grid);
    assert!(ok);
    assert_eq!(strip_elapsed(&warm), strip_elapsed(&warm_again));

    // The human-readable client view reports the same reuse.
    let (ok, summary, _) =
        server.client(&[spec.to_str().unwrap(), "--latency", "3..5", "--adders", "rca,cla"]);
    assert!(ok);
    assert!(
        summary.contains("6 cells (6 ok, 0 failed), 6 served from the warm cache"),
        "{summary}"
    );

    server.shutdown();
}

#[test]
fn raw_protocol_rejections_leave_the_server_serving() {
    let cache = temp_dir("faults");
    let server = ServerProc::start(&cache, 2);

    // Speak the protocol directly, like a hand-rolled netcat client.
    let mut stream = TcpStream::connect(&server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for (request, expect) in [
        ("{ garbage", "\"ok\":false"),
        (
            "{\"sources\": [\"spec x { input a: u4; output o = a; }\"], \"latency\": [3]}",
            "unknown field `latency`",
        ),
        ("{\"sources\": [\"not a spec\"]}", "\"ok\":false"),
    ] {
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains(expect), "request {request} got {reply}");
    }
    drop((stream, reader));

    // A well-formed client request still succeeds after the abuse.
    let spec = repo("specs/ewf_section.spec");
    let (ok, _, stderr) = server.client(&[spec.to_str().unwrap(), "--latency", "3"]);
    assert!(ok, "post-abuse request failed: {stderr}");

    // And a client-side failure surfaces as a clean nonzero exit.
    let missing = repo("specs/does_not_exist.spec");
    let (ok, _, stderr) = server.client(&[missing.to_str().unwrap(), "--latency", "3"]);
    assert!(!ok);
    assert!(stderr.contains("error:"), "{stderr}");

    server.shutdown();
}

#[test]
fn client_read_times_out_on_a_stalled_server() {
    // The latent-timeout regression: the client once read responses with
    // no deadline, so a server that accepted and never wrote hung it
    // forever. A listener that accepts and stays silent must now cost one
    // bounded, clearly-reported timeout.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind silent listener");
    let addr = listener.local_addr().unwrap().to_string();
    let holder = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        // Hold the connection open, reading until the client gives up and
        // closes (EOF) — never write a byte. No sleeps: the client's own
        // deadline is the only clock.
        let mut reader = BufReader::new(stream);
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {}
    });

    let spec = repo("specs/saturating_mac.spec");
    let started = std::time::Instant::now();
    let (ok, _, stderr) = run(&[
        "client",
        spec.to_str().unwrap(),
        "--latency",
        "3",
        "--addr",
        &addr,
        "--timeout",
        "1",
    ]);
    assert!(!ok, "a stalled server must be an error, not a hang");
    assert!(stderr.contains("reading response"), "{stderr}");
    assert!(stderr.contains("timed out"), "{stderr}");
    assert!(started.elapsed() < std::time::Duration::from_secs(30), "bounded");
    holder.join().unwrap();
}

#[test]
fn serve_and_client_validate_their_flags() {
    // No --addr: both sides refuse before touching the network.
    let spec = repo("specs/ewf_section.spec");
    let (ok, _, stderr) = run(&["serve"]);
    assert!(!ok);
    assert!(stderr.contains("--addr"), "{stderr}");
    let (ok, _, stderr) = run(&["client", spec.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("--addr"), "{stderr}");

    // serve shares the CLI's worker-pool guard: a zero-thread service is
    // always a mistyped flag.
    let (ok, _, stderr) = run(&["serve", "--addr", "127.0.0.1:0", "--jobs", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--jobs must be at least 1"), "{stderr}");

    // serve takes no spec operands.
    let (ok, _, stderr) = run(&["serve", spec.to_str().unwrap(), "--addr", "127.0.0.1:0"]);
    assert!(!ok);
    assert!(stderr.contains("no spec operands"), "{stderr}");

    // A client pointed at nothing reports the connection failure.
    let (ok, _, stderr) = run(&["client", spec.to_str().unwrap(), "--addr", "127.0.0.1:1"]);
    assert!(!ok);
    assert!(stderr.contains("connecting"), "{stderr}");
}
