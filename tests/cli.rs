//! Integration tests for the `bittrans` command-line tool: drive the
//! compiled binary on the shipped `.spec` files and check its output.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // target/<profile>/bittrans, next to the test executable's directory.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug|release/
    p.push(format!("bittrans{}", std::env::consts::EXE_SUFFIX));
    p
}

fn repo(path: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(path)
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("bittrans binary runs (build it with the test profile)");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn check_reports_stats() {
    let spec = repo("specs/ewf_section.spec");
    let (ok, stdout, stderr) = run(&["check", spec.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("ewf_section"), "{stdout}");
    assert!(stdout.contains("critical path"), "{stdout}");
}

#[test]
fn compare_prints_table() {
    let spec = repo("specs/saturating_mac.spec");
    let (ok, stdout, _) = run(&["compare", spec.to_str().unwrap(), "--latency", "4"]);
    assert!(ok);
    assert!(stdout.contains("Conventional"));
    assert!(stdout.contains("Optimized"));
    assert!(stdout.contains("cycle saved"));
}

#[test]
fn optimize_emits_vhdl_and_netlist() {
    let dir = std::env::temp_dir().join("bittrans_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = repo("specs/ewf_section.spec");
    let (ok, stdout, stderr) = run(&[
        "optimize",
        spec.to_str().unwrap(),
        "--latency",
        "4",
        "--netlist",
        "--emit-vhdl",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("netlist ewf_section"), "{stdout}");
    let transformed = dir.join("ewf_section_transformed.vhd");
    let datapath = dir.join("ewf_section_datapath.vhd");
    assert!(transformed.exists() && datapath.exists());
    let vhd = std::fs::read_to_string(transformed).unwrap();
    assert!(vhd.contains("entity ewf_section_kernel_frag is"));
}

#[test]
fn fragments_lists_mobilities() {
    let spec = repo("specs/saturating_mac.spec");
    let (ok, stdout, _) = run(&["fragments", spec.to_str().unwrap(), "--latency", "3"]);
    assert!(ok);
    assert!(stdout.contains("cycle"), "{stdout}");
    assert!(stdout.contains("schedule:"), "{stdout}");
}

#[test]
fn sweep_prints_series() {
    let spec = repo("specs/saturating_mac.spec");
    let (ok, stdout, _) = run(&["sweep", spec.to_str().unwrap(), "--from", "2", "--to", "5"]);
    assert!(ok);
    assert!(stdout.lines().count() >= 5, "{stdout}");
}

#[test]
fn explore_prints_grid_table() {
    let spec = repo("specs/saturating_mac.spec");
    let (ok, stdout, stderr) = run(&[
        "explore",
        spec.to_str().unwrap(),
        "--latency",
        "3..5",
        "--adders",
        "rca,cla",
        "--balance",
        "both",
    ]);
    assert!(ok, "stderr: {stderr}");
    // 3 latencies × 2 adders × 2 balance settings = 12 labelled cells.
    let rows = stdout.lines().filter(|l| l.starts_with("saturating_mac")).count();
    assert_eq!(rows, 12, "{stdout}");
    assert!(stdout.contains("carry-lookahead"), "{stdout}");
    assert!(stdout.contains("engine:"), "{stdout}");
}

#[test]
fn explore_emits_json_and_reuses_a_cache_dir() {
    let dir =
        std::env::temp_dir().join(format!("bittrans_cli_explore_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = repo("specs/ewf_section.spec");
    let args = [
        "explore",
        spec.to_str().unwrap(),
        "--latency",
        "3..4",
        "--cache-dir",
        dir.to_str().unwrap(),
        "--json",
    ];
    let (ok, cold, stderr) = run(&args);
    assert!(ok, "stderr: {stderr}");
    assert!(cold.contains("\"cells\""), "{cold}");
    assert!(cold.contains("\"cache_misses\": 2"), "{cold}");

    // Second invocation = second process: served entirely from disk.
    let (ok, warm, _) = run(&args);
    assert!(ok);
    assert!(warm.contains("\"cache_hits\": 2"), "{warm}");
    assert!(warm.contains("\"hit_rate_pct\": 100.0"), "{warm}");
    assert!(warm.contains("\"from_cache\": true"), "{warm}");
}

#[test]
fn cache_prune_sweeps_a_directory_and_keeps_the_index_consistent() {
    let dir = std::env::temp_dir().join(format!("bittrans_cli_prune_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = repo("specs/ewf_section.spec");
    let (ok, _, stderr) = run(&[
        "explore",
        spec.to_str().unwrap(),
        "--latency",
        "3..4",
        "--cache-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");

    // A generous age bound removes nothing.
    let (ok, stdout, _) =
        run(&["cache", "prune", "--cache-dir", dir.to_str().unwrap(), "--max-age", "86400"]);
    assert!(ok);
    assert!(stdout.contains("pruned 0 of 2 entries"), "{stdout}");

    // A zero byte budget (no live run in this process) empties the store.
    let (ok, stdout, _) = run(&[
        "cache",
        "prune",
        "--cache-dir",
        dir.to_str().unwrap(),
        "--max-bytes",
        "0",
        "--json",
    ]);
    assert!(ok);
    assert!(stdout.contains("\"removed\": 2"), "{stdout}");
    assert!(stdout.contains("\"kept\": 0"), "{stdout}");
    // Only the (empty, consistent) index and the `stages/` verify-token
    // subdirectory remain — the result sweep does not touch the stage
    // tier, whose entries are a few dozen bytes each and self-repairing.
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names, vec!["index.json", "stages"]);
    let index = std::fs::read_to_string(dir.join("index.json")).unwrap();
    assert!(index.contains("\"entries\": []"), "{index}");

    // Misuse fails cleanly.
    let (ok, _, stderr) = run(&["cache", "prune"]);
    assert!(!ok);
    assert!(stderr.contains("--cache-dir"), "{stderr}");
    // A mistyped path must error, not silently create an empty store.
    let missing = dir.join("no-such-subdir");
    let (ok, _, stderr) = run(&["cache", "prune", "--cache-dir", missing.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("not a directory"), "{stderr}");
    assert!(!missing.exists());
    let (ok, _, stderr) = run(&["cache", "flush", "--cache-dir", dir.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown cache action"), "{stderr}");
}

#[test]
fn json_flag_works_on_batch_and_sweep_but_not_elsewhere() {
    let spec = repo("specs/saturating_mac.spec");
    let (ok, stdout, stderr) = run(&["batch", spec.to_str().unwrap(), "--latency", "4", "--json"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("\"cells\""), "{stdout}");
    let (ok, stdout, _) =
        run(&["sweep", spec.to_str().unwrap(), "--from", "2", "--to", "4", "--json"]);
    assert!(ok);
    assert!(stdout.contains("\"optimized_ns\""), "{stdout}");
    let (ok, _, stderr) = run(&["optimize", spec.to_str().unwrap(), "--latency", "4", "--json"]);
    assert!(!ok);
    assert!(stderr.contains("--json is not supported"), "{stderr}");
}

#[test]
fn explore_fails_when_every_cell_is_infeasible() {
    let spec = repo("specs/ewf_section.spec");
    // λ = 0 is infeasible for every flow: the grid produces nothing.
    let (ok, _, stderr) = run(&["explore", spec.to_str().unwrap(), "--latency", "0"]);
    assert!(!ok);
    assert!(stderr.contains("all 1 grid cells failed"), "{stderr}");
    // A partly feasible sweep (λ=0 fails, λ=3 succeeds) stays green.
    let (ok, stdout, stderr) = run(&["explore", spec.to_str().unwrap(), "--latency", "0..3"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("error:"), "{stdout}");
}

#[test]
fn explore_rejects_bad_axes() {
    let spec = repo("specs/ewf_section.spec");
    let (ok, _, stderr) = run(&["explore", spec.to_str().unwrap(), "--latency", "5..2"]);
    assert!(!ok);
    assert!(stderr.contains("empty range"), "{stderr}");
    let (ok, _, stderr) = run(&["explore", spec.to_str().unwrap(), "--adders", "quantum"]);
    assert!(!ok);
    assert!(stderr.contains("unknown adder"), "{stderr}");
    let (ok, _, stderr) = run(&["compare", spec.to_str().unwrap(), "--latency", "2..4"]);
    assert!(!ok);
    assert!(stderr.contains("single --latency"), "{stderr}");
}

/// Regression tests for the degenerate-count guards: a zero worker pool
/// or a zero-shard partition is always a mistyped flag, and an inverted
/// range must be an error, never a silently empty sweep.
#[test]
fn zero_jobs_and_zero_shards_are_rejected() {
    let spec = repo("specs/ewf_section.spec");
    for command in ["explore", "sweep", "batch"] {
        let (ok, _, stderr) = run(&[command, spec.to_str().unwrap(), "--jobs", "0"]);
        assert!(!ok, "{command} accepted --jobs 0");
        assert!(stderr.contains("--jobs must be at least 1"), "{command}: {stderr}");
    }
    let (ok, _, stderr) = run(&["explore", spec.to_str().unwrap(), "--shards", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--shards must be at least 1"), "{stderr}");
}

#[test]
fn inverted_ranges_are_errors_not_empty_sweeps() {
    let spec = repo("specs/ewf_section.spec");
    // `--latency 9..3` must never expand to an empty grid — on any
    // command that takes the range syntax.
    for command in ["explore", "batch"] {
        let (ok, stdout, stderr) = run(&[command, spec.to_str().unwrap(), "--latency", "9..3"]);
        assert!(!ok, "{command} accepted an inverted latency range: {stdout}");
        assert!(stderr.contains("empty range"), "{command}: {stderr}");
    }
    // sweep's separate --from/--to spelling has the same guard.
    let (ok, _, stderr) = run(&["sweep", spec.to_str().unwrap(), "--from", "9", "--to", "3"]);
    assert!(!ok);
    assert!(stderr.contains("--from must not exceed --to"), "{stderr}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (ok, _, stderr) = run(&["frobnicate", "nonexistent.spec"]);
    assert!(!ok);
    assert!(stderr.contains("error:"), "{stderr}");
    let spec = repo("specs/ewf_section.spec");
    let (ok, _, stderr) = run(&["compare", spec.to_str().unwrap(), "--latency", "zero"]);
    assert!(!ok);
    assert!(stderr.contains("bad --latency"));
}

#[test]
fn parse_errors_have_positions() {
    let dir = std::env::temp_dir().join("bittrans_cli_badspec");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.spec");
    std::fs::write(&bad, "spec x { input a: u8; output o = a ?? a; }").unwrap();
    let (ok, _, stderr) = run(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}
