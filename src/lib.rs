//! # bittrans
//!
//! A complete, from-scratch reproduction of *"Behavioural Transformation to
//! Improve Circuit Performance in High-Level Synthesis"* (R. Ruiz-Sautua,
//! M. C. Molina, J. M. Mendías, R. Hermida — DATE 2005) as a Rust library.
//!
//! The paper's method is a presynthesis source-to-source optimisation for
//! time-constrained high-level synthesis: it breaks additive operations
//! into **bit-range fragments** that a conventional scheduler can place in
//! different — possibly unconsecutive — clock cycles, so the clock can be
//! much shorter than any single operation while result bits flow to
//! consumers in the very cycle they are produced.
//!
//! This facade re-exports the whole workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`ir`] | `bittrans-ir` | bit-accurate behavioural IR, textual DSL, VHDL emission |
//! | [`sim`] | `bittrans-sim` | functional simulation + equivalence checking |
//! | [`timing`] | `bittrans-timing` | δ-unit ripple timing, critical path, cycle estimation |
//! | [`kernel`] | `bittrans-kernel` | operative kernel extraction (§3.1) |
//! | [`frag`] | `bittrans-frag` | bit-level ASAP/ALAP + fragmentation (§3.3) |
//! | [`sched`] | `bittrans-sched` | conventional & fragment schedulers |
//! | [`alloc`] | `bittrans-alloc` | FU/register/interconnect/controller allocation |
//! | [`rtl`] | `bittrans-rtl` | component library with calibrated cost models |
//! | [`benchmarks`] | `bittrans-benchmarks` | the paper's workloads |
//! | [`core`] | `bittrans-core` | the end-to-end pipeline and comparison harness |
//! | [`engine`] | `bittrans-engine` | parallel batch engine, persistent result cache, `Study` exploration grids |
//!
//! ## Quickstart
//!
//! ```
//! use bittrans::ir::Spec;
//! use bittrans::core::{compare, CompareOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's motivational example: three chained 16-bit additions.
//! let spec = Spec::parse(
//!     "spec example {
//!          input A: u16; input B: u16; input D: u16; input F: u16;
//!          C: u16 = A + B;
//!          E: u16 = C + D;
//!          G: u16 = E + F;
//!          output G;
//!      }",
//! )?;
//! let cmp = compare(&spec, 3, &CompareOptions::default())?;
//! // Table I: the optimized circuit runs on a 6δ cycle instead of 16δ
//! // (62 % shorter) and is no larger.
//! assert!(cmp.cycle_saved_pct() > 55.0);
//! assert!(cmp.area_delta_pct() < 5.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bittrans_alloc as alloc;
pub use bittrans_benchmarks as benchmarks;
pub use bittrans_core as core;
pub use bittrans_engine as engine;
pub use bittrans_frag as frag;
pub use bittrans_ir as ir;
pub use bittrans_kernel as kernel;
pub use bittrans_rtl as rtl;
pub use bittrans_sched as sched;
pub use bittrans_sim as sim;
pub use bittrans_timing as timing;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use bittrans_alloc::{allocate, AllocOptions, Datapath};
    pub use bittrans_core::{
        baseline, blc, compare, latency_sweep, optimize, CompareOptions, CompareOptionsBuilder,
        Comparison, Implementation, OptionsError,
    };
    pub use bittrans_engine::{
        BatchReport, Engine, EngineOptions, EngineStats, Job, JobOutcome, PrunePolicy, PruneReport,
        Study, StudyCell, StudyReport,
    };
    pub use bittrans_frag::{fragment, FragmentInfo, FragmentOptions, Fragmented};
    pub use bittrans_ir::prelude::*;
    pub use bittrans_kernel::{extract, extract_with_options, ExtractOptions, MulStrategy};
    pub use bittrans_rtl::{AdderArch, AreaReport, Component};
    pub use bittrans_sched::conventional::{schedule_conventional, Chaining, ConventionalOptions};
    pub use bittrans_sched::fragment::{schedule_fragments, FragmentScheduleOptions};
    pub use bittrans_sched::Schedule;
    pub use bittrans_sim::equivalence::check_equivalence;
    pub use bittrans_sim::{evaluate, InputVector};
    pub use bittrans_timing::{critical_path, estimate_cycle, TimingModel};
}
