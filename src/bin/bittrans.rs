//! `bittrans` — command-line front end for the presynthesis optimiser.
//!
//! ```text
//! bittrans optimize  <file.spec> --latency N [--adder rca|cla|csel] [--emit-vhdl DIR] [--netlist]
//! bittrans compare   <file.spec> --latency N
//! bittrans sweep     <file.spec> --from N --to M [--jobs K] [--cache-dir DIR] [--json]
//! bittrans batch     <dir-or-files...> --latency N [--jobs K] [--cache-dir DIR] [--json]
//! bittrans explore   <dir-or-files...> --latency N|A..B [--adders rca,cla,csel]
//!                    [--balance on|off|both] [--verify N] [--jobs K]
//!                    [--cache-dir DIR] [--json]
//! bittrans fragments <file.spec> --latency N
//! bittrans check     <file.spec>
//! ```
//!
//! `<file.spec>` contains a specification in the textual DSL (see
//! `bittrans::ir::parse`); pass `-` to read from stdin. `batch` and
//! `explore` accept any mix of `.spec` files and directories (scanned for
//! `*.spec`). `explore` expands the design-space grid — specs × latencies ×
//! adder architectures × balancing — into a `Study`, runs it on a worker
//! pool (`--jobs`, default: all cores) and prints the labelled cell table
//! (or, with `--json`, the full machine-readable report). `--cache-dir`
//! persists results on disk, so a repeated invocation over the same inputs
//! is served entirely from cache.

use bittrans::core::report::{render_sweep, render_table1};
use bittrans::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    command: String,
    files: Vec<String>,
    latencies: Vec<u32>,
    from: u32,
    to: u32,
    jobs: Option<usize>,
    adder: AdderArch,
    adders: Option<Vec<AdderArch>>,
    balance: Option<Vec<bool>>,
    verify: Option<usize>,
    cache_dir: Option<String>,
    json: bool,
    emit_vhdl: Option<String>,
    netlist: bool,
}

impl Args {
    /// The single latency of one-point commands (optimize/compare/…),
    /// which reject the `A..B` range syntax `explore` accepts.
    fn single_latency(&self) -> Result<u32, String> {
        match self.latencies.as_slice() {
            [one] => Ok(*one),
            _ => Err(format!("`{}` takes a single --latency, not a range", self.command)),
        }
    }
}

fn usage() -> String {
    "usage: bittrans <optimize|compare|sweep|batch|explore|fragments|check> \
     <file.spec|dir|-> ... [--latency N|A..B] [--from N] [--to M] [--jobs K] \
     [--adder rca|cla|csel] [--adders rca,cla,csel] [--balance on|off|both] \
     [--verify N] [--cache-dir DIR] [--json] [--emit-vhdl DIR] [--netlist]"
        .to_string()
}

fn parse_adder(name: &str) -> Result<AdderArch, String> {
    match name {
        "rca" | "ripple" | "ripple-carry" => Ok(AdderArch::RippleCarry),
        "cla" | "carry-lookahead" => Ok(AdderArch::CarryLookahead),
        "csel" | "carry-select" => Ok(AdderArch::CarrySelect),
        other => Err(format!("unknown adder `{other}` (rca|cla|csel)")),
    }
}

/// Largest `--latency A..B` span: one grid axis beyond this is always a
/// mistyped flag, and expanding it would allocate before any work starts.
const MAX_LATENCY_SPAN: u32 = 4096;

/// Parses `--latency`: either one value (`4`) or an inclusive range
/// (`2..8`).
fn parse_latencies(text: &str) -> Result<Vec<u32>, String> {
    if let Some((from, to)) = text.split_once("..") {
        let from: u32 = from.parse().map_err(|e| format!("bad --latency `{text}`: {e}"))?;
        let to: u32 = to.parse().map_err(|e| format!("bad --latency `{text}`: {e}"))?;
        if from > to {
            return Err(format!("bad --latency `{text}`: empty range"));
        }
        if to - from >= MAX_LATENCY_SPAN {
            return Err(format!(
                "bad --latency `{text}`: spans more than {MAX_LATENCY_SPAN} values"
            ));
        }
        Ok((from..=to).collect())
    } else {
        Ok(vec![text.parse().map_err(|e| format!("bad --latency: {e}"))?])
    }
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        files: Vec::new(),
        latencies: vec![3],
        from: 2,
        to: 10,
        jobs: None,
        adder: AdderArch::RippleCarry,
        adders: None,
        balance: None,
        verify: None,
        cache_dir: None,
        json: false,
        emit_vhdl: None,
        netlist: false,
    };
    while let Some(flag) = argv.next() {
        let mut value =
            |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value\n{}", usage()));
        match flag.as_str() {
            "--latency" => args.latencies = parse_latencies(&value("--latency")?)?,
            "--from" => {
                args.from = value("--from")?.parse().map_err(|e| format!("bad --from: {e}"))?
            }
            "--to" => args.to = value("--to")?.parse().map_err(|e| format!("bad --to: {e}"))?,
            "--jobs" => {
                let k: usize = value("--jobs")?.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                if k == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                args.jobs = Some(k);
            }
            "--adder" => args.adder = parse_adder(&value("--adder")?)?,
            "--adders" => {
                let list = value("--adders")?
                    .split(',')
                    .map(|name| parse_adder(name.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                if list.is_empty() {
                    return Err("--adders needs at least one architecture".into());
                }
                args.adders = Some(list);
            }
            "--balance" => {
                args.balance = Some(match value("--balance")?.as_str() {
                    "on" => vec![true],
                    "off" => vec![false],
                    "both" => vec![true, false],
                    other => return Err(format!("bad --balance `{other}` (on|off|both)")),
                })
            }
            "--verify" => {
                args.verify =
                    Some(value("--verify")?.parse().map_err(|e| format!("bad --verify: {e}"))?)
            }
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--json" => args.json = true,
            "--emit-vhdl" => args.emit_vhdl = Some(value("--emit-vhdl")?),
            "--netlist" => args.netlist = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            positional => args.files.push(positional.to_string()),
        }
    }
    if args.files.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn read_spec(path: &str) -> Result<Spec, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    Spec::parse(&text).map_err(|e| e.to_string())
}

/// Expands the `batch` operands: files stay as-is, directories contribute
/// every contained `*.spec` in name order.
fn collect_spec_paths(operands: &[String]) -> Result<Vec<String>, String> {
    let mut paths = Vec::new();
    for operand in operands {
        if operand == "-" {
            paths.push(operand.clone());
            continue;
        }
        let meta = std::fs::metadata(operand).map_err(|e| format!("reading {operand}: {e}"))?;
        if meta.is_dir() {
            let mut found = Vec::new();
            let entries =
                std::fs::read_dir(operand).map_err(|e| format!("reading {operand}: {e}"))?;
            for entry in entries {
                let path = entry.map_err(|e| format!("reading {operand}: {e}"))?.path();
                if path.extension().is_some_and(|ext| ext == "spec") {
                    found.push(path.to_string_lossy().into_owned());
                }
            }
            found.sort();
            if found.is_empty() {
                return Err(format!("{operand}: no .spec files in directory"));
            }
            paths.extend(found);
        } else {
            paths.push(operand.clone());
        }
    }
    Ok(paths)
}

/// Builds the worker-pool engine, attaching the persistent cache directory
/// when `--cache-dir` was given.
fn make_engine(args: &Args) -> Result<Engine, String> {
    let engine = Engine::new(EngineOptions { workers: args.jobs, ..Default::default() });
    match &args.cache_dir {
        Some(dir) => engine.with_cache_dir(dir).map_err(|e| format!("cache dir {dir}: {e}")),
        None => Ok(engine),
    }
}

/// Reads every operand into a spec list (deduplicated directory scan).
fn read_specs(operands: &[String]) -> Result<Vec<Spec>, String> {
    collect_spec_paths(operands)?.iter().map(|path| read_spec(path)).collect()
}

fn run_batch(args: &Args, options: &CompareOptions) -> Result<(), String> {
    let study = Study::over(read_specs(&args.files)?)
        .latencies([args.single_latency()?])
        .base_options(*options);
    let report = study.run(&make_engine(args)?);

    if args.json {
        println!("{}", report.to_json_pretty());
    } else {
        print!("{}", report.render_text());
        println!("\nengine: {}", report.stats);
    }
    let failures = report.failures().count();
    if failures > 0 {
        return Err(format!("{failures} of {} jobs failed", report.cells.len()));
    }
    Ok(())
}

fn run_explore(args: &Args, options: &CompareOptions) -> Result<(), String> {
    let mut study = Study::over(read_specs(&args.files)?).latencies(args.latencies.iter().copied());
    let mut base = CompareOptions::builder().adder_arch(options.adder_arch);
    if let Some(verify) = args.verify {
        base = base.verify_vectors(verify);
    }
    study = study.base_options(base.build().map_err(|e| e.to_string())?);
    if let Some(adders) = &args.adders {
        study = study.adder_archs(adders.iter().copied());
    }
    if let Some(balance) = &args.balance {
        study = study.balance(balance.iter().copied());
    }

    let report = study.run(&make_engine(args)?);
    if args.json {
        println!("{}", report.to_json_pretty());
    } else {
        print!("{}", report.render_text());
        println!("\nengine: {}", report.stats);
    }
    // Partly infeasible grids are normal exploration output (a latency
    // sweep legitimately contains infeasible points), but a grid with no
    // feasible cell at all produced nothing and must fail the invocation.
    if !report.cells.is_empty() && report.successes().count() == 0 {
        return Err(format!("all {} grid cells failed", report.cells.len()));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let options =
        CompareOptions::builder().adder_arch(args.adder).build().map_err(|e| e.to_string())?;
    match args.command.as_str() {
        "batch" => return run_batch(&args, &options),
        "explore" => return run_explore(&args, &options),
        command if args.json && command != "sweep" => {
            return Err(format!("--json is not supported by `{command}`"));
        }
        _ => {}
    }
    if args.files.len() > 1 {
        return Err(format!(
            "`{}` takes exactly one spec file ({} given); use `batch` or `explore` for many",
            args.command,
            args.files.len()
        ));
    }
    let spec = read_spec(&args.files[0])?;
    match args.command.as_str() {
        "check" => {
            let stats = spec.stats();
            println!(
                "{}: {} operations ({} add, {} mul, {} other, {} glue), critical path {}δ",
                spec.name(),
                stats.total,
                stats.adds,
                stats.muls,
                stats.other,
                stats.glue,
                critical_path(&extract(&spec).map_err(|e| e.to_string())?),
            );
            Ok(())
        }
        "fragments" => {
            let latency = args.single_latency()?;
            let opt = optimize(&spec, latency, &options).map_err(|e| e.to_string())?;
            println!(
                "cycle {}δ (critical path {}δ / λ={})",
                opt.fragmented.cycle, opt.fragmented.critical_path, latency
            );
            for (source, ids) in &opt.fragmented.per_source {
                let desc: Vec<String> = ids
                    .iter()
                    .map(|id| {
                        let fi = &opt.fragmented.fragments[id];
                        format!("{} @[{}..{}]", fi.range, fi.asap, fi.alap)
                    })
                    .collect();
                println!("  {}: {}", opt.kernel.op(*source).label(), desc.join(", "));
            }
            println!("\nschedule:\n{}", opt.schedule.render(&opt.fragmented.spec));
            Ok(())
        }
        "optimize" => {
            let opt =
                optimize(&spec, args.single_latency()?, &options).map_err(|e| e.to_string())?;
            println!(
                "{}: cycle {}δ = {:.2} ns, execution {:.2} ns, area {}",
                spec.name(),
                opt.implementation.cycle_delta,
                opt.implementation.cycle_ns,
                opt.implementation.execution_ns,
                opt.implementation.area,
            );
            if args.netlist {
                println!("\n{}", opt.datapath.netlist(spec.name()).bill_of_materials());
            }
            if let Some(dir) = &args.emit_vhdl {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                let beh = format!("{dir}/{}_transformed.vhd", spec.name());
                std::fs::write(&beh, bittrans::ir::vhdl::emit(&opt.fragmented.spec))
                    .map_err(|e| e.to_string())?;
                let st = format!("{dir}/{}_datapath.vhd", spec.name());
                std::fs::write(&st, opt.datapath.netlist(spec.name()).to_vhdl())
                    .map_err(|e| e.to_string())?;
                println!("wrote {beh} and {st}");
            }
            Ok(())
        }
        "compare" => {
            let cmp =
                compare(&spec, args.single_latency()?, &options).map_err(|e| e.to_string())?;
            println!(
                "{}",
                render_table1(&[("Conventional", &cmp.original), ("Optimized", &cmp.optimized),])
            );
            println!(
                "cycle saved {:.1} %, area {:+.1} %, operations {:+.0} %",
                cmp.cycle_saved_pct(),
                cmp.area_delta_pct(),
                cmp.op_growth_pct()
            );
            Ok(())
        }
        "sweep" => {
            if args.from > args.to {
                return Err("--from must not exceed --to".into());
            }
            let report = Study::single(spec.clone())
                .latencies(args.from..=args.to)
                .base_options(options)
                .run(&make_engine(&args)?);
            let points = report.sweep_points();
            if args.json {
                let json = serde_json::to_string_pretty(&points).map_err(|e| e.to_string())?;
                println!("{json}");
            } else {
                println!("{}", render_sweep(&format!("{} sweep", spec.name()), &points));
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
