//! `bittrans` — command-line front end for the presynthesis optimiser.
//!
//! ```text
//! bittrans optimize  <file.spec> --latency N [--adder rca|cla|csel] [--emit-vhdl DIR] [--netlist]
//! bittrans compare   <file.spec> --latency N
//! bittrans sweep     <file.spec> --from N --to M [--jobs K] [--cache-dir DIR] [--json]
//! bittrans batch     <dir-or-files...> --latency N [--jobs K] [--cache-dir DIR] [--json]
//! bittrans explore   <dir-or-files...> --latency N|A..B [--adders rca,cla,csel]
//!                    [--balance on|off|both] [--verify N] [--jobs K]
//!                    [--shards K] [--workers host:port,...] [--timeout SECS]
//!                    [--cache-dir DIR] [--json]
//! bittrans cache     prune --cache-dir DIR [--max-bytes N] [--max-age SECS] [--json]
//! bittrans serve     --addr HOST:PORT [--cache-dir DIR] [--jobs K]
//! bittrans client    <dir-or-files...> --addr HOST:PORT [--latency N|A..B]
//!                    [--adders rca,cla,csel] [--balance on|off|both] [--verify N]
//!                    [--timeout SECS] [--stream] [--json]
//! bittrans client    --addr HOST:PORT --shutdown
//! bittrans client    --addr HOST:PORT --stats
//! bittrans bench     [--quick] [--json]
//! bittrans report    normalize <report.json|->
//! bittrans fragments <file.spec> --latency N
//! bittrans check     <file.spec>
//! ```
//!
//! `<file.spec>` contains a specification in the textual DSL (see
//! `bittrans::ir::parse`); pass `-` to read from stdin. `batch` and
//! `explore` accept any mix of `.spec` files and directories (scanned for
//! `*.spec`). `explore` expands the design-space grid — specs × latencies ×
//! adder architectures × balancing — into a `Study`, runs it on a worker
//! pool (`--jobs`, default: all cores) and prints the labelled cell table
//! (or, with `--json`, the full machine-readable report). `--cache-dir`
//! persists results on disk, so a repeated invocation over the same inputs
//! is served entirely from cache.
//!
//! `explore --shards K` runs the grid across K worker processes sharing
//! the cache directory (an automatically cleaned temporary one when
//! `--cache-dir` is not given); the printed report is bit-identical to the
//! single-process run, and `--jobs` then caps total threads across all
//! workers. `explore --workers host:port,host:port` dispatches the shards
//! to running `bittrans serve` endpoints instead (round-robin, retrying a
//! failed endpoint's shard on the next one, recomputing in-process
//! whatever the fleet never delivered); it requires `--cache-dir` — the
//! store the whole fleet shares — composes with `--shards K` (default:
//! one shard per endpoint), and bounds every exchange by `--timeout`.
//! `cache prune` sweeps a cache directory down to a size/age budget,
//! oldest entries first. The hidden `shard-worker <manifest>` subcommand
//! is the re-invocation target of the sharding coordinator; the
//! `BITTRANS_SHARD_FAULT=INDEX:AFTER` environment variable makes that
//! worker abort after `AFTER` jobs (the fault-injection hook used by the
//! test harness).
//!
//! Every subcommand can write a structured execution trace — one JSON
//! line per span or event, see `bittrans_engine::trace` — to a file given
//! by `--trace-out FILE` or the `BITTRANS_TRACE` environment variable.
//! `bench` runs the performance-trajectory harness
//! (`bittrans_engine::bench`): engine throughput, cache speedup, serve
//! round-trip percentiles and shard scaling as one JSON document
//! (`--json`, the committed `BENCH_<n>.json` format) or a short text
//! summary; `--quick` shrinks the grid to CI scale. `report normalize`
//! rewrites a study-report JSON document with the run-shape fields
//! (`elapsed_ms`, `workers`) blanked, so reports from runs with different
//! worker counts can be byte-compared. `client --stats` asks a running
//! server for its `{"stats":true}` introspection line.
//!
//! `serve` runs the long-lived study service: one warm engine answering
//! newline-delimited JSON study requests over TCP (see
//! `bittrans_engine::serve`), printing `listening on HOST:PORT` once
//! bound (pass port 0 to pick a free one). `client` is its thin
//! counterpart: it assembles the same grid `explore` would from the same
//! flags, sends it as one request, and prints the response — with
//! `--json`, the exact `StudyReport` bytes the server computed. `client
//! --stream` asks the server to push each finished cell as a progress
//! frame (printed to stderr as it lands) ahead of the identical final
//! report. `client --shutdown` asks the server to drain and exit.

use bittrans::core::report::{render_sweep, render_table1};
use bittrans::engine::proto;
use bittrans::engine::serve;
use bittrans::engine::shard;
use bittrans::engine::{bench, fuzz, trace};
use bittrans::prelude::*;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    command: String,
    files: Vec<String>,
    latencies: Vec<u32>,
    from: u32,
    to: u32,
    jobs: Option<usize>,
    adder: AdderArch,
    adders: Option<Vec<AdderArch>>,
    balance: Option<Vec<bool>>,
    verify: Option<usize>,
    shards: Option<usize>,
    workers: Option<String>,
    timeout: Option<u64>,
    cache_dir: Option<String>,
    max_bytes: Option<u64>,
    max_age: Option<u64>,
    addr: Option<String>,
    shutdown: bool,
    stats: bool,
    stream: bool,
    json: bool,
    quick: bool,
    trace_out: Option<String>,
    emit_vhdl: Option<String>,
    netlist: bool,
    count: Option<usize>,
    seed: Option<u64>,
    mul_prob: Option<f64>,
    replay: Option<u64>,
}

impl Args {
    /// The single latency of one-point commands (optimize/compare/…),
    /// which reject the `A..B` range syntax `explore` accepts.
    fn single_latency(&self) -> Result<u32, String> {
        match self.latencies.as_slice() {
            [one] => Ok(*one),
            _ => Err(format!("`{}` takes a single --latency, not a range", self.command)),
        }
    }
}

fn usage() -> String {
    "usage: bittrans <optimize|compare|sweep|batch|explore|cache|serve|client|bench|fuzz|report|\
     fragments|check> \
     <file.spec|dir|-> ... [--latency N|A..B] [--from N] [--to M] [--jobs K] \
     [--adder rca|cla|csel] [--adders rca,cla,csel] [--balance on|off|both] \
     [--verify N] [--shards K] [--workers host:port,...] [--timeout SECS] \
     [--cache-dir DIR] [--max-bytes N] [--max-age SECS] \
     [--addr HOST:PORT] [--shutdown] [--stats] [--stream] [--quick] [--trace-out FILE] \
     [--json] [--emit-vhdl DIR] [--netlist] \
     [--count N] [--seed S] [--mul-prob P] [--replay SEED]"
        .to_string()
}

fn parse_adder(name: &str) -> Result<AdderArch, String> {
    // Canonical short codes come from the enum itself; only the CLI's
    // long-form aliases live here.
    match name {
        "ripple" | "ripple-carry" => Ok(AdderArch::RippleCarry),
        "carry-lookahead" => Ok(AdderArch::CarryLookahead),
        "carry-select" => Ok(AdderArch::CarrySelect),
        code => AdderArch::from_code(code)
            .ok_or_else(|| format!("unknown adder `{code}` (rca|cla|csel)")),
    }
}

/// Largest `--latency A..B` span: one grid axis beyond this is always a
/// mistyped flag, and expanding it would allocate before any work starts.
const MAX_LATENCY_SPAN: u32 = 4096;

/// Parses `--latency`: either one value (`4`) or an inclusive range
/// (`2..8`).
fn parse_latencies(text: &str) -> Result<Vec<u32>, String> {
    if let Some((from, to)) = text.split_once("..") {
        let from: u32 = from.parse().map_err(|e| format!("bad --latency `{text}`: {e}"))?;
        let to: u32 = to.parse().map_err(|e| format!("bad --latency `{text}`: {e}"))?;
        if from > to {
            return Err(format!("bad --latency `{text}`: empty range"));
        }
        if to - from >= MAX_LATENCY_SPAN {
            return Err(format!(
                "bad --latency `{text}`: spans more than {MAX_LATENCY_SPAN} values"
            ));
        }
        Ok((from..=to).collect())
    } else {
        Ok(vec![text.parse().map_err(|e| format!("bad --latency: {e}"))?])
    }
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        files: Vec::new(),
        latencies: vec![3],
        from: 2,
        to: 10,
        jobs: None,
        adder: AdderArch::RippleCarry,
        adders: None,
        balance: None,
        verify: None,
        shards: None,
        workers: None,
        timeout: None,
        cache_dir: None,
        max_bytes: None,
        max_age: None,
        addr: None,
        shutdown: false,
        stats: false,
        stream: false,
        json: false,
        quick: false,
        trace_out: None,
        emit_vhdl: None,
        netlist: false,
        count: None,
        seed: None,
        mul_prob: None,
        replay: None,
    };
    while let Some(flag) = argv.next() {
        let mut value =
            |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value\n{}", usage()));
        match flag.as_str() {
            "--latency" => args.latencies = parse_latencies(&value("--latency")?)?,
            "--from" => {
                args.from = value("--from")?.parse().map_err(|e| format!("bad --from: {e}"))?
            }
            "--to" => args.to = value("--to")?.parse().map_err(|e| format!("bad --to: {e}"))?,
            "--jobs" => {
                let k: usize = value("--jobs")?.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                if k == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                args.jobs = Some(k);
            }
            "--adder" => args.adder = parse_adder(&value("--adder")?)?,
            "--adders" => {
                let list = value("--adders")?
                    .split(',')
                    .map(|name| parse_adder(name.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                if list.is_empty() {
                    return Err("--adders needs at least one architecture".into());
                }
                args.adders = Some(list);
            }
            "--balance" => {
                args.balance = Some(match value("--balance")?.as_str() {
                    "on" => vec![true],
                    "off" => vec![false],
                    "both" => vec![true, false],
                    other => return Err(format!("bad --balance `{other}` (on|off|both)")),
                })
            }
            "--verify" => {
                args.verify =
                    Some(value("--verify")?.parse().map_err(|e| format!("bad --verify: {e}"))?)
            }
            "--shards" => {
                let k: usize =
                    value("--shards")?.parse().map_err(|e| format!("bad --shards: {e}"))?;
                if k == 0 {
                    return Err("--shards must be at least 1".into());
                }
                args.shards = Some(k);
            }
            "--workers" => args.workers = Some(value("--workers")?),
            "--timeout" => {
                let secs: u64 =
                    value("--timeout")?.parse().map_err(|e| format!("bad --timeout: {e}"))?;
                if secs == 0 {
                    return Err("--timeout must be at least 1 second".into());
                }
                args.timeout = Some(secs);
            }
            "--cache-dir" => args.cache_dir = Some(value("--cache-dir")?),
            "--max-bytes" => {
                args.max_bytes = Some(
                    value("--max-bytes")?.parse().map_err(|e| format!("bad --max-bytes: {e}"))?,
                )
            }
            "--max-age" => {
                args.max_age =
                    Some(value("--max-age")?.parse().map_err(|e| format!("bad --max-age: {e}"))?)
            }
            "--addr" => args.addr = Some(value("--addr")?),
            "--shutdown" => args.shutdown = true,
            "--stats" => args.stats = true,
            "--stream" => args.stream = true,
            "--quick" => args.quick = true,
            "--count" => {
                let n: usize =
                    value("--count")?.parse().map_err(|e| format!("bad --count: {e}"))?;
                if n == 0 {
                    return Err("--count must be at least 1".into());
                }
                args.count = Some(n);
            }
            "--seed" => {
                args.seed = Some(value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?);
            }
            "--mul-prob" => {
                let p: f64 =
                    value("--mul-prob")?.parse().map_err(|e| format!("bad --mul-prob: {e}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err("--mul-prob must be within 0..=1".into());
                }
                args.mul_prob = Some(p);
            }
            "--replay" => {
                args.replay =
                    Some(value("--replay")?.parse().map_err(|e| format!("bad --replay: {e}"))?);
            }
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--json" => args.json = true,
            "--emit-vhdl" => args.emit_vhdl = Some(value("--emit-vhdl")?),
            "--netlist" => args.netlist = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            positional => args.files.push(positional.to_string()),
        }
    }
    // `serve` addresses a socket, not files; `client --shutdown` and
    // `client --stats` send bodyless control requests; `bench` builds its
    // own workload. Everything else needs an operand.
    let fileless = args.command == "serve"
        || args.command == "bench"
        || args.command == "fuzz"
        || (args.command == "client" && (args.shutdown || args.stats));
    if args.files.is_empty() && !fileless {
        return Err(usage());
    }
    Ok(args)
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn read_spec(path: &str) -> Result<Spec, String> {
    Spec::parse(&read_source(path)?).map_err(|e| e.to_string())
}

/// Expands the `batch` operands: files stay as-is, directories contribute
/// every contained `*.spec` in name order.
fn collect_spec_paths(operands: &[String]) -> Result<Vec<String>, String> {
    let mut paths = Vec::new();
    for operand in operands {
        if operand == "-" {
            paths.push(operand.clone());
            continue;
        }
        let meta = std::fs::metadata(operand).map_err(|e| format!("reading {operand}: {e}"))?;
        if meta.is_dir() {
            let mut found = Vec::new();
            let entries =
                std::fs::read_dir(operand).map_err(|e| format!("reading {operand}: {e}"))?;
            for entry in entries {
                let path = entry.map_err(|e| format!("reading {operand}: {e}"))?.path();
                if path.extension().is_some_and(|ext| ext == "spec") {
                    found.push(path.to_string_lossy().into_owned());
                }
            }
            found.sort();
            if found.is_empty() {
                return Err(format!("{operand}: no .spec files in directory"));
            }
            paths.extend(found);
        } else {
            paths.push(operand.clone());
        }
    }
    Ok(paths)
}

/// Builds the worker-pool engine, attaching the persistent cache directory
/// when `--cache-dir` was given.
fn make_engine(args: &Args) -> Result<Engine, String> {
    let engine = Engine::new(EngineOptions { workers: args.jobs, ..Default::default() });
    match &args.cache_dir {
        Some(dir) => engine.with_cache_dir(dir).map_err(|e| format!("cache dir {dir}: {e}")),
        None => Ok(engine),
    }
}

/// Reads every operand into a spec list (deduplicated directory scan).
fn read_specs(operands: &[String]) -> Result<Vec<Spec>, String> {
    collect_spec_paths(operands)?.iter().map(|path| read_spec(path)).collect()
}

fn run_batch(args: &Args, options: &CompareOptions) -> Result<(), String> {
    let study = Study::over(read_specs(&args.files)?)
        .latencies([args.single_latency()?])
        .base_options(*options);
    let report = study.run(&make_engine(args)?);

    if args.json {
        println!("{}", report.to_json_pretty());
    } else {
        print!("{}", report.render_text());
        println!("\nengine: {}", report.stats);
    }
    let failures = report.failures().count();
    if failures > 0 {
        return Err(format!("{failures} of {} jobs failed", report.cells.len()));
    }
    Ok(())
}

/// Validates `--verify`/`--adder` into the base options every explore cell
/// inherits.
fn explore_base(args: &Args, options: &CompareOptions) -> Result<CompareOptions, String> {
    let mut base = CompareOptions::builder().adder_arch(options.adder_arch);
    if let Some(verify) = args.verify {
        base = base.verify_vectors(verify);
    }
    base.build().map_err(|e| e.to_string())
}

/// Prints a study report (text table or `--json`) and applies explore's
/// exit rule: a partly infeasible grid is normal output, a grid with no
/// feasible cell at all fails the invocation.
fn finish_explore(report: &StudyReport, json: bool) -> Result<(), String> {
    if json {
        println!("{}", report.to_json_pretty());
    } else {
        print!("{}", report.render_text());
        println!("\nengine: {}", report.stats);
    }
    if !report.cells.is_empty() && report.successes().count() == 0 {
        return Err(format!("all {} grid cells failed", report.cells.len()));
    }
    Ok(())
}

fn run_explore(args: &Args, options: &CompareOptions) -> Result<(), String> {
    if args.shards.is_some() || args.workers.is_some() {
        return run_explore_sharded(args, options);
    }
    let mut study = Study::over(read_specs(&args.files)?)
        .latencies(args.latencies.iter().copied())
        .base_options(explore_base(args, options)?);
    if let Some(adders) = &args.adders {
        study = study.adder_archs(adders.iter().copied());
    }
    if let Some(balance) = &args.balance {
        study = study.balance(balance.iter().copied());
    }
    let report = study.run(&make_engine(args)?);
    finish_explore(&report, args.json)
}

/// `explore --shards K`: the same grid, run by K worker processes sharing
/// one cache directory, reassembled into the identical report.
/// The explore-shaped grid as transportable source text — what a shard
/// manifest embeds and what `client` sends as a serve request. One
/// builder for both, so the two front ends cannot drift apart.
fn sharded_study(args: &Args, options: &CompareOptions) -> Result<shard::ShardedStudy, String> {
    let sources = collect_spec_paths(&args.files)?
        .iter()
        .map(|path| read_source(path))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(shard::ShardedStudy {
        sources,
        latencies: args.latencies.clone(),
        adder_archs: args.adders.clone(),
        balance: args.balance.clone(),
        verify_vectors: None,
        base: explore_base(args, options)?,
    })
}

fn run_explore_sharded(args: &Args, options: &CompareOptions) -> Result<(), String> {
    let study = sharded_study(args, options)?;
    let (transport, shards) = match &args.workers {
        Some(list) => {
            // Remote dispatch to a `serve` fleet. The coordinator reads
            // results back from the store the fleet writes, so a shared
            // --cache-dir is not optional — an ephemeral local one would
            // silently degrade every run to in-process recomputation.
            let endpoints = shard::parse_endpoints(list).map_err(|e| e.to_string())?;
            if args.cache_dir.is_none() {
                return Err("explore --workers needs --cache-dir: the coordinator and the \
                            serve fleet must share one result store"
                    .into());
            }
            if args.jobs.is_some() {
                eprintln!(
                    "warning: --jobs has no effect with --workers; each endpoint's pool \
                     width is set by its own `serve --jobs`"
                );
            }
            let shards = args.shards.unwrap_or(endpoints.len());
            let timeout = args.timeout.map_or(proto::DEFAULT_TIMEOUT, Duration::from_secs);
            (shard::Transport::Remote(shard::RemoteTransport { endpoints, timeout }), shards)
        }
        None => {
            let shards = args.shards.unwrap_or(1);
            let worker_binary =
                std::env::current_exe().map_err(|e| format!("resolving worker binary: {e}"))?;
            let transport = shard::Transport::Local(shard::LocalTransport {
                worker_binary,
                // `--jobs` caps total threads across the run: split it
                // over the workers, at least one thread each.
                threads_per_worker: args.jobs.map(|jobs| (jobs / shards.max(1)).max(1)),
            });
            (transport, shards)
        }
    };
    // The cache directory is the shared result store; without an explicit
    // one, shard into a temporary directory and clean it up afterwards.
    let (cache_dir, ephemeral) = match &args.cache_dir {
        Some(dir) => (PathBuf::from(dir), false),
        None => {
            (std::env::temp_dir().join(format!("bittrans_shards_{}", std::process::id())), true)
        }
    };
    let run = shard::run_sharded(&study, &cache_dir, &shard::ShardOptions { shards, transport });
    if ephemeral {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
    let run = run.map_err(|e| e.to_string())?;
    for (index, stats) in run.shard_stats.iter().enumerate() {
        match stats {
            Some(stats) => eprintln!("shard {index}/{}: {stats}", run.shard_stats.len()),
            None => eprintln!("shard {index}/{}: failed", run.shard_stats.len()),
        }
    }
    if args.workers.is_some() {
        for endpoint in &run.endpoints {
            eprintln!("{endpoint}");
        }
    }
    if !run.retried.is_empty() {
        eprintln!(
            "recovered from {} failed shard(s): retried {} missing job(s) in-process",
            run.failed.len(),
            run.retried.len()
        );
    }
    finish_explore(&run.report, args.json)
}

/// The hidden coordinator re-invocation target: run one shard's manifest,
/// print the worker's `EngineStats` as one JSON line. The
/// `BITTRANS_SHARD_FAULT=INDEX:AFTER` environment variable aborts shard
/// INDEX after AFTER jobs — the fault-injection hook the test harness uses
/// to model a worker killed mid-shard.
fn run_shard_worker(args: &Args) -> Result<(), String> {
    let manifest = shard::Manifest::read(Path::new(&args.files[0])).map_err(|e| e.to_string())?;
    let fault = match std::env::var("BITTRANS_SHARD_FAULT") {
        Err(_) => None,
        Ok(spec) => {
            let (index, after) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad BITTRANS_SHARD_FAULT `{spec}` (want INDEX:AFTER)"))?;
            let index: usize =
                index.parse().map_err(|e| format!("bad BITTRANS_SHARD_FAULT index: {e}"))?;
            let after: usize =
                after.parse().map_err(|e| format!("bad BITTRANS_SHARD_FAULT count: {e}"))?;
            (index == manifest.shard_index).then_some(shard::Fault { abort_after: after })
        }
    };
    let run = shard::run_worker(&manifest, fault).map_err(|e| e.to_string())?;
    if run.aborted {
        eprintln!(
            "shard {}: injected fault after {} job(s), aborting",
            manifest.shard_index, run.completed
        );
        std::process::exit(134);
    }
    println!("{}", serde_json::to_string(&run.stats).map_err(|e| e.to_string())?);
    Ok(())
}

/// `serve`: the long-lived study service — one warm engine, newline-
/// delimited JSON requests over TCP, until a `shutdown` request arrives.
fn run_serve(args: &Args) -> Result<(), String> {
    let Some(addr) = &args.addr else {
        return Err("serve needs --addr HOST:PORT".to_string());
    };
    if !args.files.is_empty() {
        return Err("serve takes no spec operands (clients send the specs)".to_string());
    }
    let options = serve::ServeOptions {
        addr: addr.clone(),
        workers: args.jobs,
        cache_dir: args.cache_dir.as_ref().map(PathBuf::from),
        max_request_bytes: serve::DEFAULT_MAX_REQUEST_BYTES,
        max_inflight: serve::DEFAULT_MAX_INFLIGHT,
    };
    let server = serve::Server::bind(&options).map_err(|e| format!("serve {addr}: {e}"))?;
    // Announce the resolved address (scripts bind port 0 and need the
    // real port); flush because stdout is block-buffered under a pipe.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    let stats = server.run().map_err(|e| e.to_string())?;
    eprintln!("serve: {stats}");
    Ok(())
}

/// `client`: assemble the same grid `explore` would, send it to a running
/// `serve` process as one request, print the response.
fn run_client(args: &Args, options: &CompareOptions) -> Result<(), String> {
    let Some(addr) = &args.addr else {
        return Err("client needs --addr HOST:PORT".to_string());
    };
    let request = if args.shutdown {
        if !args.files.is_empty() {
            return Err("client --shutdown takes no spec operands".to_string());
        }
        if args.stream {
            return Err("--stream makes no sense with --shutdown".to_string());
        }
        "{\"shutdown\": true}".to_string()
    } else if args.stats {
        if !args.files.is_empty() {
            return Err("client --stats takes no spec operands".to_string());
        }
        if args.stream {
            return Err("--stream makes no sense with --stats".to_string());
        }
        "{\"stats\": true}".to_string()
    } else {
        let study = sharded_study(args, options)?;
        let body = serde_json::to_string(&study).map_err(|e| e.to_string())?;
        if args.stream {
            // Splice the opt-in flag into the study object; the server's
            // field whitelist accepts `stream` alongside the grid fields.
            format!("{{\"stream\":true,{}", &body[1..])
        } else {
            body
        }
    };
    // The shared line codec bounds the whole exchange: connect, send and
    // — crucially — the response read, so a stalled server costs one
    // timeout error instead of a client hung forever.
    let timeout = args.timeout.map_or(proto::DEFAULT_TIMEOUT, Duration::from_secs);
    let mut client =
        proto::LineClient::connect(addr, timeout).map_err(|e| format!("connecting {addr}: {e}"))?;
    client.send(&request).map_err(|e| format!("sending request: {e}"))?;
    let line = if args.stream {
        // Progress frames land on stderr as cells finish; stdout stays
        // exactly what the non-streaming invocation would print.
        let mut done: u64 = 0;
        client
            .receive_streaming(|frame| {
                done += 1;
                match proto::frame_cell(frame) {
                    Some((index, _)) => eprintln!("cell {index} done ({done} so far)"),
                    None => eprintln!("cell done ({done} so far)"),
                }
            })
            .map_err(|e| format!("reading response: {e}"))?
    } else {
        client.receive().map_err(|e| format!("reading response: {e}"))?
    };
    let value = serde_json::from_str(&line).map_err(|e| format!("bad response: {e}"))?;
    if value.get("ok").and_then(serde_json::Value::as_bool) != Some(true) {
        let why = value
            .get("error")
            .and_then(serde_json::Value::as_str)
            .unwrap_or("no error detail in response");
        return Err(format!("server rejected the request: {why}"));
    }
    if args.shutdown {
        println!("server acknowledged shutdown");
        return Ok(());
    }
    if args.stats {
        // The introspection line is already machine-readable; print it
        // verbatim so scripts can parse counters straight off stdout.
        println!("{line}");
        return Ok(());
    }
    if args.json {
        // The exact StudyReport bytes the server computed: the `report`
        // field is the line's final field precisely so it can be sliced
        // out without re-serializing (and re-ordering) anything.
        let report = proto::report_slice(&line)
            .ok_or_else(|| format!("response carries no report: {line}"))?;
        println!("{report}");
        return Ok(());
    }
    let report =
        value.get("report").ok_or_else(|| format!("response carries no report: {line}"))?;
    let cells = report
        .get("cells")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| format!("response report carries no cells: {line}"))?;
    let ok = cells
        .iter()
        .filter(|c| c.get("ok").and_then(serde_json::Value::as_bool) == Some(true))
        .count();
    let hits = report
        .get("stats")
        .and_then(|s| s.get("cache_hits"))
        .and_then(serde_json::Value::as_u64)
        .unwrap_or(0);
    println!(
        "{} cells ({} ok, {} failed), {} served from the warm cache",
        cells.len(),
        ok,
        cells.len() - ok,
        hits
    );
    // Mirror explore's exit rule: a grid with no feasible cell fails.
    if !cells.is_empty() && ok == 0 {
        return Err(format!("all {} grid cells failed", cells.len()));
    }
    Ok(())
}

/// `bench`: the performance-trajectory harness — engine throughput, cache
/// speedup, serve round-trip percentiles, shard scaling and the
/// trace/stats cross-check, as one JSON document or a text summary.
fn run_bench(args: &Args) -> Result<(), String> {
    if !args.files.is_empty() {
        return Err("bench takes no operands (it builds its own workload)".to_string());
    }
    let report = bench::run(&bench::BenchOptions { quick: args.quick })
        .map_err(|e| format!("bench: {e}"))?;
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.summary());
    }
    if !report.trace_check.consistent() {
        return Err("bench: trace events disagree with engine statistics".to_string());
    }
    Ok(())
}

/// `fuzz`: fleet-scale differential fuzzing — seeded random specs through
/// the full study grid, cross-configuration invariants asserted per case,
/// optionally cross-checked against the sharded/remote transport.
fn run_fuzz(args: &Args) -> Result<(), String> {
    let count = args.count.unwrap_or(100);
    let seed = args.seed.unwrap_or(0);
    // The differential (sharded/remote) cross-check engages exactly like
    // explore's transport selection: --workers for a serve fleet,
    // --shards for local worker processes.
    let (differential, ephemeral_dir) = match (&args.workers, args.shards) {
        (Some(list), _) => {
            let endpoints = shard::parse_endpoints(list).map_err(|e| e.to_string())?;
            let Some(dir) = &args.cache_dir else {
                return Err("fuzz --workers needs --cache-dir: the coordinator and the \
                            serve fleet must share one result store"
                    .into());
            };
            let shards = args.shards.unwrap_or(endpoints.len());
            let timeout = args.timeout.map_or(proto::DEFAULT_TIMEOUT, Duration::from_secs);
            let diff = fuzz::Differential {
                cache_dir: PathBuf::from(dir),
                shards,
                transport: shard::Transport::Remote(shard::RemoteTransport { endpoints, timeout }),
            };
            (Some(diff), None)
        }
        (None, Some(shards)) => {
            let worker_binary =
                std::env::current_exe().map_err(|e| format!("resolving worker binary: {e}"))?;
            let (cache_dir, ephemeral) = match &args.cache_dir {
                Some(dir) => (PathBuf::from(dir), None),
                None => {
                    let dir =
                        std::env::temp_dir().join(format!("bittrans_fuzz_{}", std::process::id()));
                    (dir.clone(), Some(dir))
                }
            };
            let diff = fuzz::Differential {
                cache_dir,
                shards,
                transport: shard::Transport::Local(shard::LocalTransport {
                    worker_binary,
                    threads_per_worker: args.jobs.map(|jobs| (jobs / shards.max(1)).max(1)),
                }),
            };
            (Some(diff), ephemeral)
        }
        (None, None) => (None, None),
    };
    let options = fuzz::FuzzOptions {
        count,
        seed,
        mul_prob: args.mul_prob,
        workers: args.jobs,
        differential,
    };
    let result = match args.replay {
        Some(target) => {
            // A replay seed must come from the run being reproduced:
            // outside [seed, seed+count) it was never generated.
            if target.wrapping_sub(seed) >= count as u64 {
                return Err(format!(
                    "--replay {target} was never generated by --seed {seed} --count {count}; \
                     pass the original run's --seed/--count"
                ));
            }
            let outcome = fuzz::run_case(target, &options);
            println!(
                "replay seed {target} (shape {}): {} cells, {} feasible, {} violation(s)",
                outcome.shape.name(),
                outcome.cells,
                outcome.feasible,
                outcome.violations.len()
            );
            for v in &outcome.violations {
                println!("  [{}] {}", v.invariant.name(), v.detail);
            }
            if outcome.violations.is_empty() {
                Ok(())
            } else {
                Err(format!("replay of seed {target} reproduced the failure"))
            }
        }
        None => {
            let report = fuzz::run(&options);
            if args.json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.total_violations() == 0 {
                Ok(())
            } else {
                Err(format!(
                    "fuzz: {} invariant violation(s); failing seeds: {:?} \
                     (reproduce with `bittrans fuzz --replay <seed> --seed {seed} --count {count}`)",
                    report.total_violations(),
                    report.failing_seeds
                ))
            }
        }
    };
    if let Some(dir) = ephemeral_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

/// `report normalize`: rewrite a study-report JSON document with the
/// run-shape fields (`elapsed_ms`, `workers`) blanked, so reports from
/// runs with different worker counts or timings can be byte-compared.
fn run_report(args: &Args) -> Result<(), String> {
    match args.files.as_slice() {
        [action, path] if action == "normalize" => {
            print!("{}", bittrans::engine::report::normalize_run_shape(&read_source(path)?));
            Ok(())
        }
        _ => Err("usage: bittrans report normalize <report.json|->".to_string()),
    }
}

/// `cache prune`: one size/age eviction sweep over a cache directory.
fn run_cache(args: &Args) -> Result<(), String> {
    match args.files[0].as_str() {
        "prune" => {}
        other => return Err(format!("unknown cache action `{other}` (expected `prune`)")),
    }
    let Some(dir) = &args.cache_dir else {
        return Err("cache prune needs --cache-dir".into());
    };
    // Prune modifies an existing store; quietly creating an empty one
    // would turn a mistyped path into a silent no-op.
    if !Path::new(dir).is_dir() {
        return Err(format!("cache dir {dir}: not a directory"));
    }
    let engine =
        Engine::default().with_cache_dir(dir).map_err(|e| format!("cache dir {dir}: {e}"))?;
    let policy = PrunePolicy {
        max_bytes: args.max_bytes,
        max_age: args.max_age.map(std::time::Duration::from_secs),
    };
    let report = engine.prune_cache(policy).map_err(|e| e.to_string())?;
    if args.json {
        println!("{}", serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?);
    } else {
        println!("{report}");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    // Install the trace collector before any work runs. `shard-worker`
    // skips the environment path: every worker of one coordinator inherits
    // the same BITTRANS_TRACE value, and concurrent whole-file rewrites of
    // one trace file would leave whichever worker flushed last.
    if let Some(path) = &args.trace_out {
        trace::install_file(path);
    } else if args.command != "shard-worker" {
        trace::install_from_env();
    }
    let result = run_command(&args);
    if let Err(e) = trace::flush() {
        eprintln!("warning: writing trace: {e}");
    }
    result
}

fn run_command(args: &Args) -> Result<(), String> {
    let options =
        CompareOptions::builder().adder_arch(args.adder).build().map_err(|e| e.to_string())?;
    match args.command.as_str() {
        "batch" => return run_batch(args, &options),
        "explore" => return run_explore(args, &options),
        "shard-worker" => return run_shard_worker(args),
        "cache" => return run_cache(args),
        "serve" => return run_serve(args),
        "client" => return run_client(args, &options),
        "bench" => return run_bench(args),
        "fuzz" => return run_fuzz(args),
        "report" => return run_report(args),
        command if args.json && command != "sweep" => {
            return Err(format!("--json is not supported by `{command}`"));
        }
        _ => {}
    }
    if args.files.len() > 1 {
        return Err(format!(
            "`{}` takes exactly one spec file ({} given); use `batch` or `explore` for many",
            args.command,
            args.files.len()
        ));
    }
    let spec = read_spec(&args.files[0])?;
    match args.command.as_str() {
        "check" => {
            let stats = spec.stats();
            println!(
                "{}: {} operations ({} add, {} mul, {} other, {} glue), critical path {}δ",
                spec.name(),
                stats.total,
                stats.adds,
                stats.muls,
                stats.other,
                stats.glue,
                critical_path(&extract(&spec).map_err(|e| e.to_string())?),
            );
            Ok(())
        }
        "fragments" => {
            let latency = args.single_latency()?;
            let opt = optimize(&spec, latency, &options).map_err(|e| e.to_string())?;
            println!(
                "cycle {}δ (critical path {}δ / λ={})",
                opt.fragmented.cycle, opt.fragmented.critical_path, latency
            );
            for (source, ids) in &opt.fragmented.per_source {
                let desc: Vec<String> = ids
                    .iter()
                    .map(|id| {
                        let fi = &opt.fragmented.fragments[id];
                        format!("{} @[{}..{}]", fi.range, fi.asap, fi.alap)
                    })
                    .collect();
                println!("  {}: {}", opt.kernel.op(*source).label(), desc.join(", "));
            }
            println!("\nschedule:\n{}", opt.schedule.render(&opt.fragmented.spec));
            Ok(())
        }
        "optimize" => {
            let opt =
                optimize(&spec, args.single_latency()?, &options).map_err(|e| e.to_string())?;
            println!(
                "{}: cycle {}δ = {:.2} ns, execution {:.2} ns, area {}",
                spec.name(),
                opt.implementation.cycle_delta,
                opt.implementation.cycle_ns,
                opt.implementation.execution_ns,
                opt.implementation.area,
            );
            if args.netlist {
                println!("\n{}", opt.datapath.netlist(spec.name()).bill_of_materials());
            }
            if let Some(dir) = &args.emit_vhdl {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                let beh = format!("{dir}/{}_transformed.vhd", spec.name());
                std::fs::write(&beh, bittrans::ir::vhdl::emit(&opt.fragmented.spec))
                    .map_err(|e| e.to_string())?;
                let st = format!("{dir}/{}_datapath.vhd", spec.name());
                std::fs::write(&st, opt.datapath.netlist(spec.name()).to_vhdl())
                    .map_err(|e| e.to_string())?;
                println!("wrote {beh} and {st}");
            }
            Ok(())
        }
        "compare" => {
            let cmp =
                compare(&spec, args.single_latency()?, &options).map_err(|e| e.to_string())?;
            println!(
                "{}",
                render_table1(&[("Conventional", &cmp.original), ("Optimized", &cmp.optimized),])
            );
            println!(
                "cycle saved {:.1} %, area {:+.1} %, operations {:+.0} %",
                cmp.cycle_saved_pct(),
                cmp.area_delta_pct(),
                cmp.op_growth_pct()
            );
            Ok(())
        }
        "sweep" => {
            if args.from > args.to {
                return Err("--from must not exceed --to".into());
            }
            let report = Study::single(spec.clone())
                .latencies(args.from..=args.to)
                .base_options(options)
                .run(&make_engine(args)?);
            let points = report.sweep_points();
            if args.json {
                let json = serde_json::to_string_pretty(&points).map_err(|e| e.to_string())?;
                println!("{json}");
            } else {
                println!("{}", render_sweep(&format!("{} sweep", spec.name()), &points));
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
