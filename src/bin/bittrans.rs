//! `bittrans` — command-line front end for the presynthesis optimiser.
//!
//! ```text
//! bittrans optimize  <file.spec> --latency N [--adder rca|cla|csel] [--emit-vhdl DIR] [--netlist]
//! bittrans compare   <file.spec> --latency N
//! bittrans sweep     <file.spec> --from N --to M
//! bittrans fragments <file.spec> --latency N
//! bittrans check     <file.spec>
//! ```
//!
//! `<file.spec>` contains a specification in the textual DSL (see
//! `bittrans::ir::parse`); pass `-` to read from stdin.

use bittrans::core::report::{render_sweep, render_table1};
use bittrans::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    command: String,
    file: String,
    latency: u32,
    from: u32,
    to: u32,
    adder: AdderArch,
    emit_vhdl: Option<String>,
    netlist: bool,
}

fn usage() -> String {
    "usage: bittrans <optimize|compare|sweep|fragments|check> <file.spec|-> \
     [--latency N] [--from N] [--to M] [--adder rca|cla|csel] \
     [--emit-vhdl DIR] [--netlist]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let file = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        file,
        latency: 3,
        from: 2,
        to: 10,
        adder: AdderArch::RippleCarry,
        emit_vhdl: None,
        netlist: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} needs a value\n{}", usage()))
        };
        match flag.as_str() {
            "--latency" => args.latency = value("--latency")?.parse().map_err(|e| format!("bad --latency: {e}"))?,
            "--from" => args.from = value("--from")?.parse().map_err(|e| format!("bad --from: {e}"))?,
            "--to" => args.to = value("--to")?.parse().map_err(|e| format!("bad --to: {e}"))?,
            "--adder" => {
                args.adder = match value("--adder")?.as_str() {
                    "rca" => AdderArch::RippleCarry,
                    "cla" => AdderArch::CarryLookahead,
                    "csel" => AdderArch::CarrySelect,
                    other => return Err(format!("unknown adder `{other}` (rca|cla|csel)")),
                }
            }
            "--emit-vhdl" => args.emit_vhdl = Some(value("--emit-vhdl")?),
            "--netlist" => args.netlist = true,
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn read_spec(path: &str) -> Result<Spec, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    Spec::parse(&text).map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let spec = read_spec(&args.file)?;
    let options = CompareOptions { adder_arch: args.adder, ..Default::default() };
    match args.command.as_str() {
        "check" => {
            let stats = spec.stats();
            println!(
                "{}: {} operations ({} add, {} mul, {} other, {} glue), critical path {}δ",
                spec.name(),
                stats.total,
                stats.adds,
                stats.muls,
                stats.other,
                stats.glue,
                critical_path(&extract(&spec).map_err(|e| e.to_string())?),
            );
            Ok(())
        }
        "fragments" => {
            let opt = optimize(&spec, args.latency, &options).map_err(|e| e.to_string())?;
            println!(
                "cycle {}δ (critical path {}δ / λ={})",
                opt.fragmented.cycle, opt.fragmented.critical_path, args.latency
            );
            for (source, ids) in &opt.fragmented.per_source {
                let desc: Vec<String> = ids
                    .iter()
                    .map(|id| {
                        let fi = &opt.fragmented.fragments[id];
                        format!("{} @[{}..{}]", fi.range, fi.asap, fi.alap)
                    })
                    .collect();
                println!("  {}: {}", opt.kernel.op(*source).label(), desc.join(", "));
            }
            println!("\nschedule:\n{}", opt.schedule.render(&opt.fragmented.spec));
            Ok(())
        }
        "optimize" => {
            let opt = optimize(&spec, args.latency, &options).map_err(|e| e.to_string())?;
            println!(
                "{}: cycle {}δ = {:.2} ns, execution {:.2} ns, area {}",
                spec.name(),
                opt.implementation.cycle_delta,
                opt.implementation.cycle_ns,
                opt.implementation.execution_ns,
                opt.implementation.area,
            );
            if args.netlist {
                println!("\n{}", opt.datapath.netlist(spec.name()).bill_of_materials());
            }
            if let Some(dir) = &args.emit_vhdl {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                let beh = format!("{dir}/{}_transformed.vhd", spec.name());
                std::fs::write(&beh, bittrans::ir::vhdl::emit(&opt.fragmented.spec))
                    .map_err(|e| e.to_string())?;
                let st = format!("{dir}/{}_datapath.vhd", spec.name());
                std::fs::write(&st, opt.datapath.netlist(spec.name()).to_vhdl())
                    .map_err(|e| e.to_string())?;
                println!("wrote {beh} and {st}");
            }
            Ok(())
        }
        "compare" => {
            let cmp = compare(&spec, args.latency, &options).map_err(|e| e.to_string())?;
            println!(
                "{}",
                render_table1(&[
                    ("Conventional", &cmp.original),
                    ("Optimized", &cmp.optimized),
                ])
            );
            println!(
                "cycle saved {:.1} %, area {:+.1} %, operations {:+.0} %",
                cmp.cycle_saved_pct(),
                cmp.area_delta_pct(),
                cmp.op_growth_pct()
            );
            Ok(())
        }
        "sweep" => {
            if args.from > args.to {
                return Err("--from must not exceed --to".into());
            }
            let points = latency_sweep(&spec, args.from..=args.to, &options);
            println!("{}", render_sweep(&format!("{} sweep", spec.name()), &points));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
