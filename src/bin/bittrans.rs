//! `bittrans` — command-line front end for the presynthesis optimiser.
//!
//! ```text
//! bittrans optimize  <file.spec> --latency N [--adder rca|cla|csel] [--emit-vhdl DIR] [--netlist]
//! bittrans compare   <file.spec> --latency N
//! bittrans sweep     <file.spec> --from N --to M [--jobs K]
//! bittrans batch     <dir-or-files...> --latency N [--jobs K]
//! bittrans fragments <file.spec> --latency N
//! bittrans check     <file.spec>
//! ```
//!
//! `<file.spec>` contains a specification in the textual DSL (see
//! `bittrans::ir::parse`); pass `-` to read from stdin. `batch` accepts any
//! mix of `.spec` files and directories (scanned for `*.spec`), optimizes
//! every specification on a worker pool (`--jobs`, default: all cores) and
//! reports the per-spec comparisons plus the engine's cache statistics.

use bittrans::core::report::{render_sweep, render_table1};
use bittrans::engine::{Engine, EngineOptions, Job};
use bittrans::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    command: String,
    files: Vec<String>,
    latency: u32,
    from: u32,
    to: u32,
    jobs: Option<usize>,
    adder: AdderArch,
    emit_vhdl: Option<String>,
    netlist: bool,
}

fn usage() -> String {
    "usage: bittrans <optimize|compare|sweep|batch|fragments|check> <file.spec|dir|-> ... \
     [--latency N] [--from N] [--to M] [--jobs K] [--adder rca|cla|csel] \
     [--emit-vhdl DIR] [--netlist]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        files: Vec::new(),
        latency: 3,
        from: 2,
        to: 10,
        jobs: None,
        adder: AdderArch::RippleCarry,
        emit_vhdl: None,
        netlist: false,
    };
    while let Some(flag) = argv.next() {
        let mut value =
            |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value\n{}", usage()));
        match flag.as_str() {
            "--latency" => {
                args.latency =
                    value("--latency")?.parse().map_err(|e| format!("bad --latency: {e}"))?
            }
            "--from" => {
                args.from = value("--from")?.parse().map_err(|e| format!("bad --from: {e}"))?
            }
            "--to" => args.to = value("--to")?.parse().map_err(|e| format!("bad --to: {e}"))?,
            "--jobs" => {
                let k: usize = value("--jobs")?.parse().map_err(|e| format!("bad --jobs: {e}"))?;
                if k == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                args.jobs = Some(k);
            }
            "--adder" => {
                args.adder = match value("--adder")?.as_str() {
                    "rca" => AdderArch::RippleCarry,
                    "cla" => AdderArch::CarryLookahead,
                    "csel" => AdderArch::CarrySelect,
                    other => return Err(format!("unknown adder `{other}` (rca|cla|csel)")),
                }
            }
            "--emit-vhdl" => args.emit_vhdl = Some(value("--emit-vhdl")?),
            "--netlist" => args.netlist = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            positional => args.files.push(positional.to_string()),
        }
    }
    if args.files.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn read_spec(path: &str) -> Result<Spec, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    Spec::parse(&text).map_err(|e| e.to_string())
}

/// Expands the `batch` operands: files stay as-is, directories contribute
/// every contained `*.spec` in name order.
fn collect_spec_paths(operands: &[String]) -> Result<Vec<String>, String> {
    let mut paths = Vec::new();
    for operand in operands {
        if operand == "-" {
            paths.push(operand.clone());
            continue;
        }
        let meta = std::fs::metadata(operand).map_err(|e| format!("reading {operand}: {e}"))?;
        if meta.is_dir() {
            let mut found = Vec::new();
            let entries =
                std::fs::read_dir(operand).map_err(|e| format!("reading {operand}: {e}"))?;
            for entry in entries {
                let path = entry.map_err(|e| format!("reading {operand}: {e}"))?.path();
                if path.extension().is_some_and(|ext| ext == "spec") {
                    found.push(path.to_string_lossy().into_owned());
                }
            }
            found.sort();
            if found.is_empty() {
                return Err(format!("{operand}: no .spec files in directory"));
            }
            paths.extend(found);
        } else {
            paths.push(operand.clone());
        }
    }
    Ok(paths)
}

fn run_batch(args: &Args, options: &CompareOptions) -> Result<(), String> {
    let paths = collect_spec_paths(&args.files)?;
    let jobs: Vec<Job> = paths
        .iter()
        .map(|path| Ok(Job::with_options(read_spec(path)?, args.latency, *options)))
        .collect::<Result<_, String>>()?;

    let engine = Engine::new(EngineOptions { workers: args.jobs, ..Default::default() });
    let report = engine.run(jobs);

    println!(
        "{:<20}{:>4}{:>14}{:>14}{:>10}{:>10}{:>8}",
        "spec", "λ", "orig (ns)", "opt (ns)", "saved", "area Δ", "cached"
    );
    let mut failures = 0usize;
    for outcome in &report.outcomes {
        match outcome.result.as_ref() {
            Ok(cmp) => println!(
                "{:<20}{:>4}{:>14.2}{:>14.2}{:>9.1}%{:>9.1}%{:>8}",
                outcome.name,
                outcome.latency,
                cmp.original.cycle_ns,
                cmp.optimized.cycle_ns,
                cmp.cycle_saved_pct(),
                cmp.area_delta_pct(),
                if outcome.from_cache { "yes" } else { "no" },
            ),
            Err(e) => {
                failures += 1;
                println!("{:<20}{:>4}  error: {e}", outcome.name, outcome.latency);
            }
        }
    }
    println!("\nengine: {}", report.stats);
    if failures > 0 {
        return Err(format!("{failures} of {} jobs failed", report.outcomes.len()));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let options = CompareOptions { adder_arch: args.adder, ..Default::default() };
    if args.command == "batch" {
        return run_batch(&args, &options);
    }
    if args.files.len() > 1 {
        return Err(format!(
            "`{}` takes exactly one spec file ({} given); use `batch` for many",
            args.command,
            args.files.len()
        ));
    }
    let spec = read_spec(&args.files[0])?;
    match args.command.as_str() {
        "check" => {
            let stats = spec.stats();
            println!(
                "{}: {} operations ({} add, {} mul, {} other, {} glue), critical path {}δ",
                spec.name(),
                stats.total,
                stats.adds,
                stats.muls,
                stats.other,
                stats.glue,
                critical_path(&extract(&spec).map_err(|e| e.to_string())?),
            );
            Ok(())
        }
        "fragments" => {
            let opt = optimize(&spec, args.latency, &options).map_err(|e| e.to_string())?;
            println!(
                "cycle {}δ (critical path {}δ / λ={})",
                opt.fragmented.cycle, opt.fragmented.critical_path, args.latency
            );
            for (source, ids) in &opt.fragmented.per_source {
                let desc: Vec<String> = ids
                    .iter()
                    .map(|id| {
                        let fi = &opt.fragmented.fragments[id];
                        format!("{} @[{}..{}]", fi.range, fi.asap, fi.alap)
                    })
                    .collect();
                println!("  {}: {}", opt.kernel.op(*source).label(), desc.join(", "));
            }
            println!("\nschedule:\n{}", opt.schedule.render(&opt.fragmented.spec));
            Ok(())
        }
        "optimize" => {
            let opt = optimize(&spec, args.latency, &options).map_err(|e| e.to_string())?;
            println!(
                "{}: cycle {}δ = {:.2} ns, execution {:.2} ns, area {}",
                spec.name(),
                opt.implementation.cycle_delta,
                opt.implementation.cycle_ns,
                opt.implementation.execution_ns,
                opt.implementation.area,
            );
            if args.netlist {
                println!("\n{}", opt.datapath.netlist(spec.name()).bill_of_materials());
            }
            if let Some(dir) = &args.emit_vhdl {
                std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                let beh = format!("{dir}/{}_transformed.vhd", spec.name());
                std::fs::write(&beh, bittrans::ir::vhdl::emit(&opt.fragmented.spec))
                    .map_err(|e| e.to_string())?;
                let st = format!("{dir}/{}_datapath.vhd", spec.name());
                std::fs::write(&st, opt.datapath.netlist(spec.name()).to_vhdl())
                    .map_err(|e| e.to_string())?;
                println!("wrote {beh} and {st}");
            }
            Ok(())
        }
        "compare" => {
            let cmp = compare(&spec, args.latency, &options).map_err(|e| e.to_string())?;
            println!(
                "{}",
                render_table1(&[("Conventional", &cmp.original), ("Optimized", &cmp.optimized),])
            );
            println!(
                "cycle saved {:.1} %, area {:+.1} %, operations {:+.0} %",
                cmp.cycle_saved_pct(),
                cmp.area_delta_pct(),
                cmp.op_growth_pct()
            );
            Ok(())
        }
        "sweep" => {
            if args.from > args.to {
                return Err("--from must not exceed --to".into());
            }
            let engine = Engine::new(EngineOptions { workers: args.jobs, ..Default::default() });
            let points = engine.sweep(&spec, args.from..=args.to, &options);
            println!("{}", render_sweep(&format!("{} sweep", spec.name()), &points));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
