//! # bittrans-sched
//!
//! Schedulers for the `bittrans` workspace.
//!
//! Two families:
//!
//! * [`conventional`] — the **baseline**: a chaining-aware, time-constrained
//!   list scheduler treating operations as atomic (they must fit entirely
//!   within one clock cycle). This plays the role of Synopsys Behavioral
//!   Compiler in the paper's experiments: it schedules the *original*
//!   specification, and its minimal feasible cycle length is the
//!   "Original" column of Tables II/III.
//! * [`fragment`] — the scheduler for **fragmented** specifications
//!   (`bittrans-frag`): a list scheduler that places each fragment within
//!   its `[ASAP, ALAP]` mobility window, balances the number of additions
//!   per cycle (the paper's Fig. 3 g), honours carry-chain and operand
//!   dependencies, and verifies bit-exact cycle capacity under the ripple
//!   model.
//!
//! Both produce a [`Schedule`]: an assignment of every operation to a
//! 1-based cycle.
//!
//! ```
//! use bittrans_ir::prelude::*;
//! use bittrans_sched::conventional::{schedule_conventional, ConventionalOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = Spec::parse(
//!     "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
//!       C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
//! )?;
//! // One 16-bit addition per cycle: the paper's Fig. 1 b).
//! let s = schedule_conventional(&spec, &ConventionalOptions::with_latency(3))?;
//! assert_eq!(s.cycle, 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod conventional;
pub mod engine;
pub mod fragment;

use bittrans_ir::prelude::*;
use bittrans_timing::Delta;
use std::collections::BTreeMap;
use std::fmt;

/// An assignment of operations to clock cycles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Number of cycles (λ).
    pub latency: u32,
    /// Cycle duration in δ.
    pub cycle: Delta,
    assignment: BTreeMap<OpId, u32>,
}

impl Schedule {
    /// Creates a schedule from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any assigned cycle is outside `1..=latency`.
    pub fn new(latency: u32, cycle: Delta, assignment: BTreeMap<OpId, u32>) -> Self {
        for (&op, &k) in &assignment {
            assert!(
                (1..=latency).contains(&k),
                "{op} scheduled in cycle {k}, outside 1..={latency}"
            );
        }
        Schedule { latency, cycle, assignment }
    }

    /// The cycle an operation executes in (1-based).
    pub fn cycle_of(&self, op: OpId) -> Option<u32> {
        self.assignment.get(&op).copied()
    }

    /// All operations assigned to cycle `k`.
    pub fn ops_in_cycle(&self, k: u32) -> impl Iterator<Item = OpId> + '_ {
        self.assignment.iter().filter(move |&(_, &c)| c == k).map(|(&op, _)| op)
    }

    /// Iterates over `(op, cycle)` pairs in op order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, u32)> + '_ {
        self.assignment.iter().map(|(&op, &c)| (op, c))
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Renders a compact per-cycle listing (for examples and debugging).
    pub fn render(&self, spec: &Spec) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for k in 1..=self.latency {
            let mut names: Vec<String> = self
                .ops_in_cycle(k)
                .filter(|&op| !spec.op(op).kind().is_glue())
                .map(|op| spec.op(op).label())
                .collect();
            names.sort();
            let _ = writeln!(out, "cycle {k}: {}", names.join(" "));
        }
        out
    }
}

/// Errors raised by the schedulers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// An atomic operation is longer than the clock cycle.
    CycleTooShort {
        /// The operation.
        op: OpId,
        /// Its delay in δ.
        delay: Delta,
        /// The cycle duration in δ.
        cycle: Delta,
    },
    /// The schedule needs more cycles than the requested latency.
    LatencyExceeded {
        /// Cycles the schedule would need.
        needed: u32,
        /// The latency requested.
        latency: u32,
    },
    /// A fragment could not be placed inside its mobility window.
    NoFeasibleCycle {
        /// The fragment operation (in the fragmented spec).
        op: OpId,
        /// Window searched.
        window: (u32, u32),
    },
    /// Latency was zero.
    ZeroLatency,
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::CycleTooShort { op, delay, cycle } => {
                write!(f, "operation {op} takes {delay}δ, longer than the {cycle}δ cycle")
            }
            SchedError::LatencyExceeded { needed, latency } => {
                write!(f, "schedule needs {needed} cycles but latency is {latency}")
            }
            SchedError::NoFeasibleCycle { op, window } => write!(
                f,
                "no feasible cycle for fragment {op} in window {}..={}",
                window.0, window.1
            ),
            SchedError::ZeroLatency => write!(f, "latency must be at least one cycle"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Moves every glue operation's bookkeeping cycle to the cycle of its
/// *earliest consumer* (glue is computed lazily where it is first needed;
/// results crossing later cycle boundaries get registered by allocation).
/// Glue feeding only output ports keeps its producer-derived cycle.
///
/// Both schedulers run this after placement; it does not affect timing —
/// the placers treat glue as transparent wiring — only the allocation
/// bookkeeping downstream.
pub fn finalize_glue_cycles(spec: &Spec, assignment: &mut BTreeMap<OpId, u32>) {
    let users = spec.users();
    let is_glue =
        |op: &Operation| op.kind().is_glue() || matches!(op.kind(), OpKind::Eq | OpKind::Ne);
    // Backward: pull each glue op to its earliest consumer.
    for op in spec.ops().iter().rev() {
        if !is_glue(op) {
            continue;
        }
        let earliest = users
            .get(&op.result())
            .into_iter()
            .flatten()
            .filter_map(|&(u, _)| assignment.get(&u).copied())
            .min();
        if let Some(k) = earliest {
            assignment.insert(op.id(), k);
        }
    }
    // Forward: a glue op cannot compute before its producers' cycles.
    for op in spec.ops() {
        if !is_glue(op) {
            continue;
        }
        let lower = op
            .operands()
            .iter()
            .filter_map(|o| o.value_id())
            .filter_map(|v| spec.value(v).defining_op())
            .filter_map(|d| assignment.get(&d).copied())
            .max()
            .unwrap_or(1);
        let k = assignment.get(&op.id()).copied().unwrap_or(lower);
        assignment.insert(op.id(), k.max(lower));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_accessors() {
        let mut m = BTreeMap::new();
        m.insert(OpId::from_index(0), 1);
        m.insert(OpId::from_index(1), 2);
        m.insert(OpId::from_index(2), 2);
        let s = Schedule::new(3, 6, m);
        assert_eq!(s.cycle_of(OpId::from_index(0)), Some(1));
        assert_eq!(s.cycle_of(OpId::from_index(9)), None);
        assert_eq!(s.ops_in_cycle(2).count(), 2);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn schedule_validates_range() {
        let mut m = BTreeMap::new();
        m.insert(OpId::from_index(0), 4);
        Schedule::new(3, 6, m);
    }

    #[test]
    fn render_lists_cycles() {
        let spec =
            Spec::parse("spec s { input a: u4; input b: u4; X: u4 = a + b; output X; }").unwrap();
        let mut m = BTreeMap::new();
        m.insert(spec.ops()[0].id(), 1);
        let s = Schedule::new(2, 4, m);
        let text = s.render(&spec);
        assert!(text.contains("cycle 1: X"));
        assert!(text.contains("cycle 2: "));
    }
}
