//! Scheduling of fragmented specifications (the paper's Fig. 3 g).
//!
//! Fragments arrive with a mobility window `[ASAP, ALAP]` computed by
//! `bittrans-frag`. This scheduler places every fragment inside its window
//! with a list scheduler that balances additions per cycle ("In order to
//! balance the number of operations executed per cycle, operation A is
//! calculated in cycles 1 and 3" — §3.3) while verifying, bit-exactly, that
//! every placement fits its cycle: carry chains, operand slices produced in
//! the same cycle, and registered values are all honoured by the shared
//! [`Placer`] engine.

use crate::engine::Placer;
use crate::{SchedError, Schedule};
use bittrans_frag::Fragmented;
use bittrans_ir::prelude::*;

/// Options for [`schedule_fragments`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentScheduleOptions {
    /// Balance the number of fragment additions per cycle.
    pub balance: bool,
}

impl Default for FragmentScheduleOptions {
    fn default() -> Self {
        FragmentScheduleOptions { balance: true }
    }
}

/// Schedules the fragments of `f` into its λ cycles.
///
/// Every fragment is placed within `[ASAP, ALAP]`; when balancing, the
/// least-loaded feasible cycle wins (ties to the earliest). If the balanced
/// pass fails — possible when earlier balance choices consume the slack a
/// later fragment needed — a pure-ASAP pass is retried.
///
/// # Errors
///
/// [`SchedError::NoFeasibleCycle`] if some fragment fits no cycle of its
/// window even in the ASAP pass (cannot happen for plans produced by
/// `bittrans_frag::fragment`, whose windows are consistent).
pub fn schedule_fragments(
    f: &Fragmented,
    options: &FragmentScheduleOptions,
) -> Result<Schedule, SchedError> {
    match run_pass(f, options.balance) {
        Ok(s) => Ok(s),
        Err(_) if options.balance => run_pass(f, false),
        Err(e) => Err(e),
    }
}

fn run_pass(f: &Fragmented, balance: bool) -> Result<Schedule, SchedError> {
    let spec = &f.spec;
    let mut p = Placer::new(spec, f.cycle, f.latency);
    for op in spec.ops() {
        match f.fragments.get(&op.id()) {
            None => {
                debug_assert!(op.kind().is_glue());
                p.commit_glue(op);
            }
            Some(info) => {
                let lo = info.asap.max(p.earliest_input_cycle(op)).max(1);
                p.place_in_window(op, lo, info.alap, balance)?;
            }
        }
    }
    let mut assignment = p.assignment;
    crate::finalize_glue_cycles(spec, &mut assignment);
    Ok(Schedule::new(f.latency, f.cycle, assignment))
}

/// Checks a fragment schedule bit-exactly: replays the placement and
/// verifies every fragment fits the cycle it was assigned.
///
/// Returns the first offending op, or `None` when the schedule is valid.
pub fn verify_schedule(f: &Fragmented, schedule: &Schedule) -> Option<OpId> {
    let spec = &f.spec;
    let mut p = Placer::new(spec, schedule.cycle, schedule.latency);
    for op in spec.ops() {
        if f.fragments.contains_key(&op.id()) {
            let k = schedule.cycle_of(op.id())?;
            match p.try_place(op, k) {
                Some(times) => p.commit(op, k, times),
                None => return Some(op.id()),
            }
        } else {
            p.commit_glue(op);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_frag::{fragment, FragmentOptions};
    use bittrans_kernel::extract;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    fn fig3() -> Spec {
        Spec::parse(
            "spec fig3 {
               input i1: u6; input i2: u6; input i3: u6; input i4: u6;
               input i5: u5; input i6: u5;
               input j1: u8; input j2: u8; input j3: u8; input j4: u8;
               B: u6 = i1 + i2;
               C: u6 = B + i3;
               E: u6 = C + i4;
               A: u5 = i5 + i6;
               D: u6 = i3 + i4;
               F: u8 = j1 + j2;
               G: u8 = j3 + j4;
               H: u8 = F + G;
               output E; output H; output A; output D;
            }",
        )
        .unwrap()
    }

    #[test]
    fn motivational_example_schedules_one_fragment_per_cycle() {
        // Paper Fig. 2 b): a fragment of each original addition in every
        // cycle, at a 6δ cycle.
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        let s = schedule_fragments(&f, &FragmentScheduleOptions::default()).unwrap();
        assert_eq!(s.cycle, 6);
        for k in 1..=3 {
            let adds = s.ops_in_cycle(k).filter(|&op| f.spec.op(op).kind() == OpKind::Add).count();
            assert_eq!(adds, 3, "cycle {k} runs one fragment of each addition");
        }
        assert_eq!(verify_schedule(&f, &s), None);
    }

    #[test]
    fn fixed_fragments_land_on_their_cycle() {
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        let s = schedule_fragments(&f, &FragmentScheduleOptions::default()).unwrap();
        for (op, info) in &f.fragments {
            if info.is_fixed() {
                assert_eq!(s.cycle_of(*op), Some(info.asap));
            }
        }
    }

    #[test]
    fn fig3_balances_additions() {
        let spec = fig3();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        let s = schedule_fragments(&f, &FragmentScheduleOptions::default()).unwrap();
        assert_eq!(verify_schedule(&f, &s), None);
        // 8 source ops fragment into per-cycle work; balancing should keep
        // the per-cycle addition count within a small band.
        let counts: Vec<usize> = (1..=3)
            .map(|k| s.ops_in_cycle(k).filter(|&op| f.spec.op(op).kind() == OpKind::Add).count())
            .collect();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 2, "unbalanced schedule {counts:?}:\n{}", s.render(&f.spec));
    }

    #[test]
    fn respects_mobility_windows() {
        let spec = fig3();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        let s = schedule_fragments(&f, &FragmentScheduleOptions::default()).unwrap();
        for (op, info) in &f.fragments {
            let k = s.cycle_of(*op).unwrap();
            assert!(
                (info.asap..=info.alap).contains(&k),
                "{op} at {k}, window {}..={}",
                info.asap,
                info.alap
            );
        }
    }

    #[test]
    fn carry_order_is_respected() {
        let spec = fig3();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        let s = schedule_fragments(&f, &FragmentScheduleOptions::default()).unwrap();
        for ids in f.per_source.values() {
            let cycles: Vec<u32> = ids.iter().map(|id| s.cycle_of(*id).unwrap()).collect();
            for w in cycles.windows(2) {
                assert!(w[0] <= w[1], "carry chain out of order: {cycles:?}");
            }
        }
    }

    #[test]
    fn kernel_then_fragment_then_schedule_diffeq_like() {
        let spec = Spec::parse(
            "spec hal { input x: u8; input y: u8; input u: u8; input dx: u8; input a: u8;
              x1: u8 = x + dx;
              t2: u8 = u * dx;
              u1: u8 = u - t2;
              y1: u8 = y + t2;
              c: u1 = x1 < a;
              output x1; output u1; output y1; output c; }",
        )
        .unwrap();
        let kernel = extract(&spec).unwrap();
        for latency in 1..=5 {
            let f = fragment(&kernel, &FragmentOptions::with_latency(latency)).unwrap();
            let s = schedule_fragments(&f, &FragmentScheduleOptions::default())
                .unwrap_or_else(|e| panic!("λ={latency}: {e}"));
            assert_eq!(verify_schedule(&f, &s), None, "λ={latency}");
        }
    }

    #[test]
    fn unbalanced_pass_is_asap() {
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        let s = schedule_fragments(&f, &FragmentScheduleOptions { balance: false }).unwrap();
        assert_eq!(verify_schedule(&f, &s), None);
        for (op, info) in &f.fragments {
            if info.is_fixed() {
                assert_eq!(s.cycle_of(*op), Some(info.asap));
            }
        }
    }
}
