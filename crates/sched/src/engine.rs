//! Shared bit-exact placement engine.
//!
//! Both schedulers place operations cycle by cycle while tracking, for
//! every produced bit, *which cycle it is produced in and at what absolute
//! δ time it settles*. Chaining is bit-level: a consumer in the same cycle
//! sees the producer's real settle times (the ripple overlap of Fig. 1 e),
//! while a consumer in a later cycle reads registered bits available at its
//! cycle start. Glue is transparent wiring and is resolved on the fly.

use crate::SchedError;
use bittrans_ir::prelude::*;
use bittrans_timing::bitref::{add_profile, operand_bit, BitRef};
use bittrans_timing::{op_delay_delta, Delta};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// How operations chained within one cycle accumulate delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChainModel {
    /// Chained operations add their full component delays — the way a
    /// conventional tool (Synopsys BC with characterised component delays)
    /// sees chaining. Two chained 16-bit adders cost 32δ.
    #[default]
    ComponentSum,
    /// Bit-level chaining: the ripple paths overlap (the paper's Fig. 1 e
    /// and the BLC prior art \[3\]). Two chained 16-bit adders cost 17δ.
    BitLevel,
}

/// Production record of one bit: the cycle it is produced in (0 = constant
/// or primary input, available always) and its absolute settle time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitProd {
    /// Producing cycle; 0 means available from the start of any cycle.
    pub cycle: u32,
    /// Absolute settle time in δ.
    pub time: Delta,
}

const CONST_BIT: BitProd = BitProd { cycle: 0, time: 0 };

/// Bit-exact incremental placer.
pub struct Placer<'s> {
    spec: &'s Spec,
    /// Cycle duration in δ.
    pub cycle: Delta,
    /// Latency bound in cycles.
    pub latency: u32,
    /// Delay accumulation rule for in-cycle chaining.
    pub chain: ChainModel,
    /// Bit production records for placed (non-glue) results and inputs;
    /// `None` rows belong to glue results, resolved lazily.
    states: Vec<Option<Vec<BitProd>>>,
    /// Memo for lazily resolved glue bits (safe: the spec is topological,
    /// so a glue bit is only queried after its producers are committed).
    glue_memo: RefCell<Vec<Vec<Option<BitProd>>>>,
    /// Cycle assignment of placed operations.
    pub assignment: BTreeMap<OpId, u32>,
    /// Number of non-glue operations placed per cycle (for balancing).
    pub usage: BTreeMap<u32, u32>,
}

impl<'s> Placer<'s> {
    /// Creates an empty placer with bit-level chaining: inputs are
    /// available from cycle start.
    pub fn new(spec: &'s Spec, cycle: Delta, latency: u32) -> Self {
        Self::with_chain(spec, cycle, latency, ChainModel::BitLevel)
    }

    /// Creates an empty placer with an explicit chain model.
    pub fn with_chain(spec: &'s Spec, cycle: Delta, latency: u32, chain: ChainModel) -> Self {
        let mut states: Vec<Option<Vec<BitProd>>> = vec![None; spec.values().len()];
        for &input in spec.inputs() {
            let w = spec.value(input).width() as usize;
            states[input.index()] = Some(vec![CONST_BIT; w]);
        }
        let glue_memo =
            RefCell::new(spec.values().iter().map(|v| vec![None; v.width() as usize]).collect());
        Placer {
            spec,
            cycle,
            latency,
            chain,
            states,
            glue_memo,
            assignment: BTreeMap::new(),
            usage: BTreeMap::new(),
        }
    }

    /// Start time (absolute δ) of cycle `k` (1-based).
    fn cycle_start(&self, k: u32) -> Delta {
        Delta::from(k - 1) * self.cycle
    }

    /// Effective availability of a produced bit inside cycle `k`:
    /// registered bits appear at cycle start, same-cycle bits at their
    /// settle time, future bits are unavailable.
    fn eff(&self, p: BitProd, k: u32) -> Option<Delta> {
        if p.cycle < k {
            Some(self.cycle_start(k))
        } else if p.cycle == k {
            Some(p.time)
        } else {
            None
        }
    }

    /// Resolves bit `i` of `value` (recursing through glue) to its
    /// production record.
    fn prod_of(&self, value: ValueId, i: u32) -> BitProd {
        if let Some(row) = &self.states[value.index()] {
            return row[i as usize];
        }
        if let Some(hit) = self.glue_memo.borrow()[value.index()][i as usize] {
            return hit;
        }
        let op = self
            .spec
            .value(value)
            .defining_op()
            .expect("unplaced non-input value has a defining op");
        let op = self.spec.op(op);
        debug_assert!(op.kind().is_glue() || matches!(op.kind(), OpKind::Eq | OpKind::Ne));
        let p = self.glue_bit(op, i);
        self.glue_memo.borrow_mut()[value.index()][i as usize] = Some(p);
        p
    }

    /// Production record of one output bit of a glue operation: the
    /// (cycle, time)-max over the bits it wires together.
    fn glue_bit(&self, op: &Operation, i: u32) -> BitProd {
        let signed = op.signedness().is_signed();
        let of = |operand: &Operand, j: u32| -> BitProd {
            match operand_bit(self.spec, operand, j, signed) {
                BitRef::Const => CONST_BIT,
                BitRef::Value { value, bit } => self.prod_of(value, bit),
            }
        };
        let max2 =
            |a: BitProd, b: BitProd| if (b.cycle, b.time) > (a.cycle, a.time) { b } else { a };
        match op.kind() {
            OpKind::Not => of(&op.operands()[0], i),
            OpKind::And | OpKind::Or | OpKind::Xor => {
                max2(of(&op.operands()[0], i), of(&op.operands()[1], i))
            }
            OpKind::Mux => {
                let s = of(&op.operands()[0], 0);
                max2(s, max2(of(&op.operands()[1], i), of(&op.operands()[2], i)))
            }
            OpKind::Shl(k) => {
                if i >= k {
                    of(&op.operands()[0], i - k)
                } else {
                    CONST_BIT
                }
            }
            OpKind::Shr(k) => of(&op.operands()[0], i + k),
            OpKind::Concat => {
                let mut base = 0;
                for operand in op.operands() {
                    let ow = self.spec.operand_width(operand);
                    if i < base + ow {
                        return of(operand, i - base);
                    }
                    base += ow;
                }
                CONST_BIT
            }
            OpKind::RedOr | OpKind::RedAnd | OpKind::Eq | OpKind::Ne => {
                if i > 0 {
                    return CONST_BIT; // zero-extension bits
                }
                let mut m = CONST_BIT;
                for operand in op.operands() {
                    let ow = self.spec.operand_width(operand);
                    for j in 0..ow {
                        m = max2(m, of(operand, j));
                    }
                }
                m
            }
            other => unreachable!("{other} is not glue"),
        }
    }

    /// Effective time of bit `j` of `operand` inside cycle `k`; `None`
    /// when the bit is produced in a later cycle.
    fn operand_eff(&self, op: &Operation, operand: &Operand, j: u32, k: u32) -> Option<Delta> {
        match operand_bit(self.spec, operand, j, op.signedness().is_signed()) {
            BitRef::Const => Some(self.cycle_start(k)),
            BitRef::Value { value, bit } => self.eff(self.prod_of(value, bit), k),
        }
    }

    /// Attempts to compute the output settle times of a non-glue `op`
    /// executed in cycle `k`. Returns `None` if an input bit is not yet
    /// available in `k` or an output bit would settle past the cycle end.
    pub fn try_place(&self, op: &Operation, k: u32) -> Option<Vec<Delta>> {
        debug_assert!(!op.kind().is_glue());
        let w = op.width();
        let end = self.cycle_start(k) + self.cycle;
        if self.chain == ChainModel::ComponentSum {
            // Conventional chaining: the whole component starts after its
            // latest input bit and takes its full characterised delay.
            let mut start = self.cycle_start(k);
            for operand in op.operands() {
                let ow = self.spec.operand_width(operand);
                for j in 0..ow {
                    start = start.max(self.operand_eff(op, operand, j, k)?);
                }
            }
            let finish = start + op_delay_delta(self.spec, op);
            if finish > end {
                return None;
            }
            return Some(vec![finish; w as usize]);
        }
        let out = match op.kind() {
            OpKind::Add => self.add_times(op, k)?,
            OpKind::Sub | OpKind::Neg | OpKind::Abs => {
                let mut prev = self.cycle_start(k);
                let mut out = Vec::with_capacity(w as usize);
                for i in 0..w {
                    let mut t = prev;
                    for operand in &op.operands()[..op.operands().len().min(2)] {
                        t = t.max(self.operand_eff(op, operand, i, k)?);
                    }
                    prev = t + 1;
                    out.push(prev);
                }
                out
            }
            OpKind::Lt | OpKind::Le | OpKind::Gt | OpKind::Ge | OpKind::Max | OpKind::Min => {
                let w_in =
                    op.operands().iter().map(|o| self.spec.operand_width(o)).max().unwrap_or(1);
                let mut chain = self.cycle_start(k);
                for i in 0..w_in {
                    let mut t = chain;
                    for operand in op.operands() {
                        t = t.max(self.operand_eff(op, operand, i, k)?);
                    }
                    chain = t + 1;
                }
                vec![chain; w as usize]
            }
            OpKind::Mul => {
                let total = op_delay_delta(self.spec, op);
                let mut start = self.cycle_start(k);
                for operand in op.operands() {
                    let ow = self.spec.operand_width(operand);
                    for j in 0..ow {
                        start = start.max(self.operand_eff(op, operand, j, k)?);
                    }
                }
                vec![start + total; w as usize]
            }
            other => unreachable!("{other} handled as glue"),
        };
        if out.iter().any(|&t| t > end) {
            return None;
        }
        Some(out)
    }

    /// Refined ripple chain for `Add` (mirrors `bittrans-timing`).
    fn add_times(&self, op: &Operation, k: u32) -> Option<Vec<Delta>> {
        let w = op.width();
        let profile = add_profile(self.spec, op);
        let base = self.cycle_start(k);
        let mut t_carry = if profile.carry_live[0] {
            self.operand_eff(op, &op.operands()[2], 0, k)?
        } else {
            base
        };
        let mut out = Vec::with_capacity(w as usize);
        for i in 0..w {
            let [a_live, b_live] = profile.live[i as usize];
            let carry_in = profile.carry_live[i as usize];
            let ta = self.operand_eff(op, &op.operands()[0], i, k)?;
            let tb = self.operand_eff(op, &op.operands()[1], i, k)?;
            let t = match (a_live, b_live, carry_in) {
                (true, true, true) => ta.max(tb).max(t_carry) + 1,
                (true, true, false) => ta.max(tb) + 1,
                (true, false, true) => ta.max(t_carry) + 1,
                (false, true, true) => tb.max(t_carry) + 1,
                (true, false, false) => ta,
                (false, true, false) => tb,
                (false, false, true) => t_carry,
                (false, false, false) => base,
            };
            out.push(t);
            t_carry = if profile.carry_live[i as usize + 1] { t } else { base };
        }
        Some(out)
    }

    /// Commits `op` to cycle `k` with the settle times returned by
    /// [`Self::try_place`].
    pub fn commit(&mut self, op: &Operation, k: u32, times: Vec<Delta>) {
        let row: Vec<BitProd> = times.into_iter().map(|t| BitProd { cycle: k, time: t }).collect();
        self.states[op.result().index()] = Some(row);
        self.assignment.insert(op.id(), k);
        *self.usage.entry(k).or_insert(0) += 1;
    }

    /// Records a glue operation: assigned (for bookkeeping) to the latest
    /// cycle among the bits it wires, at least 1.
    pub fn commit_glue(&mut self, op: &Operation) {
        let k = (0..op.width()).map(|i| self.glue_bit(op, i).cycle).max().unwrap_or(0).max(1);
        self.assignment.insert(op.id(), k.min(self.latency.max(1)));
    }

    /// The latest producing cycle among `op`'s input bits (0 when every
    /// input is a port or constant) — the earliest cycle the op could
    /// possibly chain in is `max(this, 1)`.
    pub fn earliest_input_cycle(&self, op: &Operation) -> u32 {
        let signed = op.signedness().is_signed();
        let mut k = 0;
        for operand in op.operands() {
            let ow = self.spec.operand_width(operand);
            for j in 0..ow {
                if let BitRef::Value { value, bit } = operand_bit(self.spec, operand, j, signed) {
                    k = k.max(self.prod_of(value, bit).cycle);
                }
            }
        }
        k
    }

    /// Places `op` at the first valid cycle in `lo..=hi`; with
    /// `preferred`, tries the balance-chosen cycles first (falling back to
    /// the earliest valid).
    ///
    /// # Errors
    ///
    /// [`SchedError::NoFeasibleCycle`] when no cycle in the window works.
    pub fn place_in_window(
        &mut self,
        op: &Operation,
        lo: u32,
        hi: u32,
        balance: bool,
    ) -> Result<u32, SchedError> {
        let mut valid: Vec<u32> = Vec::new();
        for k in lo..=hi.min(self.latency) {
            if self.try_place(op, k).is_some() {
                valid.push(k);
                if !balance {
                    break;
                }
            }
        }
        let Some(&chosen) = (if balance {
            valid.iter().min_by_key(|&&k| (self.usage.get(&k).copied().unwrap_or(0), k))
        } else {
            valid.first()
        }) else {
            return Err(SchedError::NoFeasibleCycle { op: op.id(), window: (lo, hi) });
        };
        let times = self.try_place(op, chosen).expect("cycle was validated above");
        self.commit(op, chosen, times);
        Ok(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_timing::arrival_times;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn single_cycle_matches_arrival_times() {
        // Placing everything in cycle 1 of a wide cycle must reproduce the
        // pure dataflow arrival times.
        let spec = three_adds();
        let arr = arrival_times(&spec);
        let mut p = Placer::new(&spec, 100, 1);
        for op in spec.ops() {
            let t = p.try_place(op, 1).unwrap();
            for (i, &ti) in t.iter().enumerate() {
                assert_eq!(ti, arr.bit(op.result(), i as u32), "{} bit {i}", op.label());
            }
            p.commit(op, 1, t);
        }
    }

    #[test]
    fn registered_inputs_restart_chain() {
        let spec = three_adds();
        let mut p = Placer::new(&spec, 16, 3);
        let ops = spec.ops();
        let t = p.try_place(&ops[0], 1).unwrap();
        p.commit(&ops[0], 1, t);
        // E in cycle 2 reads registered C: bits settle at 16 + i + 1.
        let t = p.try_place(&ops[1], 2).unwrap();
        assert_eq!(t[0], 17);
        assert_eq!(t[15], 32);
    }

    #[test]
    fn chaining_in_same_cycle_overlaps() {
        let spec = three_adds();
        let mut p = Placer::new(&spec, 18, 1);
        let ops = spec.ops();
        for op in ops {
            let t = p.try_place(op, 1).unwrap();
            p.commit(op, 1, t);
        }
        // G's msb settles at 18δ — the Fig. 1 e) number.
        let g = &ops[2];
        assert_eq!(p.prod_of(g.result(), 15).time, 18);
    }

    #[test]
    fn rejects_overflowing_cycle() {
        let spec = three_adds();
        let p = Placer::new(&spec, 15, 1);
        assert!(p.try_place(&spec.ops()[0], 1).is_none(), "16δ add in 15δ cycle");
    }

    #[test]
    fn rejects_future_inputs() {
        let spec = three_adds();
        let mut p = Placer::new(&spec, 16, 3);
        let ops = spec.ops();
        let t = p.try_place(&ops[0], 2).unwrap();
        p.commit(&ops[0], 2, t);
        assert!(p.try_place(&ops[1], 1).is_none(), "consumer before producer");
        assert_eq!(p.earliest_input_cycle(&ops[1]), 2);
    }

    #[test]
    fn glue_is_transparent_across_cycles() {
        let spec = Spec::parse(
            "spec s { input a: u8; input b: u8;
              x: u8 = a + b;
              n: u8 = ~x;
              y: u8 = n + b;
              output y; }",
        )
        .unwrap();
        let mut p = Placer::new(&spec, 9, 2);
        let ops = spec.ops();
        let t = p.try_place(&ops[0], 1).unwrap();
        p.commit(&ops[0], 1, t);
        p.commit_glue(&ops[1]);
        // y in cycle 2 sees ~x as registered data at cycle start (9δ).
        let t = p.try_place(&ops[2], 2).unwrap();
        assert_eq!(t[0], 10);
        assert_eq!(p.assignment[&ops[1].id()], 1);
    }

    #[test]
    fn place_in_window_balances() {
        let spec = Spec::parse(
            "spec s { input a: u8; input b: u8;
              w: u8 = a + b; x: u8 = a + b; y: u8 = a + b; z: u8 = a + b;
              output w; output x; output y; output z; }",
        )
        .unwrap();
        let mut p = Placer::new(&spec, 8, 2);
        for op in spec.ops() {
            p.place_in_window(op, 1, 2, true).unwrap();
        }
        assert_eq!(p.usage[&1], 2);
        assert_eq!(p.usage[&2], 2);
    }

    #[test]
    fn component_sum_accumulates_delays() {
        let spec = three_adds();
        let mut p = Placer::with_chain(&spec, 48, 1, ChainModel::ComponentSum);
        let ops = spec.ops();
        // Chained in one cycle: finishes at 16, 32, 48 — summed delays.
        let t = p.try_place(&ops[0], 1).unwrap();
        assert!(t.iter().all(|&x| x == 16));
        p.commit(&ops[0], 1, t);
        let t = p.try_place(&ops[1], 1).unwrap();
        assert!(t.iter().all(|&x| x == 32));
        p.commit(&ops[1], 1, t);
        let t = p.try_place(&ops[2], 1).unwrap();
        assert!(t.iter().all(|&x| x == 48));
    }

    #[test]
    fn component_sum_rejects_what_bitlevel_accepts() {
        let spec = three_adds();
        // 18δ is enough for the ripple overlap but not for summed delays.
        let mut bit = Placer::with_chain(&spec, 18, 1, ChainModel::BitLevel);
        let mut sum = Placer::with_chain(&spec, 18, 1, ChainModel::ComponentSum);
        for op in spec.ops() {
            let t = bit.try_place(op, 1).expect("bit-level fits 18δ");
            bit.commit(op, 1, t);
        }
        let t = sum.try_place(&spec.ops()[0], 1).unwrap();
        sum.commit(&spec.ops()[0], 1, t);
        assert!(
            sum.try_place(&spec.ops()[1], 1).is_none(),
            "component-sum cannot chain two 16-bit adds into 18δ"
        );
    }

    #[test]
    fn no_feasible_cycle_error() {
        let spec = three_adds();
        let mut p = Placer::new(&spec, 10, 2);
        let err = p.place_in_window(&spec.ops()[0], 1, 2, false).unwrap_err();
        assert!(matches!(err, SchedError::NoFeasibleCycle { .. }));
    }
}
