//! The conventional (baseline) scheduler: atomic operations, operator
//! chaining, time-constrained list scheduling.
//!
//! This models what the paper's experiments run Synopsys Behavioral
//! Compiler as: operations cannot be split across cycles (no
//! fragmentation), but data-dependent operations may chain combinationally
//! within one cycle — with *physical* chained delays (the ripple paths of
//! Fig. 1 e), since that is what gate-level timing reports for chained
//! adders. The minimal feasible cycle length for a given latency λ — found
//! by [`minimal_cycle`] — is the "Original specification" cycle the tables
//! report; at λ = 1 the same scheduler reproduces the chained BLC-style
//! design of Fig. 1 d).

use crate::engine::{ChainModel, Placer};
use crate::{SchedError, Schedule};
use bittrans_ir::prelude::*;
use bittrans_timing::{critical_path, required_times, Delta};

/// How the baseline scheduler may combine operations within one cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Chaining {
    /// No chaining: every operation starts at a cycle boundary.
    Disabled,
    /// Operator chaining with summed component delays — what a conventional
    /// tool (the paper's Synopsys Behavioral Compiler baseline) does.
    #[default]
    ComponentSum,
    /// Bit-level chaining (the BLC prior art \[3\]; the paper's Fig. 1 d).
    BitLevel,
}

impl Chaining {
    fn model(self) -> ChainModel {
        match self {
            Chaining::BitLevel => ChainModel::BitLevel,
            _ => ChainModel::ComponentSum,
        }
    }

    fn enabled(self) -> bool {
        self != Chaining::Disabled
    }
}

/// Options for [`schedule_conventional`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConventionalOptions {
    /// Target latency λ in cycles.
    pub latency: u32,
    /// Cycle duration override in δ; `None` picks the minimum feasible via
    /// [`minimal_cycle`].
    pub cycle_override: Option<Delta>,
    /// In-cycle chaining rule.
    pub chaining: Chaining,
    /// Balance operation counts across cycles (distribution-graph style).
    pub balance: bool,
}

impl ConventionalOptions {
    /// The Behavioral-Compiler-like baseline for latency `λ`: component-sum
    /// chaining, balancing on, minimal feasible cycle.
    pub fn with_latency(latency: u32) -> Self {
        ConventionalOptions {
            latency,
            cycle_override: None,
            chaining: Chaining::ComponentSum,
            balance: true,
        }
    }

    /// The bit-level-chaining (BLC) design point for latency `λ`.
    pub fn blc(latency: u32) -> Self {
        ConventionalOptions {
            latency,
            cycle_override: None,
            chaining: Chaining::BitLevel,
            balance: true,
        }
    }
}

/// The standalone delay of every non-glue operation: its settle time with
/// all inputs registered (available at cycle start). The maximum is the
/// smallest cycle any atomic schedule can use.
pub fn standalone_delays(spec: &Spec) -> Vec<(OpId, Delta)> {
    spec.ops()
        .iter()
        .filter(|op| !op.kind().is_glue() && !matches!(op.kind(), OpKind::Eq | OpKind::Ne))
        .map(|op| (op.id(), bittrans_timing::op_delay_delta(spec, op)))
        .collect()
}

/// The longest standalone operation delay — the lower bound on the cycle
/// length of any atomic schedule.
pub fn max_op_delay(spec: &Spec) -> Delta {
    standalone_delays(spec).into_iter().map(|(_, d)| d).max().unwrap_or(1).max(1)
}

/// Number of cycles a pure-ASAP chained schedule needs at cycle length `c`,
/// or `None` when some operation cannot fit at all.
pub fn cycles_needed(spec: &Spec, c: Delta, chaining: Chaining) -> Option<u32> {
    let cap = spec.ops().len() as u32 + 2;
    let mut p = Placer::with_chain(spec, c, cap, chaining.model());
    let mut needed = 1;
    for op in spec.ops() {
        if op.kind().is_glue() || matches!(op.kind(), OpKind::Eq | OpKind::Ne) {
            p.commit_glue(op);
            continue;
        }
        let raw = p.earliest_input_cycle(op);
        let e0 = if chaining.enabled() { raw.max(1) } else { (raw + 1).max(1) };
        // e0 may need chaining that doesn't fit; e0 + 1 has all inputs
        // registered, so it works iff the op fits a cycle at all.
        let k = [e0, e0 + 1].into_iter().find(|&k| p.try_place(op, k).is_some())?;
        let times = p.try_place(op, k).expect("validated");
        p.commit(op, k, times);
        needed = needed.max(k);
    }
    Some(needed)
}

/// The summed-delay length of the longest dependence path — the single
/// cycle a component-sum chained schedule needs.
pub fn component_sum_length(spec: &Spec) -> Delta {
    let mut finish: Vec<Delta> = vec![0; spec.values().len()];
    let mut total = 1;
    for op in spec.ops() {
        let start = op
            .operands()
            .iter()
            .filter_map(|o| o.value_id())
            .map(|v| finish[v.index()])
            .max()
            .unwrap_or(0);
        let f = start + bittrans_timing::op_delay_delta(spec, op);
        finish[op.result().index()] = f;
        total = total.max(f);
    }
    total
}

/// The smallest cycle length (δ) at which the spec schedules atomically in
/// `latency` cycles.
///
/// # Errors
///
/// Returns [`SchedError::ZeroLatency`] when `latency` is zero.
pub fn minimal_cycle(spec: &Spec, latency: u32, chaining: Chaining) -> Result<Delta, SchedError> {
    if latency == 0 {
        return Err(SchedError::ZeroLatency);
    }
    let lo = max_op_delay(spec);
    let hi = match chaining {
        Chaining::BitLevel => critical_path(spec),
        Chaining::ComponentSum | Chaining::Disabled => component_sum_length(spec),
    }
    .max(lo);
    for c in lo..=hi {
        if let Some(needed) = cycles_needed(spec, c, chaining) {
            if needed <= latency {
                return Ok(c);
            }
        }
    }
    Ok(hi)
}

/// Schedules `spec` with the conventional baseline.
///
/// Operations are placed in topological order. With `balance`, each
/// operation may slide within its mobility window to the least-used cycle
/// (a light-weight distribution-graph balance, reducing the number of
/// concurrently needed functional units); every placement is verified
/// bit-exactly against the cycle capacity. If the balanced pass fails, a
/// pure-ASAP pass is retried before reporting failure.
///
/// # Errors
///
/// * [`SchedError::ZeroLatency`] — zero latency;
/// * [`SchedError::CycleTooShort`] — an operation exceeds the cycle length;
/// * [`SchedError::LatencyExceeded`] — the spec does not fit in λ cycles.
pub fn schedule_conventional(
    spec: &Spec,
    options: &ConventionalOptions,
) -> Result<Schedule, SchedError> {
    if options.latency == 0 {
        return Err(SchedError::ZeroLatency);
    }
    let c = match options.cycle_override {
        Some(c) => c,
        None => minimal_cycle(spec, options.latency, options.chaining)?,
    };
    for (op, d) in standalone_delays(spec) {
        if d > c {
            return Err(SchedError::CycleTooShort { op, delay: d, cycle: c });
        }
    }
    match cycles_needed(spec, c, options.chaining) {
        Some(needed) if needed <= options.latency => {}
        Some(needed) => {
            return Err(SchedError::LatencyExceeded { needed, latency: options.latency })
        }
        None => {
            // standalone check above should have caught this
            return Err(SchedError::LatencyExceeded { needed: u32::MAX, latency: options.latency });
        }
    }
    match run_pass(spec, c, options, options.balance) {
        Ok(s) => Ok(s),
        Err(_) if options.balance => run_pass(spec, c, options, false),
        Err(e) => Err(e),
    }
}

fn run_pass(
    spec: &Spec,
    c: Delta,
    options: &ConventionalOptions,
    balance: bool,
) -> Result<Schedule, SchedError> {
    // Advisory latest cycles from the δ-exact required times: the tightest
    // output bit of an op bounds how late it can run.
    let req = required_times(spec, c * options.latency);
    let mut p = Placer::with_chain(spec, c, options.latency, options.chaining.model());
    for op in spec.ops() {
        if op.kind().is_glue() || matches!(op.kind(), OpKind::Eq | OpKind::Ne) {
            p.commit_glue(op);
            continue;
        }
        let raw = p.earliest_input_cycle(op);
        let e0 = if options.chaining.enabled() { raw.max(1) } else { (raw + 1).max(1) };
        let l_adv = (0..op.width())
            .map(|i| req.bit(op.result(), i).div_ceil(c).max(1))
            .min()
            .unwrap_or(options.latency)
            .max(e0);
        match p.place_in_window(op, e0, l_adv, balance) {
            Ok(_) => {}
            Err(_) => {
                // Advisory window failed; fall back to any cycle up to λ.
                p.place_in_window(op, e0, options.latency, false).map_err(|_| {
                    SchedError::LatencyExceeded {
                        needed: options.latency + 1,
                        latency: options.latency,
                    }
                })?;
            }
        }
    }
    let mut assignment = p.assignment;
    crate::finalize_glue_cycles(spec, &mut assignment);
    Ok(Schedule::new(options.latency, c, assignment))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn fig1b_one_add_per_cycle() {
        // λ = 3: each 16-bit addition in its own cycle, 16δ cycles.
        let spec = three_adds();
        let s = schedule_conventional(&spec, &ConventionalOptions::with_latency(3)).unwrap();
        assert_eq!(s.cycle, 16);
        let cycles: Vec<u32> = spec.ops().iter().map(|op| s.cycle_of(op.id()).unwrap()).collect();
        assert_eq!(cycles, vec![1, 2, 3]);
    }

    #[test]
    fn fig1d_blc_single_cycle() {
        // λ = 1 with *bit-level* chaining: the whole chain in one 18δ cycle
        // (Fig. 1 d) — physical ripple overlap, not 48δ of summed delays.
        let spec = three_adds();
        let s = schedule_conventional(&spec, &ConventionalOptions::blc(1)).unwrap();
        assert_eq!(s.cycle, 18);
        assert!(spec.ops().iter().all(|op| s.cycle_of(op.id()) == Some(1)));
    }

    #[test]
    fn component_sum_chaining_is_pessimistic() {
        // The conventional tool sums component delays: one cycle needs 48δ.
        let spec = three_adds();
        let c = minimal_cycle(&spec, 1, Chaining::ComponentSum).unwrap();
        assert_eq!(c, 48);
        // λ = 2 with component-sum chaining: 32δ (two adds in one cycle).
        assert_eq!(minimal_cycle(&spec, 2, Chaining::ComponentSum).unwrap(), 32);
    }

    #[test]
    fn two_cycles_chains_two_adds() {
        // λ = 2 with bit-level chaining: two additions ripple-chain in 17δ.
        let spec = three_adds();
        let c = minimal_cycle(&spec, 2, Chaining::BitLevel).unwrap();
        assert_eq!(c, 17);
    }

    #[test]
    fn without_chaining_cycle_count_is_depth() {
        let spec = three_adds();
        assert_eq!(cycles_needed(&spec, 16, Chaining::Disabled), Some(3));
        assert_eq!(cycles_needed(&spec, 17, Chaining::BitLevel), Some(2));
        assert_eq!(cycles_needed(&spec, 18, Chaining::BitLevel), Some(1));
        // Too short for a single 16-bit addition:
        assert_eq!(cycles_needed(&spec, 10, Chaining::BitLevel), None);
    }

    #[test]
    fn minimal_cycle_lower_bound_is_max_op() {
        let spec = Spec::parse(
            "spec s { input a: u8; input b: u8; input k: u8;
              p: u16 = a * b;
              q: u16 = p + k;
              output q; }",
        )
        .unwrap();
        // The 8×8 array multiplier (8 + 2·8 = 24δ) dominates at large λ.
        let c = minimal_cycle(&spec, 8, Chaining::BitLevel).unwrap();
        assert_eq!(c, 24);
        assert_eq!(max_op_delay(&spec), 24);
    }

    #[test]
    fn cycle_too_short_reported() {
        let spec = three_adds();
        let err = schedule_conventional(
            &spec,
            &ConventionalOptions {
                latency: 3,
                cycle_override: Some(8),
                chaining: Chaining::ComponentSum,
                balance: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::CycleTooShort { delay: 16, cycle: 8, .. }));
    }

    #[test]
    fn latency_exceeded_reported() {
        let spec = three_adds();
        let err = schedule_conventional(
            &spec,
            &ConventionalOptions {
                latency: 2,
                cycle_override: Some(16),
                chaining: Chaining::Disabled,
                balance: false,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::LatencyExceeded { needed: 3, latency: 2 }));
    }

    #[test]
    fn zero_latency_rejected() {
        let spec = three_adds();
        assert_eq!(
            schedule_conventional(&spec, &ConventionalOptions::with_latency(0)).unwrap_err(),
            SchedError::ZeroLatency
        );
    }

    #[test]
    fn balancing_spreads_independent_ops() {
        // Four independent additions, λ = 2: balancing puts two per cycle.
        let spec = Spec::parse(
            "spec s { input a: u8; input b: u8;
              w: u8 = a + b; x: u8 = a + b; y: u8 = a + b; z: u8 = a + b;
              output w; output x; output y; output z; }",
        )
        .unwrap();
        let s = schedule_conventional(
            &spec,
            &ConventionalOptions {
                latency: 2,
                cycle_override: Some(8),
                chaining: Chaining::ComponentSum,
                balance: true,
            },
        )
        .unwrap();
        let c1 = s.ops_in_cycle(1).count();
        let c2 = s.ops_in_cycle(2).count();
        assert_eq!((c1, c2), (2, 2), "{}", s.render(&spec));
    }

    #[test]
    fn glue_is_scheduled_with_producers() {
        let spec = Spec::parse(
            "spec s { input a: u8; input b: u8;
              n: u8 = ~a;
              x: u8 = n + b;
              output x; }",
        )
        .unwrap();
        let s = schedule_conventional(&spec, &ConventionalOptions::with_latency(1)).unwrap();
        assert_eq!(s.cycle_of(spec.ops()[0].id()), Some(1));
    }

    #[test]
    fn dependencies_respected_across_all_latencies() {
        let spec = three_adds();
        for latency in 1..=5 {
            let s =
                schedule_conventional(&spec, &ConventionalOptions::with_latency(latency)).unwrap();
            let users = spec.users();
            for op in spec.ops() {
                let kc = s.cycle_of(op.id()).unwrap();
                for (user, _) in users.get(&op.result()).into_iter().flatten() {
                    let ku = s.cycle_of(*user).unwrap();
                    assert!(ku >= kc, "λ={latency}: {user} before its producer");
                }
            }
        }
    }

    #[test]
    fn larger_latency_never_increases_cycle() {
        let spec = Spec::parse(
            "spec s { input a: u12; input b: u12; input c1: u12; input d: u12;
              x: u12 = a + b;
              y: u12 = x + c1;
              z: u12 = y + d;
              w: u12 = z + a;
              output w; }",
        )
        .unwrap();
        let mut prev = Delta::MAX;
        for latency in 1..=8 {
            let c = minimal_cycle(&spec, latency, Chaining::BitLevel).unwrap();
            assert!(c <= prev, "λ={latency}: {c} > {prev}");
            prev = c;
        }
    }
}
