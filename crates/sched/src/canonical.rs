//! Canonical codec for [`Schedule`] and [`Chaining`] — the sched-crate
//! half of the workspace-wide artifact encoding rooted in
//! [`bittrans_ir::canonical`]. Schema-tagged, line-oriented, and
//! round-trip-exact: `from_canonical(to_canonical(x)) == x`.
//!
//! # Format (schema 1)
//!
//! ```text
//! bittrans-canonical schedule 1
//! latency <cycles>
//! cycle <delta>
//! assignment <n>
//! a <op-index> <cycle>        (strictly increasing op index)
//! end schedule
//! ```
//!
//! ```text
//! bittrans-canonical chaining 1
//! mode <disabled|component_sum|bit_level>
//! end chaining
//! ```

use crate::conventional::Chaining;
use crate::Schedule;
use bittrans_ir::canonical::{write_end, write_header, CodecError, Cursor};
use bittrans_ir::types::OpId;
use bittrans_timing::Delta;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version of the canonical [`Schedule`] encoding.
pub const SCHEDULE_SCHEMA: u32 = 1;

/// Schema version of the canonical [`Chaining`] encoding.
pub const CHAINING_SCHEMA: u32 = 1;

impl Schedule {
    /// Renders the canonical, re-parseable encoding of this schedule
    /// (schema [`SCHEDULE_SCHEMA`]); [`Schedule::from_canonical`] inverts
    /// it exactly.
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        write_header(&mut out, "schedule", SCHEDULE_SCHEMA);
        let _ = writeln!(out, "latency {}", self.latency);
        let _ = writeln!(out, "cycle {}", self.cycle);
        let _ = writeln!(out, "assignment {}", self.len());
        for (op, cycle) in self.iter() {
            let _ = writeln!(out, "a {} {cycle}", op.index());
        }
        write_end(&mut out, "schedule");
        out
    }

    /// Parses a [`Schedule::to_canonical`] document back into the
    /// identical schedule.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] for syntax or schema problems, out-of-order or
    /// duplicate op indices, or an assigned cycle outside `1..=latency`
    /// (checked here so a corrupt document can never trip
    /// [`Schedule::new`]'s panic).
    pub fn from_canonical(text: &str) -> Result<Schedule, CodecError> {
        let mut cur = Cursor::new(text);
        cur.header("schedule", SCHEDULE_SCHEMA)?;
        let f = cur.tagged("latency")?;
        if f.len() != 1 {
            return Err(cur.err("malformed latency line"));
        }
        let latency: u32 = cur.num(f[0], "latency")?;
        let f = cur.tagged("cycle")?;
        if f.len() != 1 {
            return Err(cur.err("malformed cycle line"));
        }
        let cycle: Delta = cur.num(f[0], "cycle length")?;
        let f = cur.tagged("assignment")?;
        if f.len() != 1 {
            return Err(cur.err("malformed assignment line"));
        }
        let count: usize = cur.num(f[0], "assignment count")?;
        let mut assignment = BTreeMap::new();
        let mut previous: Option<u32> = None;
        for _ in 0..count {
            let f = cur.tagged("a")?;
            if f.len() != 2 {
                return Err(cur.err("malformed assignment entry"));
            }
            let op: u32 = cur.num(f[0], "op index")?;
            let k: u32 = cur.num(f[1], "assigned cycle")?;
            if previous.is_some_and(|p| p >= op) {
                return Err(cur.err(format!("assignment entries out of order at o{op}")));
            }
            previous = Some(op);
            if !(1..=latency).contains(&k) {
                return Err(cur.err(format!("o{op} assigned to cycle {k}, outside 1..={latency}")));
            }
            assignment.insert(OpId::from_index(op as usize), k);
        }
        cur.end("schedule")?;
        Ok(Schedule::new(latency, cycle, assignment))
    }
}

impl Chaining {
    /// Stable short code for this chaining mode, suitable for cache keys
    /// and canonical documents.
    pub fn code(self) -> &'static str {
        match self {
            Chaining::Disabled => "disabled",
            Chaining::ComponentSum => "component_sum",
            Chaining::BitLevel => "bit_level",
        }
    }

    /// Reverses [`Chaining::code`]; `None` for an unknown code.
    pub fn from_code(code: &str) -> Option<Chaining> {
        Some(match code {
            "disabled" => Chaining::Disabled,
            "component_sum" => Chaining::ComponentSum,
            "bit_level" => Chaining::BitLevel,
            _ => return None,
        })
    }

    /// Renders the canonical encoding of this chaining mode (schema
    /// [`CHAINING_SCHEMA`]).
    pub fn to_canonical(self) -> String {
        let mut out = String::new();
        write_header(&mut out, "chaining", CHAINING_SCHEMA);
        let _ = writeln!(out, "mode {}", self.code());
        write_end(&mut out, "chaining");
        out
    }

    /// Parses a [`Chaining::to_canonical`] document.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] for syntax, schema, or unknown-mode problems.
    pub fn from_canonical(text: &str) -> Result<Chaining, CodecError> {
        let mut cur = Cursor::new(text);
        cur.header("chaining", CHAINING_SCHEMA)?;
        let f = cur.tagged("mode")?;
        if f.len() != 1 {
            return Err(cur.err("malformed mode line"));
        }
        let mode =
            Chaining::from_code(f[0]).ok_or_else(|| cur.err(format!("unknown mode {:?}", f[0])))?;
        cur.end("chaining")?;
        Ok(mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        let mut assignment = BTreeMap::new();
        assignment.insert(OpId::from_index(0), 1);
        assignment.insert(OpId::from_index(2), 3);
        assignment.insert(OpId::from_index(7), 2);
        Schedule::new(3, 16, assignment)
    }

    #[test]
    fn schedule_round_trip_is_identity() {
        let s = sample();
        let text = s.to_canonical();
        let back = Schedule::from_canonical(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_canonical(), text);
    }

    #[test]
    fn empty_schedule_round_trips() {
        let s = Schedule::new(1, 4, BTreeMap::new());
        assert_eq!(Schedule::from_canonical(&s.to_canonical()).unwrap(), s);
    }

    #[test]
    fn out_of_range_cycle_errors_instead_of_panicking() {
        let text = sample().to_canonical().replace("a 2 3", "a 2 9");
        let err = Schedule::from_canonical(&text).unwrap_err();
        assert!(err.msg.contains("outside"), "{err}");
    }

    #[test]
    fn out_of_order_entries_are_rejected() {
        let text = sample().to_canonical().replace("a 2 3", "a 0 1");
        assert!(Schedule::from_canonical(&text).is_err());
    }

    #[test]
    fn truncation_errors_cleanly() {
        let text = sample().to_canonical();
        let lines: Vec<&str> = text.lines().collect();
        for n in 0..lines.len() {
            assert!(Schedule::from_canonical(&lines[..n].join("\n")).is_err(), "{n} lines");
        }
    }

    #[test]
    fn chaining_codes_round_trip() {
        for mode in [Chaining::Disabled, Chaining::ComponentSum, Chaining::BitLevel] {
            assert_eq!(Chaining::from_code(mode.code()), Some(mode));
            assert_eq!(Chaining::from_canonical(&mode.to_canonical()).unwrap(), mode);
        }
        assert_eq!(Chaining::from_code("turbo"), None);
        assert!(Chaining::from_canonical(
            "bittrans-canonical chaining 2\nmode disabled\nend chaining"
        )
        .is_err());
    }
}
