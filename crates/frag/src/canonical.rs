//! Canonical codec for [`Fragmented`] — the frag-crate part of the
//! workspace-wide artifact encoding rooted in [`bittrans_ir::canonical`].
//! Schema-tagged, line-oriented, round-trip-exact.
//!
//! # Format (schema 1)
//!
//! ```text
//! bittrans-canonical fragmented 1
//! cycle <delta>
//! latency <cycles>
//! critical_path <delta>
//! <embedded canonical spec document>
//! fragments <n>
//! f <op> <source-op> <index> <lo> <width> <asap> <alap>
//! per_source <n>
//! p <source-op> <k> <fragment-op>*
//! end fragmented
//! ```
//!
//! The transformed spec embeds verbatim as its own canonical document
//! (through its `end spec` line); map entries appear in key order.

use crate::{FragmentInfo, Fragmented};
use bittrans_ir::canonical::{write_end, write_header, CodecError, Cursor};
use bittrans_ir::prelude::*;
use bittrans_timing::Delta;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version of the canonical [`Fragmented`] encoding.
pub const FRAGMENTED_SCHEMA: u32 = 1;

impl Fragmented {
    /// Renders the canonical, re-parseable encoding (schema
    /// [`FRAGMENTED_SCHEMA`]); [`Fragmented::from_canonical`] inverts it
    /// exactly.
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        write_header(&mut out, "fragmented", FRAGMENTED_SCHEMA);
        let _ = writeln!(out, "cycle {}", self.cycle);
        let _ = writeln!(out, "latency {}", self.latency);
        let _ = writeln!(out, "critical_path {}", self.critical_path);
        out.push_str(&self.spec.to_canonical());
        let _ = writeln!(out, "fragments {}", self.fragments.len());
        for (op, info) in &self.fragments {
            let _ = writeln!(
                out,
                "f {} {} {} {} {} {} {}",
                op.index(),
                info.source.index(),
                info.index,
                info.range.lo(),
                info.range.width(),
                info.asap,
                info.alap,
            );
        }
        let _ = writeln!(out, "per_source {}", self.per_source.len());
        for (source, fragments) in &self.per_source {
            let mut line = format!("p {} {}", source.index(), fragments.len());
            for op in fragments {
                let _ = write!(line, " {}", op.index());
            }
            let _ = writeln!(out, "{line}");
        }
        write_end(&mut out, "fragmented");
        out
    }

    /// Parses a [`Fragmented::to_canonical`] document back into the
    /// identical artifact (the embedded spec is fully re-validated).
    ///
    /// # Errors
    ///
    /// A [`CodecError`] for syntax or schema problems, a corrupt embedded
    /// spec, or out-of-order map entries.
    pub fn from_canonical(text: &str) -> Result<Fragmented, CodecError> {
        let mut cur = Cursor::new(text);
        cur.header("fragmented", FRAGMENTED_SCHEMA)?;
        let f = cur.tagged("cycle")?;
        if f.len() != 1 {
            return Err(cur.err("malformed cycle line"));
        }
        let cycle: Delta = cur.num(f[0], "cycle length")?;
        let f = cur.tagged("latency")?;
        if f.len() != 1 {
            return Err(cur.err("malformed latency line"));
        }
        let latency: u32 = cur.num(f[0], "latency")?;
        let f = cur.tagged("critical_path")?;
        if f.len() != 1 {
            return Err(cur.err("malformed critical_path line"));
        }
        let critical_path: Delta = cur.num(f[0], "critical path")?;
        let spec = Spec::decode_embedded(&mut cur)?;

        let f = cur.tagged("fragments")?;
        if f.len() != 1 {
            return Err(cur.err("malformed fragments line"));
        }
        let count: usize = cur.num(f[0], "fragment count")?;
        let mut fragments = BTreeMap::new();
        let mut previous: Option<u32> = None;
        for _ in 0..count {
            let f = cur.tagged("f")?;
            if f.len() != 7 {
                return Err(cur.err("malformed fragment entry"));
            }
            let op: u32 = cur.num(f[0], "fragment op index")?;
            if previous.is_some_and(|p| p >= op) {
                return Err(cur.err(format!("fragment entries out of order at o{op}")));
            }
            previous = Some(op);
            let info = FragmentInfo {
                source: OpId::from_index(cur.num::<u32>(f[1], "source op index")? as usize),
                index: cur.num(f[2], "fragment index")?,
                range: BitRange::new(
                    cur.num(f[3], "fragment range lo")?,
                    cur.num(f[4], "fragment range width")?,
                ),
                asap: cur.num(f[5], "asap cycle")?,
                alap: cur.num(f[6], "alap cycle")?,
            };
            if info.alap < info.asap {
                return Err(cur.err(format!("fragment o{op} has alap < asap")));
            }
            fragments.insert(OpId::from_index(op as usize), info);
        }

        let f = cur.tagged("per_source")?;
        if f.len() != 1 {
            return Err(cur.err("malformed per_source line"));
        }
        let count: usize = cur.num(f[0], "per_source count")?;
        let mut per_source = BTreeMap::new();
        let mut previous: Option<u32> = None;
        for _ in 0..count {
            let f = cur.tagged("p")?;
            if f.len() < 2 {
                return Err(cur.err("malformed per_source entry"));
            }
            let source: u32 = cur.num(f[0], "source op index")?;
            if previous.is_some_and(|p| p >= source) {
                return Err(cur.err(format!("per_source entries out of order at o{source}")));
            }
            previous = Some(source);
            let k: usize = cur.num(f[1], "per_source fragment count")?;
            if f.len() != 2 + k {
                return Err(cur.err(format!(
                    "per_source entry declares {k} fragments but carries {}",
                    f.len() - 2
                )));
            }
            let mut ops = Vec::with_capacity(k);
            for token in &f[2..] {
                ops.push(OpId::from_index(cur.num::<u32>(token, "fragment op index")? as usize));
            }
            per_source.insert(OpId::from_index(source as usize), ops);
        }

        cur.end("fragmented")?;
        Ok(Fragmented { spec, cycle, latency, critical_path, fragments, per_source })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fragment, FragmentOptions};

    fn sample() -> Fragmented {
        let spec = Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap();
        fragment(&spec, &FragmentOptions { latency: 3, cycle_override: None }).unwrap()
    }

    #[test]
    fn round_trip_is_identity() {
        let f = sample();
        let text = f.to_canonical();
        let back = Fragmented::from_canonical(&text).unwrap();
        assert_eq!(back.spec, f.spec);
        assert_eq!(back.cycle, f.cycle);
        assert_eq!(back.latency, f.latency);
        assert_eq!(back.critical_path, f.critical_path);
        assert_eq!(back.fragments, f.fragments);
        assert_eq!(back.per_source, f.per_source);
        assert_eq!(back.to_canonical(), text);
    }

    #[test]
    fn truncation_errors_cleanly() {
        let text = sample().to_canonical();
        let lines: Vec<&str> = text.lines().collect();
        for n in 0..lines.len() {
            assert!(Fragmented::from_canonical(&lines[..n].join("\n")).is_err(), "{n} lines");
        }
    }

    #[test]
    fn schema_bump_is_rejected() {
        let text = sample()
            .to_canonical()
            .replace("bittrans-canonical fragmented 1", "bittrans-canonical fragmented 7");
        assert!(Fragmented::from_canonical(&text).is_err());
    }

    #[test]
    fn corrupt_embedded_spec_is_rejected() {
        let text = sample().to_canonical().replace("end spec", "end spoc");
        assert!(Fragmented::from_canonical(&text).is_err());
    }
}
