//! Construction of the transformed specification from a fragmentation plan.
//!
//! Produces the paper's Fig. 2 a): every fragment becomes an independent
//! small addition whose carry out feeds the next fragment's carry in, and
//! the original value is reassembled by (cost-free) concatenation wiring.

use crate::FragmentInfo;
use bittrans_ir::prelude::*;
use std::collections::BTreeMap;

/// Rewrites `spec` according to `plan` (fragments per addition, LSB
/// fragment first; additions absent from the plan are impossible — every
/// `Add` must have an entry).
///
/// Returns the new spec, per-new-op fragment metadata, and the
/// source-op → new-ops index.
///
/// # Errors
///
/// Propagates [`IrError`] from spec construction; a valid plan cannot
/// trigger one.
#[allow(clippy::type_complexity)]
pub fn rewrite(
    spec: &Spec,
    plan: &BTreeMap<OpId, Vec<FragmentInfo>>,
) -> Result<(Spec, BTreeMap<OpId, FragmentInfo>, BTreeMap<OpId, Vec<OpId>>), IrError> {
    let mut builder = SpecBuilder::new(format!("{}_frag", spec.name()));
    let mut map: Vec<Option<Operand>> = vec![None; spec.values().len()];
    for &input in spec.inputs() {
        let v = builder.input(spec.input_name(input), spec.value(input).width());
        map[input.index()] = Some(Operand::value(v));
    }
    let translate = |map: &[Option<Operand>], operand: &Operand| -> Operand {
        match operand {
            Operand::Const(b) => Operand::Const(b.clone()),
            Operand::Value { value, range } => {
                let base = map[value.index()].clone().expect("operand defined before use");
                match range {
                    None => base,
                    Some(r) => base.subrange(*r),
                }
            }
        }
    };
    let mut fragments = BTreeMap::new();
    let mut per_source: BTreeMap<OpId, Vec<OpId>> = BTreeMap::new();

    for op in spec.ops() {
        match plan.get(&op.id()) {
            Some(frags) => {
                debug_assert_eq!(op.kind(), OpKind::Add);
                let a = translate(&map, &op.operands()[0]);
                let b = translate(&map, &op.operands()[1]);
                let source_cin = op.operands().get(2).map(|c| translate(&map, c));
                let result = emit_fragments(
                    &mut builder,
                    spec,
                    op,
                    frags,
                    a,
                    b,
                    source_cin,
                    &mut fragments,
                    &mut per_source,
                )?;
                map[op.result().index()] = Some(result);
            }
            None => {
                // Glue: re-emit unchanged.
                let args: Vec<Operand> = op.operands().iter().map(|o| translate(&map, o)).collect();
                let v = builder.op_with_origin(
                    op.kind(),
                    args,
                    op.width(),
                    op.signedness(),
                    op.name(),
                    Some(op.id()),
                )?;
                map[op.result().index()] = Some(v.into());
            }
        }
    }
    for port in spec.outputs() {
        let operand = translate(&map, port.operand());
        builder.output(port.name(), operand);
    }
    Ok((builder.finish()?, fragments, per_source))
}

/// Emits the fragment additions of one source addition; returns the operand
/// reassembling the source result.
#[allow(clippy::too_many_arguments)]
fn emit_fragments(
    builder: &mut SpecBuilder,
    spec: &Spec,
    op: &Operation,
    frags: &[FragmentInfo],
    a: Operand,
    b: Operand,
    source_cin: Option<Operand>,
    fragments: &mut BTreeMap<OpId, FragmentInfo>,
    per_source: &mut BTreeMap<OpId, Vec<OpId>>,
) -> Result<Operand, IrError> {
    let a_width = operand_width(builder, spec, &a);
    let b_width = operand_width(builder, spec, &b);
    if frags.len() == 1 {
        // Unsplit: one addition, carried over as-is.
        let mut args = vec![a, b];
        if let Some(c) = source_cin {
            args.push(c);
        }
        let v = builder.op_with_origin(
            OpKind::Add,
            args,
            op.width(),
            Signedness::Unsigned,
            op.name(),
            Some(op.id()),
        )?;
        let new_id = OpId::from_index(builder.op_count() - 1);
        fragments.insert(new_id, frags[0]);
        per_source.insert(op.id(), vec![new_id]);
        return Ok(v.into());
    }
    let mut parts: Vec<Operand> = Vec::with_capacity(frags.len());
    let mut carry = source_cin;
    let mut new_ids = Vec::with_capacity(frags.len());
    for (k, fr) in frags.iter().enumerate() {
        let last = k == frags.len() - 1;
        let size = fr.range.width();
        // Intermediate fragments keep their carry out as an extra top bit.
        let frag_width = if last { size } else { size + 1 };
        let mut args =
            vec![slice_clamped(&a, a_width, fr.range), slice_clamped(&b, b_width, fr.range)];
        if let Some(c) = carry.take() {
            args.push(c);
        }
        let name = format!("{}_f{}", op.label(), k);
        let v = builder.op_with_origin(
            OpKind::Add,
            args,
            frag_width,
            Signedness::Unsigned,
            Some(&name),
            Some(op.id()),
        )?;
        let new_id = OpId::from_index(builder.op_count() - 1);
        fragments.insert(new_id, *fr);
        new_ids.push(new_id);
        if !last {
            carry = Some(Operand::slice(v, BitRange::new(size, 1)));
        }
        parts.push(if last { v.into() } else { Operand::slice(v, BitRange::new(0, size)) });
    }
    per_source.insert(op.id(), new_ids);
    // Reassemble the source result by wiring (cost-free concatenation).
    let full = builder.op_with_origin(
        OpKind::Concat,
        parts,
        op.width(),
        Signedness::Unsigned,
        op.name(),
        Some(op.id()),
    )?;
    Ok(full.into())
}

/// Width of a translated operand in the *new* spec.
fn operand_width(builder: &SpecBuilder, _spec: &Spec, operand: &Operand) -> u32 {
    match operand {
        Operand::Const(b) => b.width() as u32,
        Operand::Value { value, range: Some(r) } => {
            let _ = value;
            r.width()
        }
        Operand::Value { value, range: None } => builder.width_of(*value),
    }
}

/// Slices `operand` to the bits a fragment reads, clamping to the operand's
/// real width: bits beyond it are zeros of the source addition's implicit
/// zero extension, which the fragment addition re-creates by itself.
fn slice_clamped(operand: &Operand, width: u32, range: BitRange) -> Operand {
    if range.lo() >= width {
        return Operand::Const(Bits::zero(1));
    }
    let end = range.end().min(width);
    operand.subrange(BitRange::new(range.lo(), end - range.lo()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_clamped_cases() {
        let v = ValueId::from_index(0);
        let op = Operand::value(v);
        // fully inside
        assert_eq!(slice_clamped(&op, 16, BitRange::new(4, 4)).range(), Some(BitRange::new(4, 4)));
        // partially beyond: clamped
        assert_eq!(slice_clamped(&op, 10, BitRange::new(8, 4)).range(), Some(BitRange::new(8, 2)));
        // fully beyond: a zero constant
        let c = slice_clamped(&op, 8, BitRange::new(8, 4));
        assert!(c.as_const().unwrap().is_zero());
    }
}
