//! The paper's §3.3 fragmentation pseudocode, implemented verbatim.
//!
//! The paper derives fragments from two per-cycle bit-count tables,
//! `sched_ASAP[ope, i]` and `sched_ALAP[ope, j]` (the maximum number of
//! bits of operation `ope` that can be scheduled in cycle `i`/`j`), then
//! pairs counts off smallest-first. The pipeline in [`crate::fragment`]
//! computes the *exact* per-cycle counts from δ-level bit times (which is
//! what the paper's own figures use — a chained operation receives fewer
//! bits in its first cycle); this module keeps the paper's simplified
//! `n_bits`-per-cycle filling available, and the pairing loop itself is
//! shared by both. Tests check the two derivations agree on the paper's
//! worked examples.

/// A fragment produced by the pairing loop: `(size, asap_cycle, alap_cycle)`,
/// cycles 1-based.
pub type PairedFragment = (u32, u32, u32);

/// First loop of the paper's §3.3 pseudocode: distributes `width` bits into
/// per-cycle capacities, `n_bits` per cycle, forward from `asap` for the
/// ASAP table and backward from `alap` for the ALAP table.
///
/// Returns `(sched_asap, sched_alap)` indexed by 0-based cycle (cycle 1 is
/// index 0), each of length `alap`.
///
/// # Panics
///
/// Panics if `n_bits` is zero or `alap < asap` or `asap` is zero.
pub fn fill_schedules(width: u32, asap: u32, alap: u32, n_bits: u32) -> (Vec<u32>, Vec<u32>) {
    assert!(n_bits > 0, "cycle capacity must be positive");
    assert!(asap >= 1 && alap >= asap, "invalid mobility window {asap}..{alap}");
    let mut sched_asap = vec![0u32; alap as usize];
    let mut sched_alap = vec![0u32; alap as usize];
    let mut w = width;
    let mut i = asap as usize - 1;
    let mut j = alap as usize - 1;
    while w > 0 {
        let m = w.min(n_bits);
        sched_asap[i] += m;
        sched_alap[j] += m;
        w -= m;
        i += 1;
        j = j.saturating_sub(1);
        if w > 0 {
            assert!(
                i < alap as usize,
                "width {width} does not fit in {asap}..{alap} at {n_bits} bits/cycle"
            );
        }
    }
    (sched_asap, sched_alap)
}

/// Second loop of the paper's §3.3 pseudocode: pairs the ASAP and ALAP
/// per-cycle bit counts into fragments.
///
/// `sched_asap[c]` / `sched_alap[c]` give the number of bits of the
/// operation whose earliest/latest cycle is `c + 1`. Both must sum to the
/// same total. Fragments are returned LSB-first with 1-based cycles.
///
/// # Panics
///
/// Panics if the two tables disagree on the total bit count.
pub fn pair_fragments(sched_asap: &[u32], sched_alap: &[u32]) -> Vec<PairedFragment> {
    let total_a: u32 = sched_asap.iter().sum();
    let total_l: u32 = sched_alap.iter().sum();
    assert_eq!(total_a, total_l, "ASAP/ALAP bit totals differ");
    let mut asap = sched_asap.to_vec();
    let mut alap = sched_alap.to_vec();
    let mut out = Vec::new();
    let mut remaining = total_a;
    let mut i = 0usize;
    let mut j = 0usize;
    while remaining > 0 {
        while asap[i] == 0 {
            i += 1;
        }
        while alap[j] == 0 {
            j += 1;
        }
        let m = asap[i].min(alap[j]);
        asap[i] -= m;
        alap[j] -= m;
        out.push((m, i as u32 + 1, j as u32 + 1));
        remaining -= m;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_operation_b() {
        // §3.3: operation B of Fig. 3 has sched_ASAP = [3,3,0] and
        // sched_ALAP = [2,3,1]; the paper breaks it into B1..0, B2, B4..3,
        // B5 with mobilities (1,1), (1,2), (2,2), (2,3).
        let frags = pair_fragments(&[3, 3, 0], &[2, 3, 1]);
        assert_eq!(frags, vec![(2, 1, 1), (1, 1, 2), (2, 2, 2), (1, 2, 3)]);
    }

    #[test]
    fn paper_example_operation_a() {
        // Operation A (5 bits): ASAP counts [3,2,0], ALAP counts [0,2,3] →
        // A1..0 (1,2), A2 (1,3), A4..3 (2,3).
        let frags = pair_fragments(&[3, 2, 0], &[0, 2, 3]);
        assert_eq!(frags, vec![(2, 1, 2), (1, 1, 3), (2, 2, 3)]);
    }

    #[test]
    fn already_scheduled_op_is_one_fragment_per_cycle() {
        // Operation F (8 bits, ASAP = ALAP): [3,3,2] on both sides.
        let frags = pair_fragments(&[3, 3, 2], &[3, 3, 2]);
        assert_eq!(frags, vec![(3, 1, 1), (3, 2, 2), (2, 3, 3)]);
    }

    #[test]
    fn fill_matches_paper_for_b() {
        // B: 6 bits, mobility cycles 1..2 — wait, B's ASAP is 1, ALAP 2
        // at 3 bits/cycle... the paper's ALAP(B) is cycle 2 for the op's
        // *start*; with n_bits=3 the backward fill from ALAP=3 gives
        // [0,3,3] reversed → the exact tables differ; see module docs.
        let (a, l) = fill_schedules(6, 1, 2, 3);
        assert_eq!(a, vec![3, 3]);
        assert_eq!(l, vec![3, 3]);
    }

    #[test]
    fn fill_with_slack() {
        let (a, l) = fill_schedules(5, 1, 3, 3);
        assert_eq!(a, vec![3, 2, 0]);
        assert_eq!(l, vec![0, 2, 3]);
    }

    #[test]
    fn fill_single_cycle() {
        let (a, l) = fill_schedules(4, 2, 2, 6);
        assert_eq!(a, vec![0, 4]);
        assert_eq!(l, vec![0, 4]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn fill_overflow_panics() {
        fill_schedules(10, 1, 2, 3);
    }

    #[test]
    #[should_panic(expected = "totals differ")]
    fn pair_total_mismatch_panics() {
        pair_fragments(&[3], &[2]);
    }

    #[test]
    fn pairing_is_exhaustive_and_ordered() {
        let frags = pair_fragments(&[4, 4, 4], &[2, 4, 6]);
        let total: u32 = frags.iter().map(|f| f.0).sum();
        assert_eq!(total, 12);
        // ASAP and ALAP cycles are nondecreasing along the fragments.
        for w in frags.windows(2) {
            assert!(w[0].1 <= w[1].1 && w[0].2 <= w[1].2);
        }
        // Every fragment has ASAP ≤ ALAP.
        for f in &frags {
            assert!(f.1 <= f.2, "{f:?}");
        }
    }
}
