//! # bittrans-frag
//!
//! **Fragmentation of operations** — phase 3 of the paper's optimisation
//! method (§3.3 of Ruiz-Sautua et al., DATE 2005), the core contribution.
//!
//! Given an additive-form specification (see `bittrans-kernel`), a target
//! latency λ, and the estimated cycle duration `c = ⌈critical_path / λ⌉`,
//! this pass:
//!
//! 1. computes the **ASAP and ALAP cycle of every result bit** of every
//!    addition (from the δ-exact bit arrival/required times of
//!    `bittrans-timing`);
//! 2. groups consecutive bits with the same `(ASAP, ALAP)` cycle pair into
//!    **fragments** — the paper: *"the number of fragments obtained from
//!    one operation equals the number of different (ASAP, ALAP) pairs …
//!    and the width of every fragment is the number of operation bits with
//!    the same ASAP and ALAP schedules"*;
//! 3. rewrites the specification so each fragment is an independent small
//!    addition that chains to its neighbour through an explicit carry bit —
//!    the paper's Fig. 2 a).
//!
//! Fragments carry their mobility (`asap..=alap`, in 1-based cycles), the
//! new data dependencies (carry + operand slices) are ordinary dataflow
//! edges of the rewritten spec, and a conventional scheduler
//! (`bittrans-sched`) can then place fragments of one operation in
//! different — possibly unconsecutive — cycles.
//!
//! ```
//! use bittrans_ir::prelude::*;
//! use bittrans_frag::{fragment, FragmentOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = Spec::parse(
//!     "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
//!       C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
//! )?;
//! let f = fragment(&spec, &FragmentOptions::with_latency(3))?;
//! assert_eq!(f.cycle, 6);            // ⌈18δ / 3⌉
//! assert_eq!(f.spec.stats().adds, 9); // every addition split in three
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod pairing;
pub mod render;
pub mod rewrite;

use bittrans_ir::prelude::*;
use bittrans_timing::{arrival_times, critical_path, required_times, BitTimes, Delta};
use std::collections::BTreeMap;
use std::fmt;

/// Options for [`fragment`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentOptions {
    /// Target latency λ in cycles.
    pub latency: u32,
    /// Cycle duration override in δ; `None` uses `⌈critical_path / λ⌉`
    /// (§3.2).
    pub cycle_override: Option<Delta>,
}

impl FragmentOptions {
    /// Options for latency `λ` with the paper's cycle estimation.
    pub fn with_latency(latency: u32) -> Self {
        FragmentOptions { latency, cycle_override: None }
    }
}

/// Errors raised by [`fragment`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FragError {
    /// The spec contains non-glue operations other than `Add`; run kernel
    /// extraction first.
    NotAdditive {
        /// The offending operation.
        op: OpId,
        /// Its kind's mnemonic.
        kind: &'static str,
    },
    /// A result bit cannot meet its deadline: its earliest arrival is later
    /// than its latest required time. The requested latency/cycle pair is
    /// too tight.
    Infeasible {
        /// The value whose bit misses the deadline.
        value: ValueId,
        /// The bit index.
        bit: u32,
        /// Earliest availability (δ).
        arrival: Delta,
        /// Latest allowed (δ).
        required: Delta,
    },
    /// Latency was zero.
    ZeroLatency,
    /// Spec construction failed while rewriting (should not happen for
    /// valid inputs).
    Rewrite(IrError),
}

impl fmt::Display for FragError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragError::NotAdditive { op, kind } => {
                write!(f, "operation {op} ({kind}) is not an addition; run kernel extraction first")
            }
            FragError::Infeasible { value, bit, arrival, required } => write!(
                f,
                "bit {bit} of {value} arrives at {arrival}δ but is required by {required}δ; \
                 the latency/cycle combination is infeasible"
            ),
            FragError::ZeroLatency => write!(f, "latency must be at least one cycle"),
            FragError::Rewrite(e) => write!(f, "rewrite failed: {e}"),
        }
    }
}

impl std::error::Error for FragError {}

impl From<IrError> for FragError {
    fn from(e: IrError) -> Self {
        FragError::Rewrite(e)
    }
}

/// One fragment of a source addition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentInfo {
    /// The source (kernel) operation this fragment belongs to.
    pub source: OpId,
    /// Fragment number within the source operation; 0 covers the LSBs.
    pub index: usize,
    /// The source result bits this fragment computes.
    pub range: BitRange,
    /// Earliest cycle (1-based) the fragment can execute in.
    pub asap: u32,
    /// Latest cycle (1-based) the fragment can execute in.
    pub alap: u32,
}

impl FragmentInfo {
    /// Number of cycles in the fragment's mobility window.
    pub fn mobility(&self) -> u32 {
        self.alap - self.asap + 1
    }

    /// `true` when ASAP = ALAP: the fragment is already implicitly
    /// scheduled (grey bits in the paper's Fig. 3).
    pub fn is_fixed(&self) -> bool {
        self.asap == self.alap
    }
}

/// The result of fragmentation: the transformed specification plus
/// per-fragment metadata.
#[derive(Clone, Debug)]
pub struct Fragmented {
    /// The transformed (rewritten) specification — the paper's Fig. 2 a).
    pub spec: Spec,
    /// Cycle duration used, in δ.
    pub cycle: Delta,
    /// Latency λ.
    pub latency: u32,
    /// Critical path of the source spec, in δ.
    pub critical_path: Delta,
    /// Metadata for each fragment addition of the new spec, keyed by the
    /// *new* spec's op id. Glue ops have no entry.
    pub fragments: BTreeMap<OpId, FragmentInfo>,
    /// New-spec fragment ops of every source addition, LSB fragment first.
    pub per_source: BTreeMap<OpId, Vec<OpId>>,
}

impl Fragmented {
    /// Number of fragments a source addition was split into (1 = unsplit).
    pub fn fragment_count(&self, source: OpId) -> usize {
        self.per_source.get(&source).map_or(0, Vec::len)
    }
}

/// Per-bit ASAP/ALAP cycles (1-based) for every value of an additive spec,
/// plus the underlying δ times. This is the data behind the paper's
/// Fig. 3 c)–e) pictures.
#[derive(Clone, Debug)]
pub struct BitCycles {
    /// Cycle duration in δ.
    pub cycle: Delta,
    /// Schedule horizon in δ (`cycle · latency`).
    pub total: Delta,
    /// δ-exact earliest arrival per bit.
    pub arrival: BitTimes,
    /// δ-exact latest requirement per bit.
    pub required: BitTimes,
}

impl BitCycles {
    /// Earliest cycle (1-based) in which bit `i` of `value` can be produced.
    pub fn asap_cycle(&self, value: ValueId, i: u32) -> u32 {
        delta_to_cycle(self.arrival.bit(value, i), self.cycle)
    }

    /// Latest cycle (1-based) in which bit `i` of `value` may be produced.
    pub fn alap_cycle(&self, value: ValueId, i: u32) -> u32 {
        delta_to_cycle(self.required.bit(value, i), self.cycle)
    }
}

/// Maps a δ time to its (1-based) cycle. Time 0 (inputs) maps to cycle 1.
fn delta_to_cycle(t: Delta, cycle: Delta) -> u32 {
    t.div_ceil(cycle).max(1)
}

/// Computes per-bit cycles for `spec` under `latency` cycles of `cycle` δ.
///
/// # Errors
///
/// Returns [`FragError::Infeasible`] when some bit's arrival exceeds its
/// required time, and [`FragError::ZeroLatency`] for a zero latency.
pub fn bit_cycles(spec: &Spec, cycle: Delta, latency: u32) -> Result<BitCycles, FragError> {
    if latency == 0 {
        return Err(FragError::ZeroLatency);
    }
    let total = cycle * latency;
    let arrival = arrival_times(spec);
    let required = required_times(spec, total);
    for value in spec.values() {
        for i in 0..value.width() {
            let (a, r) = (arrival.bit(value.id(), i), required.bit(value.id(), i));
            if a > r {
                return Err(FragError::Infeasible {
                    value: value.id(),
                    bit: i,
                    arrival: a,
                    required: r,
                });
            }
        }
    }
    Ok(BitCycles { cycle, total, arrival, required })
}

/// Derives the fragments of one addition from its per-bit cycles:
/// consecutive bits sharing the same `(ASAP, ALAP)` cycle pair.
///
/// Returned ranges partition `0..width`, LSBs first.
pub fn fragments_of_op(cycles: &BitCycles, op: &Operation) -> Vec<FragmentInfo> {
    let z = op.result();
    let mut out: Vec<FragmentInfo> = Vec::new();
    for i in 0..op.width() {
        let pair = (cycles.asap_cycle(z, i), cycles.alap_cycle(z, i));
        match out.last_mut() {
            Some(last) if (last.asap, last.alap) == pair => {
                last.range = BitRange::new(last.range.lo(), last.range.width() + 1);
            }
            _ => out.push(FragmentInfo {
                source: op.id(),
                index: out.len(),
                range: BitRange::new(i, 1),
                asap: pair.0,
                alap: pair.1,
            }),
        }
    }
    debug_assert!(
        out.windows(2).all(|w| w[0].asap <= w[1].asap && w[0].alap <= w[1].alap),
        "carry chain must make bit cycles monotone"
    );
    out
}

/// Runs the full fragmentation pass on an additive-form spec.
///
/// # Errors
///
/// * [`FragError::NotAdditive`] if `spec` still contains macro operations —
///   run [`bittrans_kernel::extract`](https://docs.rs/bittrans-kernel) first;
/// * [`FragError::Infeasible`] / [`FragError::ZeroLatency`] as in
///   [`bit_cycles`].
pub fn fragment(spec: &Spec, options: &FragmentOptions) -> Result<Fragmented, FragError> {
    if options.latency == 0 {
        return Err(FragError::ZeroLatency);
    }
    for op in spec.ops() {
        if op.kind() != OpKind::Add && !op.kind().is_glue() {
            return Err(FragError::NotAdditive { op: op.id(), kind: op.kind().mnemonic() });
        }
    }
    let cp = critical_path(spec);
    let cycle = options.cycle_override.unwrap_or_else(|| cp.div_ceil(options.latency).max(1));
    let cycles = bit_cycles(spec, cycle, options.latency)?;
    let mut plan: BTreeMap<OpId, Vec<FragmentInfo>> = BTreeMap::new();
    for op in spec.ops() {
        if op.kind() == OpKind::Add {
            plan.insert(op.id(), fragments_of_op(&cycles, op));
        }
    }
    let (new_spec, fragments, per_source) = rewrite::rewrite(spec, &plan)?;
    Ok(Fragmented {
        spec: new_spec,
        cycle,
        latency: options.latency,
        critical_path: cp,
        fragments,
        per_source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_sim::equivalence::check_equivalence;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    /// The paper's Fig. 3 DFG: chained 6-bit adds B→C→E, a 5-bit add A,
    /// a 6-bit add D, and 8-bit adds F, G → H.
    fn fig3() -> Spec {
        Spec::parse(
            "spec fig3 {
               input i1: u6; input i2: u6; input i3: u6; input i4: u6;
               input i5: u5; input i6: u5;
               input j1: u8; input j2: u8; input j3: u8; input j4: u8;
               B: u6 = i1 + i2;
               C: u6 = B + i3;
               E: u6 = C + i4;
               A: u5 = i5 + i6;
               D: u6 = i3 + i4;
               F: u8 = j1 + j2;
               G: u8 = j3 + j4;
               H: u8 = F + G;
               output E; output H; output A; output D;
            }",
        )
        .unwrap()
    }

    fn frags_by_name<'a>(spec: &Spec, f: &'a Fragmented, name: &str) -> Vec<&'a FragmentInfo> {
        let op = spec.ops().iter().find(|o| o.name() == Some(name)).unwrap();
        f.per_source[&op.id()].iter().map(|id| &f.fragments[id]).collect()
    }

    #[test]
    fn motivational_example_fragments_in_three() {
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        assert_eq!(f.cycle, 6);
        assert_eq!(f.critical_path, 18);
        // Every addition splits into 3 fragments (paper Fig. 2: widths
        // 6/6/4 for C, 5/6/5 for E, 4/6/6 for G).
        let c = frags_by_name(&spec, &f, "C");
        assert_eq!(c.iter().map(|fr| fr.range.width()).collect::<Vec<_>>(), vec![6, 6, 4]);
        let e = frags_by_name(&spec, &f, "E");
        assert_eq!(e.iter().map(|fr| fr.range.width()).collect::<Vec<_>>(), vec![5, 6, 5]);
        let g = frags_by_name(&spec, &f, "G");
        assert_eq!(g.iter().map(|fr| fr.range.width()).collect::<Vec<_>>(), vec![4, 6, 6]);
        // All those fragments are fixed (ASAP = ALAP) on the critical chain.
        for fr in c.iter().chain(&e).chain(&g) {
            assert!(fr.is_fixed());
        }
        assert_eq!(c.iter().map(|fr| fr.asap).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(e.iter().map(|fr| fr.asap).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(g.iter().map(|fr| fr.asap).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn motivational_example_is_equivalent() {
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        check_equivalence(&spec, &f.spec, 0xF00D, 300).unwrap();
    }

    #[test]
    fn fig3_matches_paper_fragments() {
        let spec = fig3();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        assert_eq!(f.critical_path, 9);
        assert_eq!(f.cycle, 3);

        // Operation B breaks into B1..0, B2, B4..3, B5 (paper §3.3).
        let b = frags_by_name(&spec, &f, "B");
        let widths: Vec<u32> = b.iter().map(|fr| fr.range.width()).collect();
        assert_eq!(widths, vec![2, 1, 2, 1]);
        assert_eq!(
            b.iter().map(|fr| (fr.asap, fr.alap)).collect::<Vec<_>>(),
            vec![(1, 1), (1, 2), (2, 2), (2, 3)]
        );

        // F, G, H have coinciding ASAP/ALAP (already scheduled): F2..0 in
        // cycle 1, F5..3 in cycle 2, F7..6 in cycle 3.
        for name in ["F", "G"] {
            let frs = frags_by_name(&spec, &f, name);
            assert_eq!(
                frs.iter().map(|fr| fr.range.width()).collect::<Vec<_>>(),
                vec![3, 3, 2],
                "{name}"
            );
            assert!(frs.iter().all(|fr| fr.is_fixed()), "{name}");
        }
        let h = frags_by_name(&spec, &f, "H");
        assert_eq!(
            h.iter().map(|fr| (fr.range.width(), fr.asap, fr.alap)).collect::<Vec<_>>(),
            vec![(2, 1, 1), (3, 2, 2), (3, 3, 3)]
        );

        // A (independent 5-bit add) keeps mobility: A1..0, A2, A4..3.
        let a = frags_by_name(&spec, &f, "A");
        assert_eq!(
            a.iter().map(|fr| (fr.range.width(), fr.asap, fr.alap)).collect::<Vec<_>>(),
            vec![(2, 1, 2), (1, 1, 3), (2, 2, 3)]
        );
    }

    #[test]
    fn fig3_rewrite_is_equivalent() {
        let spec = fig3();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        check_equivalence(&spec, &f.spec, 0xFA57, 300).unwrap();
    }

    #[test]
    fn latency_one_keeps_ops_whole() {
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions::with_latency(1)).unwrap();
        assert_eq!(f.cycle, 18);
        assert_eq!(f.spec.stats().adds, 3, "nothing to split at λ = 1");
        check_equivalence(&spec, &f.spec, 7, 100).unwrap();
    }

    #[test]
    fn rejects_non_additive() {
        let spec = Spec::parse("spec s { input a: u8; input b: u8; output p = a * b; }").unwrap();
        let err = fragment(&spec, &FragmentOptions::with_latency(2)).unwrap_err();
        assert!(matches!(err, FragError::NotAdditive { .. }));
        assert!(err.to_string().contains("kernel extraction"));
    }

    #[test]
    fn rejects_zero_latency() {
        let spec = three_adds();
        assert_eq!(
            fragment(&spec, &FragmentOptions { latency: 0, cycle_override: None }).unwrap_err(),
            FragError::ZeroLatency
        );
    }

    #[test]
    fn rejects_infeasible_cycle_override() {
        let spec = three_adds();
        let err = fragment(
            &spec,
            &FragmentOptions { latency: 3, cycle_override: Some(5) }, // 15δ < 18δ
        )
        .unwrap_err();
        assert!(matches!(err, FragError::Infeasible { .. }));
    }

    #[test]
    fn wide_cycle_override_reduces_fragmentation() {
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions { latency: 3, cycle_override: Some(18) }).unwrap();
        // With an 18δ cycle everything fits in cycle 1..3 with mobility,
        // and far fewer fragments are needed than at 6δ.
        assert!(f.spec.stats().adds <= 9);
        check_equivalence(&spec, &f.spec, 11, 100).unwrap();
    }

    #[test]
    fn fragment_info_helpers() {
        let fi = FragmentInfo {
            source: OpId::from_index(0),
            index: 1,
            range: BitRange::new(6, 6),
            asap: 1,
            alap: 3,
        };
        assert_eq!(fi.mobility(), 3);
        assert!(!fi.is_fixed());
    }

    #[test]
    fn equivalence_across_latencies() {
        let spec = fig3();
        for latency in 1..=6 {
            let f = fragment(&spec, &FragmentOptions::with_latency(latency)).unwrap();
            check_equivalence(&spec, &f.spec, 100 + u64::from(latency), 100)
                .unwrap_or_else(|e| panic!("λ={latency}: {e}"));
        }
    }

    #[test]
    fn carry_chain_dependencies_exist() {
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        // Each non-first fragment reads its predecessor's carry: the new
        // spec must contain 3-operand adds.
        let carried = f
            .spec
            .ops()
            .iter()
            .filter(|o| o.kind() == OpKind::Add && o.operands().len() == 3)
            .count();
        assert_eq!(carried, 6, "two carried fragments per source addition");
    }
}
