//! Paper-style rendering of fragmentation results: which bits of which
//! source operation compute in every cycle (the pictures of Fig. 2 b/c and
//! Fig. 3 c–g).

use crate::Fragmented;
use bittrans_ir::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the per-cycle bit waves of a scheduled fragmentation, in the
/// shape of the paper's Fig. 2 b): one line per cycle listing each source
/// operation's bit range computed there (`C[5:0] E[4:0] G[3:0]`).
///
/// `cycle_of` maps each fragment op (of `f.spec`) to its 1-based cycle —
/// pass `|op| schedule.cycle_of(op)` from a
/// [`Schedule`](../../bittrans_sched/struct.Schedule.html).
pub fn render_waves(
    f: &Fragmented,
    kernel: &Spec,
    cycle_of: impl Fn(OpId) -> Option<u32>,
) -> String {
    // cycle -> source label -> ranges
    let mut per_cycle: BTreeMap<u32, BTreeMap<String, Vec<BitRange>>> = BTreeMap::new();
    for (source, ids) in &f.per_source {
        let label = kernel.op(*source).label();
        for id in ids {
            let info = &f.fragments[id];
            let Some(k) = cycle_of(*id) else { continue };
            per_cycle.entry(k).or_default().entry(label.clone()).or_default().push(info.range);
        }
    }
    let mut out = String::new();
    for (k, ops) in &per_cycle {
        let mut parts: Vec<String> = Vec::new();
        for (label, ranges) in ops {
            for r in ranges {
                parts.push(format!("{label}{r}"));
            }
        }
        let _ = writeln!(out, "cycle {k}: {}", parts.join("  "));
    }
    out
}

/// Renders the mobility table of the unscheduled fragments (the paper's
/// Fig. 3 f): every fragment with ASAP ≠ ALAP and its window.
pub fn render_mobilities(f: &Fragmented, kernel: &Spec) -> String {
    let mut out = String::new();
    for (source, ids) in &f.per_source {
        let label = kernel.op(*source).label();
        let mobile: Vec<String> = ids
            .iter()
            .filter_map(|id| {
                let info = &f.fragments[id];
                (!info.is_fixed())
                    .then(|| format!("{label}{} ∈ [{}, {}]", info.range, info.asap, info.alap))
            })
            .collect();
        if !mobile.is_empty() {
            let _ = writeln!(out, "{}", mobile.join("  "));
        }
    }
    if out.is_empty() {
        out.push_str("(all fragments fixed)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fragment, FragmentOptions};

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn waves_match_fig2() {
        let spec = three_adds();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        // ASAP rendering: every fragment at its earliest cycle.
        let text = render_waves(&f, &spec, |op| f.fragments.get(&op).map(|i| i.asap));
        assert!(text.contains("cycle 1: C[5:0]  E[4:0]  G[3:0]"), "{text}");
        assert!(text.contains("cycle 2: C[11:6]  E[10:5]  G[9:4]"), "{text}");
        assert!(text.contains("cycle 3: C[15:12]  E[15:11]  G[15:10]"), "{text}");
    }

    #[test]
    fn mobilities_report_windows() {
        let spec = Spec::parse(
            "spec s { input i5: u5; input i6: u5; A: u5 = i5 + i6;
              input j1: u8; input j2: u8; input j3: u8; input j4: u8;
              F: u8 = j1 + j2; G: u8 = j3 + j4; H: u8 = F + G;
              output A; output H; }",
        )
        .unwrap();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        let text = render_mobilities(&f, &spec);
        assert!(text.contains("A["), "{text}");
        assert!(text.contains("∈ ["), "{text}");
    }

    #[test]
    fn fixed_only_case() {
        let spec =
            Spec::parse("spec s { input a: u6; input b: u6; X: u6 = a + b; output X; }").unwrap();
        let f = fragment(&spec, &FragmentOptions::with_latency(3)).unwrap();
        let text = render_mobilities(&f, &spec);
        assert!(text.contains("all fragments fixed"), "{text}");
    }
}
