//! Behavioural equivalence checking between two specifications.
//!
//! The transformations in this workspace (kernel extraction, fragmentation)
//! must preserve the input/output behaviour of the specification. This
//! module decides equivalence by co-simulation on shared input vectors —
//! the same role RTL-vs-behaviour simulation played for the paper's
//! authors.

use crate::vectors::random_vectors;
use crate::{evaluate, InputVector, SimError};
use bittrans_ir::prelude::*;
use std::fmt;

/// Why two specifications were judged non-equivalent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inequivalence {
    /// The input port lists differ (names or widths).
    PortMismatch {
        /// Human-readable description of the difference.
        detail: String,
    },
    /// Simulation of one side failed.
    SimFailed(SimError),
    /// The outputs differ on a concrete vector.
    Counterexample {
        /// The distinguishing input vector.
        inputs: InputVector,
        /// The differing output port.
        output: String,
        /// Output of the left spec.
        left: Bits,
        /// Output of the right spec.
        right: Bits,
    },
}

impl fmt::Display for Inequivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inequivalence::PortMismatch { detail } => write!(f, "port mismatch: {detail}"),
            Inequivalence::SimFailed(e) => write!(f, "simulation failed: {e}"),
            Inequivalence::Counterexample { output, left, right, .. } => {
                write!(f, "output `{output}` differs: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for Inequivalence {}

impl From<SimError> for Inequivalence {
    fn from(e: SimError) -> Self {
        Inequivalence::SimFailed(e)
    }
}

/// Checks that `left` and `right` agree on every supplied vector.
///
/// Output ports are matched by name; the comparison is on *values*
/// (zero-extended to the wider of the two declared widths), so a transformed
/// spec may carry extra result bits (e.g. preserved carry-outs) as long as
/// the meaningful bits agree. Extra outputs present on only one side are
/// ignored, except that every output of `left` must exist on `right`.
///
/// # Errors
///
/// Returns the first [`Inequivalence`] found.
pub fn check_equivalence_on(
    left: &Spec,
    right: &Spec,
    vectors: &[InputVector],
) -> Result<(), Inequivalence> {
    check_ports(left, right)?;
    for iv in vectors {
        let le = evaluate(left, iv)?;
        let re = evaluate(right, iv)?;
        for (name, lbits) in le.outputs() {
            let rbits = re.output(name).ok_or_else(|| Inequivalence::PortMismatch {
                detail: format!("output `{name}` missing from `{}`", right.name()),
            })?;
            let w = lbits.width().max(rbits.width());
            if lbits.zext(w) != rbits.zext(w) {
                return Err(Inequivalence::Counterexample {
                    inputs: iv.clone(),
                    output: name.to_string(),
                    left: lbits.clone(),
                    right: rbits.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Checks equivalence on `count` seeded random vectors (plus the all-zeros
/// and all-ones vectors, always included).
///
/// # Errors
///
/// Returns the first [`Inequivalence`] found; the counterexample embeds the
/// failing inputs for reproduction.
pub fn check_equivalence(
    left: &Spec,
    right: &Spec,
    seed: u64,
    count: usize,
) -> Result<(), Inequivalence> {
    let mut vectors = vec![extreme_vector(left, false), extreme_vector(left, true)];
    vectors.extend(random_vectors(left, seed, count));
    check_equivalence_on(left, right, &vectors)
}

fn extreme_vector(spec: &Spec, ones: bool) -> InputVector {
    let mut iv = InputVector::new();
    for &input in spec.inputs() {
        let w = spec.value(input).width() as usize;
        iv.set(spec.input_name(input), if ones { Bits::ones(w) } else { Bits::zero(w) });
    }
    iv
}

fn check_ports(left: &Spec, right: &Spec) -> Result<(), Inequivalence> {
    for &l in left.inputs() {
        let name = left.input_name(l);
        match right.input_by_name(name) {
            None => {
                return Err(Inequivalence::PortMismatch {
                    detail: format!("input `{name}` missing from `{}`", right.name()),
                })
            }
            Some(r) => {
                let (lw, rw) = (left.value(l).width(), right.value(r).width());
                if lw != rw {
                    return Err(Inequivalence::PortMismatch {
                        detail: format!("input `{name}` is {lw} bits vs {rw} bits"),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_specs_are_equivalent() {
        let s = Spec::parse("spec s { input a: u8; input b: u8; output o = a + b; }").unwrap();
        check_equivalence(&s, &s, 1, 50).unwrap();
    }

    #[test]
    fn fig2_transformation_is_equivalent_to_fig1() {
        // The paper's motivational example: beh1 (three 16-bit adds) vs
        // beh2 (nine fragment adds with explicit carries) — Fig. 1 a) vs 2 a).
        let beh1 = Spec::parse(
            "spec beh1 { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B;
              E: u16 = C + D;
              G: u16 = E + F;
              output G; }",
        )
        .unwrap();
        let beh2 = Spec::parse(
            "spec beh2 { input A: u16; input B: u16; input D: u16; input F: u16;
              C0: u7  = A[5:0] + B[5:0];
              E0: u6  = C0[4:0] + D[4:0];
              G0: u5  = E0[3:0] + F[3:0];
              C1: u7  = A[11:6] + B[11:6] + C0[6];
              E1: u7  = concat(C0[5], C1[4:0]) + D[10:5] + E0[5];
              G1: u7  = concat(E0[4], E1[4:0]) + F[9:4] + G0[4];
              C2: u4  = A[15:12] + B[15:12] + C1[6];
              E2: u5  = concat(C1[5], C2) + D[15:11] + E1[6];
              G2: u6  = concat(E1[5], E2) + F[15:10] + G1[6];
              output G = concat(G0[3:0], G1[5:0], G2);
             }",
        )
        .unwrap();
        check_equivalence(&beh1, &beh2, 2005, 300).unwrap();
    }

    #[test]
    fn detects_counterexample() {
        let good = Spec::parse("spec a { input x: u8; output o = x + 1; }").unwrap();
        let bad = Spec::parse("spec b { input x: u8; output o = x + 2; }").unwrap();
        let err = check_equivalence(&good, &bad, 3, 20).unwrap_err();
        assert!(matches!(err, Inequivalence::Counterexample { .. }));
        assert!(err.to_string().contains("output `o` differs"));
    }

    #[test]
    fn detects_port_mismatch() {
        let a = Spec::parse("spec a { input x: u8; output o = x; }").unwrap();
        let b = Spec::parse("spec b { input y: u8; output o = y; }").unwrap();
        let err = check_equivalence(&a, &b, 3, 5).unwrap_err();
        assert!(matches!(err, Inequivalence::PortMismatch { .. }));

        let c = Spec::parse("spec c { input x: u4; output o = x; }").unwrap();
        let err = check_equivalence(&a, &c, 3, 5).unwrap_err();
        assert!(err.to_string().contains("8 bits vs 4 bits"));
    }

    #[test]
    fn wider_right_output_is_tolerated() {
        // The transformed spec may keep the carry-out (9 bits vs 8): values
        // must still agree, which they do only when the carry is dead...
        let narrow = Spec::parse("spec a { input x: u4; output o = x; }").unwrap();
        // ... here the extra top bits are zero, so equivalence holds.
        let wide = Spec::parse("spec b { input x: u4; o: u6 = x; output o; }").unwrap();
        check_equivalence(&narrow, &wide, 9, 20).unwrap();
    }

    #[test]
    fn missing_output_is_reported() {
        let a = Spec::parse("spec a { input x: u4; output o = x; output p = x; }").unwrap();
        let b = Spec::parse("spec b { input x: u4; output o = x; }").unwrap();
        let err = check_equivalence(&a, &b, 3, 5).unwrap_err();
        assert!(err.to_string().contains("`p` missing"));
    }
}
