//! # bittrans-sim
//!
//! Functional (untimed) simulation of behavioural specifications.
//!
//! This crate is the workspace's replacement for an RTL simulator: it
//! executes a [`Spec`] on concrete input vectors and returns every value the
//! dataflow graph produces. All transformation passes (kernel extraction,
//! fragmentation) are property-tested against it — the master invariant of
//! the repository is that *a transformed specification computes exactly the
//! same outputs as its source*, and [`equivalence`] is how that invariant is
//! checked.
//!
//! ```
//! use bittrans_ir::prelude::*;
//! use bittrans_sim::{evaluate, InputVector};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = Spec::parse(
//!     "spec ex { input A: u8; input B: u8; C: u8 = A + B; output C; }",
//! )?;
//! let mut inputs = InputVector::new();
//! inputs.set("A", Bits::from_u64(200, 8));
//! inputs.set("B", Bits::from_u64(100, 8));
//! let eval = evaluate(&spec, &inputs)?;
//! assert_eq!(eval.output("C").unwrap().to_u64(), 44); // wraps mod 256
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equivalence;
pub mod vectors;

use bittrans_ir::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// A binding of input-port names to bit-vector values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InputVector {
    map: BTreeMap<String, Bits>,
}

impl InputVector {
    /// An empty input binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds port `name` to `value`, replacing any earlier binding.
    pub fn set(&mut self, name: impl Into<String>, value: Bits) -> &mut Self {
        self.map.insert(name.into(), value);
        self
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Bits> {
        self.map.get(name)
    }

    /// Iterates over `(name, value)` bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Bits)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bound ports.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no ports are bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl FromIterator<(String, Bits)> for InputVector {
    fn from_iter<T: IntoIterator<Item = (String, Bits)>>(iter: T) -> Self {
        InputVector { map: iter.into_iter().collect() }
    }
}

/// Errors raised by [`evaluate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No binding was provided for an input port.
    MissingInput {
        /// The unbound port.
        name: String,
    },
    /// A binding's width does not match the port declaration.
    WidthMismatch {
        /// The port.
        name: String,
        /// Declared width.
        expected: u32,
        /// Provided width.
        got: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingInput { name } => write!(f, "no value bound to input `{name}`"),
            SimError::WidthMismatch { name, expected, got } => {
                write!(f, "input `{name}` declared as {expected} bits but bound to {got} bits")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The result of evaluating a specification: every value plus the outputs.
#[derive(Clone, Debug)]
pub struct Evaluation {
    values: Vec<Bits>,
    outputs: BTreeMap<String, Bits>,
}

impl Evaluation {
    /// The bits computed for `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not belong to the evaluated spec.
    pub fn value(&self, value: ValueId) -> &Bits {
        &self.values[value.index()]
    }

    /// The bits driven onto output port `name`.
    pub fn output(&self, name: &str) -> Option<&Bits> {
        self.outputs.get(name)
    }

    /// All output ports in name order.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, &Bits)> {
        self.outputs.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Evaluates `spec` on `inputs`, producing every intermediate value and
/// output.
///
/// # Errors
///
/// Returns [`SimError`] if an input port is unbound or bound at the wrong
/// width. (Structural errors cannot occur: a [`Spec`] is valid by
/// construction.)
pub fn evaluate(spec: &Spec, inputs: &InputVector) -> Result<Evaluation, SimError> {
    let mut values: Vec<Bits> = vec![Bits::zero(0); spec.values().len()];
    for &input in spec.inputs() {
        let name = spec.input_name(input);
        let decl_width = spec.value(input).width();
        let bound =
            inputs.get(name).ok_or_else(|| SimError::MissingInput { name: name.to_string() })?;
        if bound.width() as u32 != decl_width {
            return Err(SimError::WidthMismatch {
                name: name.to_string(),
                expected: decl_width,
                got: bound.width() as u32,
            });
        }
        values[input.index()] = bound.clone();
    }
    for op in spec.ops() {
        let result = eval_op(spec, op, &values);
        debug_assert_eq!(result.width() as u32, op.width());
        values[op.result().index()] = result;
    }
    let outputs = spec
        .outputs()
        .iter()
        .map(|port| (port.name().to_string(), resolve(port.operand(), &values)))
        .collect();
    Ok(Evaluation { values, outputs })
}

/// Resolves an operand to its bits given the values computed so far.
fn resolve(operand: &Operand, values: &[Bits]) -> Bits {
    match operand {
        Operand::Value { value, range: None } => values[value.index()].clone(),
        Operand::Value { value, range: Some(r) } => {
            values[value.index()].slice(r.lo() as usize, r.width() as usize)
        }
        Operand::Const(bits) => bits.clone(),
    }
}

fn eval_op(spec: &Spec, op: &Operation, values: &[Bits]) -> Bits {
    let _ = spec;
    let w = op.width() as usize;
    let signed = op.signedness().is_signed();
    let args: Vec<Bits> = op.operands().iter().map(|o| resolve(o, values)).collect();
    match op.kind() {
        OpKind::Add => {
            let a = args[0].ext(w, signed);
            let b = args[1].ext(w, signed);
            let cin = args.get(2).map(|c| c.get(0)).unwrap_or(false);
            a.add_mod(&b, cin, w)
        }
        OpKind::Sub => {
            let a = args[0].ext(w, signed);
            let b = args[1].ext(w, signed);
            a.sub_mod(&b, w)
        }
        OpKind::Neg => args[0].ext(w, signed).neg_mod(w),
        OpKind::Mul => {
            let p =
                if signed { args[0].mul_full_signed(&args[1]) } else { args[0].mul_full(&args[1]) };
            p.ext(w, signed)
        }
        OpKind::Abs => {
            let a = &args[0];
            let mag = if a.sign_bit() { a.neg_mod(a.width()) } else { a.clone() };
            mag.zext(w)
        }
        OpKind::Lt => from_bool(compare(&args[0], &args[1], signed).is_lt(), w),
        OpKind::Le => from_bool(compare(&args[0], &args[1], signed).is_le(), w),
        OpKind::Gt => from_bool(compare(&args[0], &args[1], signed).is_gt(), w),
        OpKind::Ge => from_bool(compare(&args[0], &args[1], signed).is_ge(), w),
        OpKind::Eq => {
            let ww = args[0].width().max(args[1].width());
            from_bool(args[0].ext(ww, signed) == args[1].ext(ww, signed), w)
        }
        OpKind::Ne => {
            let ww = args[0].width().max(args[1].width());
            from_bool(args[0].ext(ww, signed) != args[1].ext(ww, signed), w)
        }
        OpKind::Max => {
            let pick_a = compare(&args[0], &args[1], signed).is_ge();
            (if pick_a { &args[0] } else { &args[1] }).ext(w, signed)
        }
        OpKind::Min => {
            let pick_a = compare(&args[0], &args[1], signed).is_le();
            (if pick_a { &args[0] } else { &args[1] }).ext(w, signed)
        }
        OpKind::Shl(k) => args[0].ext(w, signed).shl(k as usize),
        OpKind::Shr(k) => {
            let a = args[0].ext(w, signed);
            if signed {
                a.sar(k as usize)
            } else {
                a.shr(k as usize)
            }
        }
        OpKind::Not => args[0].ext(w, signed).not(),
        OpKind::And => args[0].ext(w, signed).and(&args[1].ext(w, signed)),
        OpKind::Or => args[0].ext(w, signed).or(&args[1].ext(w, signed)),
        OpKind::Xor => args[0].ext(w, signed).xor(&args[1].ext(w, signed)),
        OpKind::Mux => {
            let sel = args[0].get(0);
            (if sel { &args[1] } else { &args[2] }).ext(w, signed)
        }
        OpKind::RedOr => from_bool(args[0].reduce_or(), w),
        OpKind::RedAnd => from_bool(args[0].reduce_and(), w),
        OpKind::Concat => {
            let mut acc = Bits::zero(0);
            for a in &args {
                acc = acc.concat(a);
            }
            acc
        }
    }
}

fn from_bool(b: bool, width: usize) -> Bits {
    Bits::from_u64(b as u64, 1).zext(width)
}

fn compare(a: &Bits, b: &Bits, signed: bool) -> std::cmp::Ordering {
    if signed {
        a.cmp_signed(b)
    } else {
        a.cmp_unsigned(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_one(src: &str, bindings: &[(&str, u64, usize)]) -> Evaluation {
        let spec = Spec::parse(src).unwrap();
        let mut iv = InputVector::new();
        for &(name, value, width) in bindings {
            iv.set(name, Bits::from_u64(value, width));
        }
        evaluate(&spec, &iv).unwrap()
    }

    #[test]
    fn three_adds_chain() {
        let eval = eval_one(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
            &[("A", 10, 16), ("B", 20, 16), ("D", 30, 16), ("F", 40, 16)],
        );
        assert_eq!(eval.output("G").unwrap().to_u64(), 100);
    }

    #[test]
    fn add_with_carry_in() {
        let eval = eval_one(
            "spec ex { input A: u4; input B: u4; input c: u1;
              output S = A + B + c; }",
            &[("A", 7, 4), ("B", 8, 4), ("c", 1, 1)],
        );
        // natural widths: (A+B): 5 bits, +c: 6 bits
        assert_eq!(eval.output("S").unwrap().to_u64(), 16);
    }

    #[test]
    fn sub_wraps_unsigned() {
        let eval = eval_one(
            "spec ex { input A: u8; input B: u8; D: u8 = A - B; output D; }",
            &[("A", 5, 8), ("B", 9, 8)],
        );
        assert_eq!(eval.output("D").unwrap().to_u64(), 252);
    }

    #[test]
    fn signed_ops() {
        let spec = Spec::parse(
            "spec s { input a: i8; input b: i8;
              m: i16 = a * b;
              mx: i8 = max(a, b);
              l: u1 = a < b;
              output m; output mx; output l; }",
        )
        .unwrap();
        let mut iv = InputVector::new();
        iv.set("a", Bits::from_i64(-3, 8));
        iv.set("b", Bits::from_i64(5, 8));
        let eval = evaluate(&spec, &iv).unwrap();
        assert_eq!(eval.output("m").unwrap().to_i64(), -15);
        assert_eq!(eval.output("mx").unwrap().to_i64(), 5);
        assert_eq!(eval.output("l").unwrap().to_u64(), 1);
    }

    #[test]
    fn unsigned_comparison_differs_from_signed() {
        let eval = eval_one(
            "spec s { input a: u8; input b: u8; output l = a < b; }",
            &[("a", 0xFF, 8), ("b", 3, 8)],
        );
        assert_eq!(eval.output("l").unwrap().to_u64(), 0); // 255 < 3 is false unsigned
    }

    #[test]
    fn abs_and_neg() {
        let spec =
            Spec::parse("spec s { input a: i8; A: u8 = abs(a); N: i9 = -a; output A; output N; }")
                .unwrap();
        let mut iv = InputVector::new();
        iv.set("a", Bits::from_i64(-100, 8));
        let eval = evaluate(&spec, &iv).unwrap();
        assert_eq!(eval.output("A").unwrap().to_u64(), 100);
        assert_eq!(eval.output("N").unwrap().to_i64(), 100);
    }

    #[test]
    fn shifts_signed_and_unsigned() {
        let spec = Spec::parse(
            "spec s { input a: i8; L: i10 = a << 1; R: i8 = a >> 2; output L; output R; }",
        )
        .unwrap();
        let mut iv = InputVector::new();
        iv.set("a", Bits::from_i64(-8, 8));
        let eval = evaluate(&spec, &iv).unwrap();
        assert_eq!(eval.output("L").unwrap().to_i64(), -16);
        assert_eq!(eval.output("R").unwrap().to_i64(), -2); // arithmetic shift
    }

    #[test]
    fn mux_and_reductions() {
        let eval = eval_one(
            "spec s { input s1: u1; input a: u4; input b: u4;
              m: u4 = mux(s1, a, b);
              r: u1 = redor(a);
              q: u1 = redand(a);
              output m; output r; output q; }",
            &[("s1", 1, 1), ("a", 0xF, 4), ("b", 2, 4)],
        );
        assert_eq!(eval.output("m").unwrap().to_u64(), 0xF);
        assert_eq!(eval.output("r").unwrap().to_u64(), 1);
        assert_eq!(eval.output("q").unwrap().to_u64(), 1);
    }

    #[test]
    fn concat_and_slices() {
        let eval = eval_one(
            "spec s { input a: u4; input b: u4;
              w: u8 = concat(a, b);
              hi: u4 = w[7:4];
              output w; output hi; }",
            &[("a", 0x3, 4), ("b", 0xA, 4)],
        );
        // a is the low nibble
        assert_eq!(eval.output("w").unwrap().to_u64(), 0xA3);
        assert_eq!(eval.output("hi").unwrap().to_u64(), 0xA);
    }

    #[test]
    fn fig2_transformed_fragment_semantics() {
        // First fragment row of the paper's Fig. 2 a): C(6..0) = A(5..0)+B(5..0)
        // and the second row consumes the carry C(6).
        let eval = eval_one(
            "spec beh2 { input A: u16; input B: u16;
              C0: u7 = A[5:0] + B[5:0];
              C1: u7 = A[11:6] + B[11:6] + C0[6];
              output C0; output C1; }",
            &[("A", 0x0FFF, 16), ("B", 0x0001, 16)],
        );
        // A[5:0]=0x3F, B[5:0]=1 -> 0x40 (carry into bit 6 of the 7-bit value)
        assert_eq!(eval.output("C0").unwrap().to_u64(), 0x40);
        // A[11:6]=0x3F, B[11:6]=0, carry C0[6]=1 -> 0x40
        assert_eq!(eval.output("C1").unwrap().to_u64(), 0x40);
    }

    #[test]
    fn missing_input_is_reported() {
        let spec = Spec::parse("spec s { input a: u4; output o = a + 1; }").unwrap();
        let err = evaluate(&spec, &InputVector::new()).unwrap_err();
        assert_eq!(err, SimError::MissingInput { name: "a".into() });
    }

    #[test]
    fn wrong_width_is_reported() {
        let spec = Spec::parse("spec s { input a: u4; output o = a + 1; }").unwrap();
        let mut iv = InputVector::new();
        iv.set("a", Bits::from_u64(1, 8));
        let err = evaluate(&spec, &iv).unwrap_err();
        assert!(matches!(err, SimError::WidthMismatch { expected: 4, got: 8, .. }));
    }

    #[test]
    fn eq_ne_mixed_width() {
        let eval = eval_one(
            "spec s { input a: u4; input b: u8;
              e: u1 = a == b; n: u1 = a != b; output e; output n; }",
            &[("a", 7, 4), ("b", 7, 8)],
        );
        assert_eq!(eval.output("e").unwrap().to_u64(), 1);
        assert_eq!(eval.output("n").unwrap().to_u64(), 0);
    }

    #[test]
    fn input_vector_api() {
        let mut iv = InputVector::new();
        assert!(iv.is_empty());
        iv.set("x", Bits::from_u64(1, 1));
        assert_eq!(iv.len(), 1);
        assert_eq!(iv.get("x").unwrap().to_u64(), 1);
        let iv2: InputVector = vec![("y".to_string(), Bits::zero(2))].into_iter().collect();
        assert_eq!(iv2.iter().count(), 1);
    }
}
