//! Deterministic random input-vector generation.
//!
//! Equivalence checking needs many input vectors; this module produces them
//! reproducibly from a seed, with a bias towards the corner values
//! (all-zeros, all-ones, sign-boundary) where carry-chain bugs live.

use crate::InputVector;
use bittrans_ir::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates one random input vector for `spec`.
///
/// One in four values is drawn from the corner set `{0, 1, 2^w - 1,
/// 2^(w-1), 2^(w-1) - 1}` instead of uniformly, to stress carries and sign
/// boundaries.
pub fn random_inputs(spec: &Spec, rng: &mut StdRng) -> InputVector {
    let mut iv = InputVector::new();
    for &input in spec.inputs() {
        let width = spec.value(input).width() as usize;
        let bits = random_bits(width, rng);
        iv.set(spec.input_name(input), bits);
    }
    iv
}

/// Generates `count` random input vectors from `seed`.
///
/// The same `(spec, seed, count)` always produces the same vectors, so test
/// failures are reproducible.
pub fn random_vectors(spec: &Spec, seed: u64, count: usize) -> Vec<InputVector> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_inputs(spec, &mut rng)).collect()
}

/// One random `width`-bit value, corner-biased.
pub fn random_bits(width: usize, rng: &mut StdRng) -> Bits {
    if width == 0 {
        return Bits::zero(0);
    }
    if rng.gen_ratio(1, 4) {
        match rng.gen_range(0..5u8) {
            0 => Bits::zero(width),
            1 => Bits::from_u64(1, width),
            2 => Bits::ones(width),
            3 => {
                // sign boundary 2^(w-1)
                let mut b = Bits::zero(width);
                b.set(width - 1, true);
                b
            }
            _ => {
                // 2^(w-1) - 1
                let mut b = Bits::ones(width);
                b.set(width - 1, false);
                b
            }
        }
    } else {
        let mut b = Bits::zero(width);
        for i in 0..width {
            b.set(i, rng.gen());
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_deterministic() {
        let spec = Spec::parse("spec s { input a: u16; input b: u3; output o = a + b; }").unwrap();
        let v1 = random_vectors(&spec, 42, 10);
        let v2 = random_vectors(&spec, 42, 10);
        assert_eq!(v1, v2);
        let v3 = random_vectors(&spec, 43, 10);
        assert_ne!(v1, v3);
    }

    #[test]
    fn vectors_respect_widths() {
        let spec = Spec::parse("spec s { input a: u16; input b: u3; output o = a + b; }").unwrap();
        for iv in random_vectors(&spec, 7, 50) {
            assert_eq!(iv.get("a").unwrap().width(), 16);
            assert_eq!(iv.get("b").unwrap().width(), 3);
        }
    }

    #[test]
    fn corners_do_appear() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_zero = false;
        let mut saw_ones = false;
        for _ in 0..200 {
            let b = random_bits(8, &mut rng);
            saw_zero |= b.is_zero();
            saw_ones |= b == Bits::ones(8);
        }
        assert!(saw_zero && saw_ones, "corner bias not effective");
    }

    #[test]
    fn zero_width_is_fine() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_bits(0, &mut rng).width(), 0);
    }
}
