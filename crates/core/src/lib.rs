//! # bittrans-core
//!
//! The complete presynthesis optimisation pipeline of *"Behavioural
//! Transformation to Improve Circuit Performance in High-Level Synthesis"*
//! (Ruiz-Sautua et al., DATE 2005), plus the baseline flow and the
//! comparison harness behind every table and figure of the paper.
//!
//! ## The two flows
//!
//! ```text
//!            ┌────────────┐   ┌──────────────┐   ┌───────────┐
//! original ──► kernel      ├──►  fragmentation├──► fragment   ├──► allocate ──► optimized
//!   spec      │ extraction │   │  (bit ASAP/  │   │ scheduler │      │          implementation
//!             └────────────┘   │   ALAP)      │   └───────────┘      ▼
//!                              └──────────────┘                   area/cycle
//!
//! original ──► conventional scheduler (atomic ops + chaining) ──► allocate ──► baseline
//! ```
//!
//! [`optimize`] runs the paper's three phases (§3.1–§3.3) and synthesises
//! the result; [`baseline`] plays Synopsys Behavioral Compiler on the
//! untransformed spec; [`compare`] runs both at the same latency and
//! reports the table rows (cycle saved %, area delta %); and
//! [`latency_sweep`] regenerates the Fig. 4 curves.
//!
//! ```
//! use bittrans_ir::prelude::*;
//! use bittrans_core::{compare, CompareOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = Spec::parse(
//!     "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
//!       C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
//! )?;
//! let cmp = compare(&spec, 3, &CompareOptions::default())?;
//! assert!(cmp.cycle_saved_pct() > 50.0); // the paper's headline effect
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod report;
pub mod stage;

use bittrans_alloc::{allocate, AllocOptions};
use bittrans_frag::{fragment, FragError, FragmentOptions};
use bittrans_ir::prelude::*;
use bittrans_kernel::extract;
use bittrans_rtl::{AdderArch, AreaReport};
use bittrans_sched::conventional::{schedule_conventional, ConventionalOptions};
use bittrans_sched::fragment::{schedule_fragments, FragmentScheduleOptions};
use bittrans_sched::SchedError;
use bittrans_sim::equivalence::{check_equivalence, Inequivalence};
use bittrans_timing::{Delta, TimingModel};
use serde::Serialize;
use std::fmt;

pub use bittrans_alloc::Datapath;
pub use bittrans_frag::Fragmented;
pub use bittrans_ir::canonical::CodecError;
pub use bittrans_sched::conventional::Chaining;
pub use bittrans_sched::Schedule;

/// Options shared by [`optimize`], [`baseline`] and [`compare`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompareOptions {
    /// Adder micro-architecture used in the datapath cost model.
    pub adder_arch: AdderArch,
    /// δ→ns conversion.
    pub timing: TimingModel,
    /// Balance operations across cycles in both schedulers.
    pub balance: bool,
    /// Number of random vectors for the built-in equivalence check of the
    /// optimized flow (0 disables verification).
    pub verify_vectors: usize,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            adder_arch: AdderArch::RippleCarry,
            timing: TimingModel::paper_calibrated(),
            balance: true,
            verify_vectors: 50,
        }
    }
}

impl CompareOptions {
    /// A validated builder starting from [`CompareOptions::default`].
    ///
    /// The struct's fields stay public (struct-update syntax keeps working),
    /// but the builder is the front door for configuration assembled from
    /// user input — CLI flags, study axes — because [`build`] range-checks
    /// what a struct literal cannot: the timing model must be physical and
    /// the verification budget bounded.
    ///
    /// [`build`]: CompareOptionsBuilder::build
    pub fn builder() -> CompareOptionsBuilder {
        CompareOptionsBuilder { options: CompareOptions::default() }
    }
}

/// Upper bound on [`CompareOptions::verify_vectors`] accepted by the
/// builder: beyond this the equivalence check dominates every pipeline run
/// by orders of magnitude, which is always a mistyped flag.
pub const MAX_VERIFY_VECTORS: usize = 1_000_000;

/// Builder for [`CompareOptions`] with range validation. Created by
/// [`CompareOptions::builder`].
#[derive(Clone, Copy, Debug)]
pub struct CompareOptionsBuilder {
    options: CompareOptions,
}

impl CompareOptionsBuilder {
    /// Sets the adder micro-architecture of the datapath cost model.
    pub fn adder_arch(mut self, adder_arch: AdderArch) -> Self {
        self.options.adder_arch = adder_arch;
        self
    }

    /// Sets the δ→ns timing model (validated in [`Self::build`]).
    pub fn timing(mut self, timing: TimingModel) -> Self {
        self.options.timing = timing;
        self
    }

    /// Enables or disables per-cycle operation balancing in both schedulers.
    pub fn balance(mut self, balance: bool) -> Self {
        self.options.balance = balance;
        self
    }

    /// Sets the number of random vectors for the built-in equivalence check
    /// (0 disables verification; validated in [`Self::build`]).
    pub fn verify_vectors(mut self, verify_vectors: usize) -> Self {
        self.options.verify_vectors = verify_vectors;
        self
    }

    /// Validates and returns the options.
    ///
    /// # Errors
    ///
    /// [`OptionsError`] when the timing model is non-physical (δ not finite
    /// and positive, overhead not finite and non-negative) or
    /// `verify_vectors` exceeds [`MAX_VERIFY_VECTORS`].
    pub fn build(self) -> Result<CompareOptions, OptionsError> {
        let CompareOptions { timing, verify_vectors, .. } = self.options;
        if !(timing.delta_ns.is_finite() && timing.delta_ns > 0.0) {
            return Err(OptionsError::BadDelta(timing.delta_ns));
        }
        if !(timing.overhead_ns.is_finite() && timing.overhead_ns >= 0.0) {
            return Err(OptionsError::BadOverhead(timing.overhead_ns));
        }
        if verify_vectors > MAX_VERIFY_VECTORS {
            return Err(OptionsError::TooManyVectors(verify_vectors));
        }
        Ok(self.options)
    }
}

/// A [`CompareOptionsBuilder::build`] rejection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptionsError {
    /// `timing.delta_ns` was not finite and positive.
    BadDelta(f64),
    /// `timing.overhead_ns` was not finite and non-negative.
    BadOverhead(f64),
    /// `verify_vectors` exceeded [`MAX_VERIFY_VECTORS`].
    TooManyVectors(usize),
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::BadDelta(v) => {
                write!(f, "timing delta_ns must be finite and positive (got {v})")
            }
            OptionsError::BadOverhead(v) => {
                write!(f, "timing overhead_ns must be finite and non-negative (got {v})")
            }
            OptionsError::TooManyVectors(n) => {
                write!(f, "verify_vectors {n} exceeds the maximum of {MAX_VERIFY_VECTORS}")
            }
        }
    }
}

impl std::error::Error for OptionsError {}

/// Errors from the pipeline.
#[derive(Clone, Debug)]
pub enum PipelineError {
    /// IR construction failed during a rewrite.
    Ir(IrError),
    /// Fragmentation failed (infeasible latency, non-additive spec, …).
    Frag(FragError),
    /// Scheduling failed.
    Sched(SchedError),
    /// The transformed specification disagreed with the original — a bug
    /// guard that should never fire.
    Verification(Inequivalence),
}

impl PipelineError {
    /// Whether this error means "this latency has no feasible design" —
    /// the expected, skippable outcome of probing a latency range — as
    /// opposed to a fatal defect of the specification or the pipeline
    /// itself (parse/rewrite failures, a non-additive spec, a failed
    /// equivalence check), which no other latency will cure.
    ///
    /// [`latency_sweep`] skips infeasible points and propagates everything
    /// else.
    pub fn is_infeasible(&self) -> bool {
        match self {
            // Every scheduler error is a latency/cycle feasibility verdict.
            PipelineError::Sched(_) => true,
            PipelineError::Frag(e) => {
                matches!(e, FragError::Infeasible { .. } | FragError::ZeroLatency)
            }
            PipelineError::Ir(_) | PipelineError::Verification(_) => false,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Ir(e) => write!(f, "ir: {e}"),
            PipelineError::Frag(e) => write!(f, "fragmentation: {e}"),
            PipelineError::Sched(e) => write!(f, "scheduling: {e}"),
            PipelineError::Verification(e) => write!(f, "verification: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<IrError> for PipelineError {
    fn from(e: IrError) -> Self {
        PipelineError::Ir(e)
    }
}
impl From<FragError> for PipelineError {
    fn from(e: FragError) -> Self {
        PipelineError::Frag(e)
    }
}
impl From<SchedError> for PipelineError {
    fn from(e: SchedError) -> Self {
        PipelineError::Sched(e)
    }
}
impl From<Inequivalence> for PipelineError {
    fn from(e: Inequivalence) -> Self {
        PipelineError::Verification(e)
    }
}

/// Measured characteristics of one synthesised implementation — one column
/// of the paper's Table I, or one cell row of Tables II/III.
#[derive(Clone, Debug, Serialize)]
pub struct Implementation {
    /// Specification name.
    pub name: String,
    /// Latency λ in cycles.
    pub latency: u32,
    /// Cycle duration in δ (chained 1-bit additions).
    pub cycle_delta: Delta,
    /// Cycle duration in ns under the calibrated model.
    pub cycle_ns: f64,
    /// Execution time (λ · cycle) in ns.
    pub execution_ns: f64,
    /// Datapath + controller area split.
    #[serde(serialize_with = "serialize_area")]
    pub area: AreaReport,
    /// Non-glue operation count of the scheduled specification.
    pub op_count: usize,
    /// Register bits stored across cycle boundaries.
    pub stored_bits: u32,
}

fn serialize_area<S: serde::Serializer>(a: &AreaReport, s: S) -> Result<S::Ok, S::Error> {
    use serde::ser::SerializeStruct;
    let mut st = s.serialize_struct("AreaReport", 5)?;
    st.serialize_field("fu", &a.fu)?;
    st.serialize_field("registers", &a.registers)?;
    st.serialize_field("routing", &a.routing)?;
    st.serialize_field("controller", &a.controller)?;
    st.serialize_field("total", &a.total())?;
    st.end()
}

fn implementation(
    name: &str,
    spec: &Spec,
    schedule: &Schedule,
    datapath: &Datapath,
    timing: &TimingModel,
) -> Implementation {
    Implementation {
        name: name.to_string(),
        latency: schedule.latency,
        cycle_delta: schedule.cycle,
        cycle_ns: timing.cycle_ns(schedule.cycle),
        execution_ns: timing.execution_ns(schedule.cycle, schedule.latency),
        area: datapath.area,
        op_count: spec.stats().non_glue(),
        stored_bits: datapath.stored_bits,
    }
}

// ---------------------------------------------------------------------------
// Stage functions
//
// The pipeline decomposed into its individually cacheable stages. Each
// stage is a pure function of the arguments listed in its signature —
// nothing else — which is what lets `engine::stagecache` key a stage's
// output by its inputs alone. [`optimize`], [`baseline`], [`blc`] and
// [`compare`] below are thin compositions of these functions, and the
// engine's memoized path composes the very same functions in the very
// same order, so both paths produce bit-identical results. Every stage
// keeps its `stage::observe` wrapper (and its established span name), so
// trace output is unchanged no matter who drives the stages.
// ---------------------------------------------------------------------------

/// Stage `extract`: rewrites `spec` into additive form (§3.1 kernel
/// extraction). Latency-invariant: a latency sweep shares one extraction.
///
/// # Errors
///
/// [`PipelineError::Ir`] when a rewrite step fails.
pub fn stage_extract(spec: &Spec) -> Result<Spec, PipelineError> {
    Ok(stage::observe("extract", || extract(spec))?)
}

/// Stage `fragment`: splits the additive-form `kernel` for latency λ
/// (§3.2 cycle estimation + §3.3 fragmentation).
///
/// # Errors
///
/// [`PipelineError::Frag`] when λ is infeasible or the kernel is not in
/// additive form.
pub fn stage_fragment(kernel: &Spec, latency: u32) -> Result<Fragmented, PipelineError> {
    Ok(stage::observe("fragment", || fragment(kernel, &FragmentOptions::with_latency(latency)))?)
}

/// Stage `verify`: co-simulates the transformed spec against the original
/// over `vectors` random vectors (fixed seed, so the check is a pure
/// function of its arguments). A no-op when `vectors` is zero.
///
/// # Errors
///
/// [`PipelineError::Verification`] on any disagreement.
pub fn stage_verify(
    original: &Spec,
    transformed: &Spec,
    vectors: usize,
) -> Result<(), PipelineError> {
    if vectors == 0 {
        return Ok(());
    }
    Ok(stage::observe("verify", || check_equivalence(original, transformed, 0x2005, vectors))?)
}

/// Stage `schedule` (conventional): schedules the untransformed spec with
/// atomic operations and the given chaining model at latency λ.
///
/// # Errors
///
/// [`PipelineError::Sched`] when no feasible cycle exists.
pub fn stage_schedule_conventional(
    spec: &Spec,
    latency: u32,
    chaining: Chaining,
    balance: bool,
) -> Result<Schedule, PipelineError> {
    Ok(stage::observe("schedule", || {
        schedule_conventional(
            spec,
            &ConventionalOptions { latency, cycle_override: None, chaining, balance },
        )
    })?)
}

/// Stage `schedule` (fragment): schedules the fragmented spec.
///
/// # Errors
///
/// [`PipelineError::Sched`] when the fragment schedule is infeasible.
pub fn stage_schedule_fragments(
    fragmented: &Fragmented,
    balance: bool,
) -> Result<Schedule, PipelineError> {
    Ok(stage::observe("schedule", || {
        schedule_fragments(fragmented, &FragmentScheduleOptions { balance })
    })?)
}

/// Stage `allocate`: binds the scheduled spec to a priced datapath.
/// Infallible.
pub fn stage_allocate(spec: &Spec, schedule: &Schedule, adder_arch: AdderArch) -> Datapath {
    stage::observe("allocate", || allocate(spec, schedule, &AllocOptions { adder_arch }))
}

/// Stage `time`: derives the measured characteristics of one synthesised
/// design point. Pure arithmetic; infallible.
pub fn stage_time(
    name: &str,
    spec: &Spec,
    schedule: &Schedule,
    datapath: &Datapath,
    timing: &TimingModel,
) -> Implementation {
    stage::observe("time", || implementation(name, spec, schedule, datapath, timing))
}

/// The optimized flow's full result.
#[derive(Clone, Debug)]
pub struct OptimizedDesign {
    /// The additive-form spec after kernel extraction (§3.1).
    pub kernel: Spec,
    /// The fragmented spec with its metadata (§3.3).
    pub fragmented: Fragmented,
    /// The fragment schedule.
    pub schedule: Schedule,
    /// The allocated datapath.
    pub datapath: Datapath,
    /// Measured characteristics.
    pub implementation: Implementation,
}

/// The baseline flow's full result.
#[derive(Clone, Debug)]
pub struct BaselineDesign {
    /// The conventional schedule of the original spec.
    pub schedule: Schedule,
    /// The allocated datapath.
    pub datapath: Datapath,
    /// Measured characteristics.
    pub implementation: Implementation,
}

/// Runs the paper's presynthesis optimisation and synthesises the result.
///
/// Phases: kernel extraction → cycle estimation + fragmentation → fragment
/// scheduling → allocation. When `verify_vectors > 0`, the transformed
/// specification is co-simulated against the original.
///
/// # Errors
///
/// Any [`PipelineError`]; with default options the only realistic one is an
/// infeasible latency.
pub fn optimize(
    spec: &Spec,
    latency: u32,
    options: &CompareOptions,
) -> Result<OptimizedDesign, PipelineError> {
    let kernel = stage_extract(spec)?;
    let fragmented = stage_fragment(&kernel, latency)?;
    stage_verify(spec, &fragmented.spec, options.verify_vectors)?;
    let schedule = stage_schedule_fragments(&fragmented, options.balance)?;
    let datapath = stage_allocate(&fragmented.spec, &schedule, options.adder_arch);
    let implementation =
        stage_time(spec.name(), &fragmented.spec, &schedule, &datapath, &options.timing);
    Ok(OptimizedDesign { kernel, fragmented, schedule, datapath, implementation })
}

/// Runs the conventional baseline (atomic operations, chaining) on the
/// original specification at the minimal feasible cycle for `latency`.
///
/// # Errors
///
/// Scheduling errors, e.g. zero latency.
pub fn baseline(
    spec: &Spec,
    latency: u32,
    options: &CompareOptions,
) -> Result<BaselineDesign, PipelineError> {
    let schedule =
        stage_schedule_conventional(spec, latency, Chaining::ComponentSum, options.balance)?;
    let datapath = stage_allocate(spec, &schedule, options.adder_arch);
    let implementation = stage_time(spec.name(), spec, &schedule, &datapath, &options.timing);
    Ok(BaselineDesign { schedule, datapath, implementation })
}

/// Runs the bit-level-chaining (BLC) prior-art design point: the
/// conventional scheduler with ripple-overlap chaining (the paper's
/// Fig. 1 d / Table I middle column, after \[3\]).
///
/// # Errors
///
/// Scheduling errors, e.g. zero latency.
pub fn blc(
    spec: &Spec,
    latency: u32,
    options: &CompareOptions,
) -> Result<BaselineDesign, PipelineError> {
    let schedule = stage_schedule_conventional(spec, latency, Chaining::BitLevel, options.balance)?;
    let datapath = stage_allocate(spec, &schedule, options.adder_arch);
    let implementation = stage_time(spec.name(), spec, &schedule, &datapath, &options.timing);
    Ok(BaselineDesign { schedule, datapath, implementation })
}

/// A baseline-vs-optimized pair at equal latency: one row of Tables II/III.
#[derive(Clone, Debug, Serialize)]
pub struct Comparison {
    /// Baseline (original specification) implementation.
    pub original: Implementation,
    /// Optimized (transformed specification) implementation.
    pub optimized: Implementation,
}

impl Comparison {
    /// Cycle-duration saving in percent (the paper's "Saved" column).
    pub fn cycle_saved_pct(&self) -> f64 {
        (self.original.cycle_ns - self.optimized.cycle_ns) / self.original.cycle_ns * 100.0
    }

    /// Total-area change in percent, positive = optimized is larger (the
    /// paper's "Area increment" column).
    pub fn area_delta_pct(&self) -> f64 {
        self.optimized.area.delta_pct(&self.original.area)
    }

    /// Operation-count growth of the transformed specification in percent.
    pub fn op_growth_pct(&self) -> f64 {
        (self.optimized.op_count as f64 - self.original.op_count as f64)
            / self.original.op_count as f64
            * 100.0
    }
}

/// Runs both flows at latency `λ` and pairs the results.
///
/// # Errors
///
/// Propagates either flow's [`PipelineError`].
pub fn compare(
    spec: &Spec,
    latency: u32,
    options: &CompareOptions,
) -> Result<Comparison, PipelineError> {
    let base = baseline(spec, latency, options)?;
    let opt = optimize(spec, latency, options)?;
    Ok(Comparison { original: base.implementation, optimized: opt.implementation })
}

/// One point of the Fig. 4 curves.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SweepPoint {
    /// Latency λ.
    pub latency: u32,
    /// Baseline cycle length in ns.
    pub original_ns: f64,
    /// Optimized cycle length in ns.
    pub optimized_ns: f64,
}

/// Regenerates the Fig. 4 experiment: cycle length of both flows across a
/// latency range. Latencies where a flow is infeasible
/// ([`PipelineError::is_infeasible`]) are skipped — that is the expected
/// outcome of probing a range — while fatal errors (bad spec, failed
/// equivalence check) abort the sweep.
///
/// # Errors
///
/// The first non-infeasible [`PipelineError`] encountered.
pub fn latency_sweep(
    spec: &Spec,
    latencies: impl IntoIterator<Item = u32>,
    options: &CompareOptions,
) -> Result<Vec<SweepPoint>, PipelineError> {
    sweep_by(spec, latencies, options, compare)
}

/// [`latency_sweep`] parameterised by the comparison function, so tests
/// can inject failures that the real pipeline cannot produce (a genuine
/// mid-sweep `Inequivalence` requires a pipeline bug).
fn sweep_by(
    spec: &Spec,
    latencies: impl IntoIterator<Item = u32>,
    options: &CompareOptions,
    mut compare_fn: impl FnMut(&Spec, u32, &CompareOptions) -> Result<Comparison, PipelineError>,
) -> Result<Vec<SweepPoint>, PipelineError> {
    let mut points = Vec::new();
    for latency in latencies {
        match compare_fn(spec, latency, options) {
            Ok(cmp) => points.push(SweepPoint {
                latency,
                original_ns: cmp.original.cycle_ns,
                optimized_ns: cmp.optimized.cycle_ns,
            }),
            Err(e) if e.is_infeasible() => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn optimize_reproduces_table1_column3() {
        let spec = three_adds();
        let opt = optimize(&spec, 3, &CompareOptions::default()).unwrap();
        let imp = &opt.implementation;
        assert_eq!(imp.cycle_delta, 6);
        assert!((imp.cycle_ns - 3.55).abs() < 0.05, "{}", imp.cycle_ns);
        assert!((imp.execution_ns - 10.66).abs() < 0.15, "{}", imp.execution_ns);
        assert!((imp.area.total() - 452.0).abs() / 452.0 < 0.10);
        assert_eq!(imp.stored_bits, 5, "C5, E4 and three carries");
    }

    #[test]
    fn baseline_reproduces_table1_column1() {
        let spec = three_adds();
        let base = baseline(&spec, 3, &CompareOptions::default()).unwrap();
        let imp = &base.implementation;
        assert_eq!(imp.cycle_delta, 16);
        assert!((imp.cycle_ns - 9.4).abs() < 0.05);
        assert!((imp.execution_ns - 28.22).abs() < 0.15);
        assert!((imp.area.total() - 479.0).abs() / 479.0 < 0.02);
    }

    #[test]
    fn comparison_shows_the_headline_effect() {
        let spec = three_adds();
        let cmp = compare(&spec, 3, &CompareOptions::default()).unwrap();
        // Paper: 62.2 % shorter cycles, slightly *smaller* area.
        assert!(cmp.cycle_saved_pct() > 55.0, "{}", cmp.cycle_saved_pct());
        assert!(cmp.area_delta_pct() < 5.0, "{}", cmp.area_delta_pct());
        assert!(cmp.op_growth_pct() > 0.0);
    }

    #[test]
    fn sweep_diverges_with_latency() {
        let spec = three_adds();
        // From λ = 3 the baseline cycle flattens at the 16δ adder bound
        // while the optimized cycle keeps shrinking — the Fig. 4 shape.
        let points = latency_sweep(&spec, 3..=9, &CompareOptions::default()).unwrap();
        assert!(points.len() >= 4);
        let gap_small = points.first().unwrap();
        let gap_large = points.last().unwrap();
        let g0 = gap_small.original_ns - gap_small.optimized_ns;
        let g1 = gap_large.original_ns - gap_large.optimized_ns;
        assert!(g1 > g0, "Fig. 4 divergence: {g0} vs {g1}");
        // The optimized curve decreases monotonically with latency.
        for w in points.windows(2) {
            assert!(w[1].optimized_ns <= w[0].optimized_ns + 1e-9);
        }
    }

    #[test]
    fn sweep_skips_infeasible_latencies_only() {
        let spec = three_adds();
        // λ = 0 is infeasible (not a pipeline bug) and must be skipped,
        // not aborted on and not silently conflated with real failures.
        let points = latency_sweep(&spec, 0..=5, &CompareOptions::default()).unwrap();
        assert!(points.iter().all(|p| p.latency >= 1), "λ=0 skipped");
        assert!(points.len() >= 4);
    }

    #[test]
    fn sweep_propagates_fatal_errors() {
        let spec = three_adds();
        // A mid-sweep verification failure is unreachable without a
        // pipeline bug, so inject one through the `sweep_by` seam: the
        // first two points succeed, then the "pipeline" disagrees.
        let result = sweep_by(&spec, 3..=9, &CompareOptions::default(), |s, latency, o| {
            if latency >= 5 {
                return Err(PipelineError::Verification(Inequivalence::PortMismatch {
                    detail: "injected mid-sweep failure".into(),
                }));
            }
            compare(s, latency, o)
        });
        match result {
            Err(PipelineError::Verification(Inequivalence::PortMismatch { detail })) => {
                assert!(detail.contains("injected"));
            }
            other => panic!("fatal error must abort the sweep, got {other:?}"),
        }
    }

    #[test]
    fn error_classification_separates_infeasible_from_fatal() {
        assert!(PipelineError::Frag(FragError::ZeroLatency).is_infeasible());
        assert!(PipelineError::Sched(SchedError::ZeroLatency).is_infeasible());
        assert!(PipelineError::Sched(SchedError::LatencyExceeded { needed: 4, latency: 2 })
            .is_infeasible());
        assert!(!PipelineError::Verification(Inequivalence::PortMismatch {
            detail: "width".into()
        })
        .is_infeasible());
        // A non-additive kernel is a spec defect: no latency cures it.
        let spec = Spec::parse("spec s { input a: u4; input b: u4; output o = a + b; }").unwrap();
        let err = stage_fragment(&spec, 0).unwrap_err();
        assert!(err.is_infeasible());
    }

    #[test]
    fn staged_composition_matches_monolithic_paths() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let mono = compare(&spec, 3, &options).unwrap();

        // Drive the stage functions directly, the way the engine's
        // memoized path does, and demand bit-identical numbers.
        let base_sched =
            stage_schedule_conventional(&spec, 3, Chaining::ComponentSum, options.balance).unwrap();
        let base_dp = stage_allocate(&spec, &base_sched, options.adder_arch);
        let base = stage_time(spec.name(), &spec, &base_sched, &base_dp, &options.timing);
        let kernel = stage_extract(&spec).unwrap();
        let fragmented = stage_fragment(&kernel, 3).unwrap();
        stage_verify(&spec, &fragmented.spec, options.verify_vectors).unwrap();
        let opt_sched = stage_schedule_fragments(&fragmented, options.balance).unwrap();
        let opt_dp = stage_allocate(&fragmented.spec, &opt_sched, options.adder_arch);
        let opt = stage_time(spec.name(), &fragmented.spec, &opt_sched, &opt_dp, &options.timing);

        assert_eq!(
            serde_json::to_string(&mono).unwrap(),
            serde_json::to_string(&Comparison { original: base, optimized: opt }).unwrap()
        );
    }

    #[test]
    fn infeasible_latency_is_reported() {
        let spec = Spec::parse("spec s { input a: u4; input b: u4; output o = a + b; }").unwrap();
        // λ larger than the bit-level critical path still works (cycle 1δ);
        // but a zero latency must fail cleanly.
        assert!(matches!(
            optimize(&spec, 0, &CompareOptions::default()),
            Err(PipelineError::Frag(_))
        ));
    }

    #[test]
    fn verification_runs_and_passes() {
        let spec = Spec::parse(
            "spec s { input a: i8; input b: i8; input c1: u8;
              p: i16 = a * b;
              q: i16 = p - c1;
              m: i16 = max(q, p);
              output m; }",
        )
        .unwrap();
        let opt = optimize(&spec, 4, &CompareOptions { verify_vectors: 150, ..Default::default() })
            .unwrap();
        assert!(opt.fragmented.spec.is_additive_form());
    }

    #[test]
    fn errors_display() {
        let e = PipelineError::Frag(FragError::ZeroLatency);
        assert!(e.to_string().contains("fragmentation"));
        let e = PipelineError::Sched(SchedError::ZeroLatency);
        assert!(e.to_string().contains("scheduling"));
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = CompareOptions::builder().build().unwrap();
        assert_eq!(built, CompareOptions::default());
    }

    #[test]
    fn builder_sets_every_field() {
        let timing = TimingModel { delta_ns: 0.3, overhead_ns: 0.1 };
        let built = CompareOptions::builder()
            .adder_arch(bittrans_rtl::AdderArch::CarrySelect)
            .timing(timing)
            .balance(false)
            .verify_vectors(7)
            .build()
            .unwrap();
        assert_eq!(built.adder_arch, bittrans_rtl::AdderArch::CarrySelect);
        assert_eq!(built.timing, timing);
        assert!(!built.balance);
        assert_eq!(built.verify_vectors, 7);
    }

    #[test]
    fn builder_rejects_out_of_range_values() {
        for delta in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let r = CompareOptions::builder()
                .timing(TimingModel { delta_ns: delta, overhead_ns: 0.0 })
                .build();
            assert!(matches!(r, Err(OptionsError::BadDelta(_))), "delta {delta}");
        }
        for overhead in [-0.1, f64::NAN] {
            let r = CompareOptions::builder()
                .timing(TimingModel { delta_ns: 0.5, overhead_ns: overhead })
                .build();
            assert!(matches!(r, Err(OptionsError::BadOverhead(_))), "overhead {overhead}");
        }
        let r = CompareOptions::builder().verify_vectors(MAX_VERIFY_VECTORS + 1).build();
        assert!(matches!(r, Err(OptionsError::TooManyVectors(_))));
        assert!(r.unwrap_err().to_string().contains("verify_vectors"));
    }
}
