//! Stage-timing observation hooks for the pipeline.
//!
//! The core crate cannot depend on the engine (the dependency points the
//! other way), yet the engine's trace collector wants per-stage child
//! spans around [`optimize`](crate::optimize) /
//! [`baseline`](crate::baseline) — kernel extraction, fragmentation,
//! verification, scheduling, allocation, timing — so stage-level caching
//! work has a measured baseline. This module is the seam: the pipeline
//! wraps each stage in [`observe`], and an embedder may register one
//! process-global observer that receives `(stage name, duration)` after
//! each stage completes.
//!
//! With no observer registered, [`observe`] is one relaxed atomic load
//! plus a direct call — no clock read, no allocation — so the pipeline's
//! hot path is unchanged for every caller that never traces.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

type Observer = Box<dyn Fn(&'static str, Duration) + Send + Sync>;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<Observer>> = Mutex::new(None);

/// Registers the process-global stage observer, replacing any previous
/// one. The observer runs on whichever thread executes the stage, after
/// the stage completes; it must not call back into the pipeline.
pub fn set_observer(observer: impl Fn(&'static str, Duration) + Send + Sync + 'static) {
    *OBSERVER.lock().expect("stage observer lock") = Some(Box::new(observer));
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Unregisters the stage observer; [`observe`] reverts to a direct call.
///
/// Once this returns, the old observer will never run again: [`observe`]
/// only invokes the observer while holding the `OBSERVER` lock, so any
/// in-flight invocation must finish before this function can acquire the
/// lock and clear the slot. The flag is flipped *inside* the critical
/// section (it used to be flipped before taking the lock — benign even
/// then, for the same lock-ordering reason, but flipping it under the
/// lock makes the flag and the slot change atomically with respect to
/// observers and leaves nothing to reason about).
pub fn clear_observer() {
    let mut guard = OBSERVER.lock().expect("stage observer lock");
    ACTIVE.store(false, Ordering::SeqCst);
    *guard = None;
}

/// Runs `stage`, reporting its wall-clock duration to the registered
/// observer (if any) under `name`.
pub(crate) fn observe<R>(name: &'static str, stage: impl FnOnce() -> R) -> R {
    if !ACTIVE.load(Ordering::Relaxed) {
        return stage();
    }
    let started = Instant::now();
    let result = stage();
    let elapsed = started.elapsed();
    if let Ok(guard) = OBSERVER.lock() {
        if let Some(observer) = guard.as_ref() {
            observer(name, elapsed);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// The observer is process-global, so tests that install/clear it
    /// must not interleave. (A poisoned lock just means another observer
    /// test failed; don't cascade the panic.)
    static OBSERVER_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn observer_sees_stage_names_and_durations() {
        let _serial = OBSERVER_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let seen: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let calls = Arc::new(AtomicUsize::new(0));
        {
            let seen = Arc::clone(&seen);
            let calls = Arc::clone(&calls);
            // The observer is process-global and sibling tests exercise
            // the pipeline concurrently; count only this test's stage.
            set_observer(move |name, _dur| {
                if name == "unit" {
                    seen.lock().unwrap().push(name);
                    calls.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        let value = observe("unit", || 41 + 1);
        assert_eq!(value, 42);
        clear_observer();
        // After clearing, stages run unobserved.
        observe("unit", || ());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(*seen.lock().unwrap(), vec!["unit"]);
    }

    #[test]
    fn cleared_observer_never_fires_after_clear_returns() {
        let _serial = OBSERVER_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Hammer `observe` from several threads while the main thread
        // installs and clears the observer; the observer records a
        // violation if it ever runs after `clear_observer` returned.
        let cleared = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let workers: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        observe("hammer", || std::hint::black_box(1 + 1));
                    }
                })
            })
            .collect();

        for _ in 0..200 {
            cleared.store(false, Ordering::SeqCst);
            {
                let cleared = Arc::clone(&cleared);
                let violations = Arc::clone(&violations);
                set_observer(move |name, _dur| {
                    if name == "hammer" && cleared.load(Ordering::SeqCst) {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            std::thread::yield_now();
            clear_observer();
            // From here on the old observer must be dead. The flag flip
            // below is what arms the violation counter: any late
            // invocation on a worker thread would now see `cleared`.
            cleared.store(true, Ordering::SeqCst);
            std::thread::yield_now();
        }

        stop.store(true, Ordering::SeqCst);
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(violations.load(Ordering::SeqCst), 0, "observer fired after clear returned");
    }
}
