//! Stage-timing observation hooks for the pipeline.
//!
//! The core crate cannot depend on the engine (the dependency points the
//! other way), yet the engine's trace collector wants per-stage child
//! spans around [`optimize`](crate::optimize) /
//! [`baseline`](crate::baseline) — kernel extraction, fragmentation,
//! verification, scheduling, allocation, timing — so stage-level caching
//! work has a measured baseline. This module is the seam: the pipeline
//! wraps each stage in [`observe`], and an embedder may register one
//! process-global observer that receives `(stage name, duration)` after
//! each stage completes.
//!
//! With no observer registered, [`observe`] is one relaxed atomic load
//! plus a direct call — no clock read, no allocation — so the pipeline's
//! hot path is unchanged for every caller that never traces.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

type Observer = Box<dyn Fn(&'static str, Duration) + Send + Sync>;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<Observer>> = Mutex::new(None);

/// Registers the process-global stage observer, replacing any previous
/// one. The observer runs on whichever thread executes the stage, after
/// the stage completes; it must not call back into the pipeline.
pub fn set_observer(observer: impl Fn(&'static str, Duration) + Send + Sync + 'static) {
    *OBSERVER.lock().expect("stage observer lock") = Some(Box::new(observer));
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Unregisters the stage observer; [`observe`] reverts to a direct call.
pub fn clear_observer() {
    ACTIVE.store(false, Ordering::SeqCst);
    *OBSERVER.lock().expect("stage observer lock") = None;
}

/// Runs `stage`, reporting its wall-clock duration to the registered
/// observer (if any) under `name`.
pub(crate) fn observe<R>(name: &'static str, stage: impl FnOnce() -> R) -> R {
    if !ACTIVE.load(Ordering::Relaxed) {
        return stage();
    }
    let started = Instant::now();
    let result = stage();
    let elapsed = started.elapsed();
    if let Ok(guard) = OBSERVER.lock() {
        if let Some(observer) = guard.as_ref() {
            observer(name, elapsed);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn observer_sees_stage_names_and_durations() {
        let seen: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let calls = Arc::new(AtomicUsize::new(0));
        {
            let seen = Arc::clone(&seen);
            let calls = Arc::clone(&calls);
            // The observer is process-global and sibling tests exercise
            // the pipeline concurrently; count only this test's stage.
            set_observer(move |name, _dur| {
                if name == "unit" {
                    seen.lock().unwrap().push(name);
                    calls.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        let value = observe("unit", || 41 + 1);
        assert_eq!(value, 42);
        clear_observer();
        // After clearing, stages run unobserved.
        observe("unit", || ());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(*seen.lock().unwrap(), vec!["unit"]);
    }
}
