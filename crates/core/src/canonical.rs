//! Canonical codec for [`Implementation`] — the core-crate part of the
//! workspace-wide artifact encoding rooted in [`bittrans_ir::canonical`].
//! ([`Chaining`](crate::Chaining)'s codec lives with its definition in
//! `bittrans-sched` and re-exports through this crate.)
//!
//! # Format (schema 1)
//!
//! ```text
//! bittrans-canonical implementation 1
//! name <escaped>
//! latency <cycles>
//! cycle_delta <delta>
//! cycle_ns <f64-hex>
//! execution_ns <f64-hex>
//! area <fu-hex> <registers-hex> <routing-hex> <controller-hex>
//! op_count <n>
//! stored_bits <n>
//! end implementation
//! ```
//!
//! All `f64` figures are bit-exact 16-digit hex, so a decoded
//! implementation serializes byte-identically to a freshly computed one.

use crate::Implementation;
use bittrans_alloc::canonical::{area_from_tokens, area_tokens};
use bittrans_ir::canonical::{
    escape, f64_from_hex, f64_to_hex, unescape, write_end, write_header, CodecError, Cursor,
};
use std::fmt::Write as _;

/// Schema version of the canonical [`Implementation`] encoding.
pub const IMPLEMENTATION_SCHEMA: u32 = 1;

impl Implementation {
    /// Renders the canonical, re-parseable encoding (schema
    /// [`IMPLEMENTATION_SCHEMA`]); [`Implementation::from_canonical`]
    /// inverts it exactly, bit-exact floats included.
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        write_header(&mut out, "implementation", IMPLEMENTATION_SCHEMA);
        let _ = writeln!(out, "name {}", escape(&self.name));
        let _ = writeln!(out, "latency {}", self.latency);
        let _ = writeln!(out, "cycle_delta {}", self.cycle_delta);
        let _ = writeln!(out, "cycle_ns {}", f64_to_hex(self.cycle_ns));
        let _ = writeln!(out, "execution_ns {}", f64_to_hex(self.execution_ns));
        let _ = writeln!(out, "area {}", area_tokens(&self.area));
        let _ = writeln!(out, "op_count {}", self.op_count);
        let _ = writeln!(out, "stored_bits {}", self.stored_bits);
        write_end(&mut out, "implementation");
        out
    }

    /// Parses an [`Implementation::to_canonical`] document back into the
    /// identical implementation.
    ///
    /// # Errors
    ///
    /// A [`CodecError`] for syntax, schema, or token problems.
    pub fn from_canonical(text: &str) -> Result<Implementation, CodecError> {
        let mut cur = Cursor::new(text);
        cur.header("implementation", IMPLEMENTATION_SCHEMA)?;
        let f = cur.tagged("name")?;
        if f.len() != 1 {
            return Err(cur.err("malformed name line"));
        }
        let name = unescape(f[0]).map_err(|m| cur.err(m))?;
        let f = cur.tagged("latency")?;
        if f.len() != 1 {
            return Err(cur.err("malformed latency line"));
        }
        let latency = cur.num(f[0], "latency")?;
        let f = cur.tagged("cycle_delta")?;
        if f.len() != 1 {
            return Err(cur.err("malformed cycle_delta line"));
        }
        let cycle_delta = cur.num(f[0], "cycle delta")?;
        let f = cur.tagged("cycle_ns")?;
        if f.len() != 1 {
            return Err(cur.err("malformed cycle_ns line"));
        }
        let cycle_ns = f64_from_hex(f[0]).map_err(|m| cur.err(m))?;
        let f = cur.tagged("execution_ns")?;
        if f.len() != 1 {
            return Err(cur.err("malformed execution_ns line"));
        }
        let execution_ns = f64_from_hex(f[0]).map_err(|m| cur.err(m))?;
        let f = cur.tagged("area")?;
        let area = area_from_tokens(&f).map_err(|m| cur.err(m))?;
        let f = cur.tagged("op_count")?;
        if f.len() != 1 {
            return Err(cur.err("malformed op_count line"));
        }
        let op_count = cur.num(f[0], "op count")?;
        let f = cur.tagged("stored_bits")?;
        if f.len() != 1 {
            return Err(cur.err("malformed stored_bits line"));
        }
        let stored_bits = cur.num(f[0], "stored bits")?;
        cur.end("implementation")?;
        Ok(Implementation {
            name,
            latency,
            cycle_delta,
            cycle_ns,
            execution_ns,
            area,
            op_count,
            stored_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{baseline, CompareOptions};
    use bittrans_ir::Spec;

    fn sample() -> Implementation {
        let spec = Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap();
        baseline(&spec, 3, &CompareOptions::default()).unwrap().implementation
    }

    #[test]
    fn round_trip_is_exact() {
        let imp = sample();
        let text = imp.to_canonical();
        let back = Implementation::from_canonical(&text).unwrap();
        assert_eq!(back.to_canonical(), text);
        // Byte-identity of the serialized form is the property the stage
        // cache's disk tier rests on.
        assert_eq!(serde_json::to_string(&back).unwrap(), serde_json::to_string(&imp).unwrap());
    }

    #[test]
    fn truncation_errors_cleanly() {
        let text = sample().to_canonical();
        let lines: Vec<&str> = text.lines().collect();
        for n in 0..lines.len() {
            assert!(Implementation::from_canonical(&lines[..n].join("\n")).is_err(), "{n} lines");
        }
    }

    #[test]
    fn schema_bump_is_rejected() {
        let text = sample()
            .to_canonical()
            .replace("bittrans-canonical implementation 1", "bittrans-canonical implementation 2");
        assert!(Implementation::from_canonical(&text).is_err());
    }
}
