//! Textual rendering of the paper's tables and figures.

use crate::{Comparison, Implementation, SweepPoint};
use std::fmt::Write as _;

/// Renders a Table I-style comparison of up to three implementations
/// (conventional, chained, optimized).
pub fn render_table1(columns: &[(&str, &Implementation)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18}{}",
        "",
        columns.iter().map(|(n, _)| format!("{n:>16}")).collect::<String>()
    );
    let row = |label: &str, f: &dyn Fn(&Implementation) -> String| {
        let mut line = format!("{label:<18}");
        for (_, imp) in columns {
            let _ = write!(line, "{:>16}", f(imp));
        }
        line
    };
    let _ = writeln!(out, "{}", row("Latency", &|i| i.latency.to_string()));
    let _ = writeln!(out, "{}", row("Cycle (δ)", &|i| i.cycle_delta.to_string()));
    let _ = writeln!(out, "{}", row("Cycle (ns)", &|i| format!("{:.2}", i.cycle_ns)));
    let _ = writeln!(out, "{}", row("Execution (ns)", &|i| format!("{:.2}", i.execution_ns)));
    // Normalise (negative) near-zero so empty cost categories print as "0".
    let nz = |x: f64| if x.abs() < 0.5 { 0.0 } else { x };
    let _ = writeln!(out, "{}", row("FU (gates)", &|i| format!("{:.0}", nz(i.area.fu))));
    let _ = writeln!(out, "{}", row("Registers", &|i| format!("{:.0}", nz(i.area.registers))));
    let _ = writeln!(out, "{}", row("Routing", &|i| format!("{:.0}", nz(i.area.routing))));
    let _ = writeln!(out, "{}", row("Controller", &|i| format!("{:.0}", nz(i.area.controller))));
    let _ = writeln!(out, "{}", row("Total (gates)", &|i| format!("{:.0}", nz(i.area.total()))));
    out
}

/// One labelled row of a Table II/III-style report.
#[derive(Clone, Debug, serde::Serialize)]
pub struct BenchRow {
    /// Benchmark name.
    pub bench: String,
    /// Latency λ.
    pub latency: u32,
    /// Comparison at that latency.
    pub comparison: Comparison,
}

/// Renders Table II/III rows: cycle durations, saved %, area delta %.
pub fn render_bench_table(title: &str, rows: &[BenchRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<12}{:>4}{:>14}{:>14}{:>10}{:>12}{:>10}",
        "bench", "λ", "orig (ns)", "opt (ns)", "saved", "area Δ", "ops Δ"
    );
    for r in rows {
        let c = &r.comparison;
        let _ = writeln!(
            out,
            "{:<12}{:>4}{:>14.2}{:>14.2}{:>9.1}%{:>11.1}%{:>9.0}%",
            r.bench,
            r.latency,
            c.original.cycle_ns,
            c.optimized.cycle_ns,
            c.cycle_saved_pct(),
            c.area_delta_pct(),
            c.op_growth_pct(),
        );
    }
    out
}

/// Renders the Fig. 4 series as aligned columns (latency, original ns,
/// optimized ns).
pub fn render_sweep(title: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:>4}{:>14}{:>14}", "λ", "orig (ns)", "opt (ns)");
    for p in points {
        let _ = writeln!(out, "{:>4}{:>14.2}{:>14.2}", p.latency, p.original_ns, p.optimized_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compare, CompareOptions};
    use bittrans_ir::Spec;

    fn spec() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn table1_renders_columns() {
        let cmp = compare(&spec(), 3, &CompareOptions::default()).unwrap();
        let text = render_table1(&[("Original", &cmp.original), ("Optimized", &cmp.optimized)]);
        assert!(text.contains("Latency"));
        assert!(text.contains("Total (gates)"));
        assert!(text.contains("Original"));
    }

    #[test]
    fn bench_table_renders_rows() {
        let cmp = compare(&spec(), 3, &CompareOptions::default()).unwrap();
        let rows = vec![BenchRow { bench: "ex".into(), latency: 3, comparison: cmp }];
        let text = render_bench_table("Table II", &rows);
        assert!(text.contains("Table II"));
        assert!(text.contains("ex"));
        assert!(text.contains('%'));
    }

    #[test]
    fn sweep_renders_points() {
        let points = crate::latency_sweep(&spec(), 2..=4, &CompareOptions::default()).unwrap();
        let text = render_sweep("Fig 4", &points);
        assert!(text.lines().count() >= points.len() + 2);
    }
}
