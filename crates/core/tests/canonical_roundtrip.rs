//! Cross-crate property test of the canonical artifact codec: over
//! randomly generated specifications, `from_canonical ∘ to_canonical`
//! is the identity for every staged-pipeline artifact, and a pipeline
//! stage fed a *decoded* artifact produces byte-identical results to one
//! fed the freshly computed original. That byte-identity is the
//! invariant the engine's disk-backed stage cache rests on: a stage
//! resumed from disk must be indistinguishable from one recomputed.

use bittrans_benchmarks::{random_spec, RandomSpecOptions};
use bittrans_core::{
    stage_allocate, stage_extract, stage_fragment, stage_schedule_conventional,
    stage_schedule_fragments, stage_time, Chaining, CompareOptions, Datapath, Fragmented,
    Implementation, Schedule,
};
use bittrans_ir::Spec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn staged_artifacts_round_trip(
        seed in 0u64..1_000_000,
        ops in 3usize..14,
        inputs in 2usize..6,
        latency in 2u32..5,
    ) {
        let spec = random_spec(
            seed,
            &RandomSpecOptions { ops, inputs, ..RandomSpecOptions::default() },
        );

        // Spec: decoded value equal, encoded text a fixpoint.
        let text = spec.to_canonical();
        let decoded = Spec::from_canonical(&text).expect("canonical spec parses");
        prop_assert_eq!(&decoded, &spec);
        prop_assert_eq!(decoded.to_canonical(), text);

        // The extraction stage's output is a spec too.
        let kernel = stage_extract(&spec).expect("extraction succeeds");
        let ktext = kernel.to_canonical();
        let kdec = Spec::from_canonical(&ktext).expect("canonical kernel parses");
        prop_assert_eq!(&kdec, &kernel);

        // Conventional-path artifacts, when λ is feasible.
        let conventional = stage_schedule_conventional(&spec, latency, Chaining::ComponentSum, true);
        if let Ok(sched) = conventional {
            let stext = sched.to_canonical();
            let sdec = Schedule::from_canonical(&stext).expect("canonical schedule parses");
            prop_assert_eq!(&sdec, &sched);

            // Datapath: re-encode fixpoint, then the timing stage fed the
            // decoded schedule+datapath must yield a byte-identical
            // implementation to one fed the originals.
            let options = CompareOptions::default();
            let dp = stage_allocate(&spec, &sched, options.adder_arch);
            let dtext = dp.to_canonical();
            let ddec = Datapath::from_canonical(&dtext).expect("canonical datapath parses");
            prop_assert_eq!(ddec.to_canonical(), dtext);
            let fresh = stage_time("prop", &spec, &sched, &dp, &options.timing);
            let reheated = stage_time("prop", &spec, &sdec, &ddec, &options.timing);
            prop_assert_eq!(reheated.to_canonical(), fresh.to_canonical());

            let itext = fresh.to_canonical();
            let idec =
                Implementation::from_canonical(&itext).expect("canonical implementation parses");
            prop_assert_eq!(idec.to_canonical(), itext);
        }

        // Fragment-path artifacts, when λ is feasible for the kernel.
        if let Ok(frag) = stage_fragment(&kernel, latency) {
            let ftext = frag.to_canonical();
            let fdec = Fragmented::from_canonical(&ftext).expect("canonical fragmented parses");
            prop_assert_eq!(fdec.to_canonical(), ftext.clone());
            // The fragment scheduler fed the decoded artifact agrees with
            // one fed the original, down to the encoded bytes.
            match (stage_schedule_fragments(&frag, true), stage_schedule_fragments(&fdec, true)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.to_canonical(), b.to_canonical());
                    prop_assert_eq!(&a, &b);
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "feasibility disagrees between fresh and decoded: {:?} vs {:?}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
}

#[test]
fn chaining_round_trips_through_its_codec() {
    for mode in [Chaining::Disabled, Chaining::ComponentSum, Chaining::BitLevel] {
        let text = mode.to_canonical();
        assert_eq!(Chaining::from_canonical(&text).expect("chaining parses"), mode);
    }
}
