//! The composable design-space-exploration front end: a [`Study`] spans a
//! typed axis grid — specifications × latencies × adder architectures ×
//! balancing × verification budgets — and runs every cell through an
//! [`Engine`]'s cached worker pool.
//!
//! Every result in the paper is a sweep over one or two of these axes:
//! Fig. 4 is `latencies`, Tables II/III are `specs × latencies`, the
//! closing remarks are `adder_archs`, §3.3's design choice is `balance`.
//! Instead of hand-rolling one loop per experiment, callers describe the
//! grid once and get back a [`StudyReport`] with one labelled cell per
//! coordinate:
//!
//! ```
//! use bittrans_engine::{Engine, Study};
//! use bittrans_ir::Spec;
//! use bittrans_rtl::AdderArch;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = Spec::parse(
//!     "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
//!       C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
//! )?;
//! let engine = Engine::default();
//! let report = Study::single(spec)
//!     .latencies(2..=4)
//!     .adder_archs([AdderArch::RippleCarry, AdderArch::CarryLookahead])
//!     .verify_vectors([0])
//!     .run(&engine);
//! assert_eq!(report.cells.len(), 3 * 2);
//! assert!(report.successes().count() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! Axis values that expand to the same [`JobKey`] (duplicate specs, a
//! repeated latency) are submitted once; the duplicate cells share the
//! computed result, so a grid is never larger than its distinct content.

use crate::key::JobKey;
use crate::report::{StudyCell, StudyReport};
use crate::{Engine, Job};
use bittrans_core::{CompareOptions, Comparison};
use bittrans_ir::Spec;
use bittrans_rtl::AdderArch;
use std::collections::HashMap;

/// A declarative design-space-exploration grid over the comparison
/// pipeline. Build with [`Study::over`] / [`Study::single`], add axes with
/// the chained setters, execute with [`Study::run`].
///
/// Unset axes collapse to a single point taken from the base options
/// ([`CompareOptions::default`] unless [`Study::base_options`] replaces
/// them); the latency axis defaults to the paper's motivational λ = 3.
#[derive(Clone, Debug)]
pub struct Study {
    specs: Vec<Spec>,
    latencies: Vec<u32>,
    base: CompareOptions,
    adder_archs: Option<Vec<AdderArch>>,
    balance: Option<Vec<bool>>,
    verify_vectors: Option<Vec<usize>>,
}

impl Study {
    /// A study over several specifications.
    pub fn over(specs: impl IntoIterator<Item = Spec>) -> Self {
        Study {
            specs: specs.into_iter().collect(),
            latencies: vec![3],
            base: CompareOptions::default(),
            adder_archs: None,
            balance: None,
            verify_vectors: None,
        }
    }

    /// A study over one specification.
    pub fn single(spec: Spec) -> Self {
        Self::over([spec])
    }

    /// Replaces the latency axis (λ values, in the order given).
    pub fn latencies(mut self, latencies: impl IntoIterator<Item = u32>) -> Self {
        self.latencies = latencies.into_iter().collect();
        self
    }

    /// Replaces the adder-architecture axis.
    pub fn adder_archs(mut self, archs: impl IntoIterator<Item = AdderArch>) -> Self {
        self.adder_archs = Some(archs.into_iter().collect());
        self
    }

    /// Replaces the balancing axis. [`Study::balance_both`] is shorthand
    /// for the full ablation `[true, false]`.
    pub fn balance(mut self, balance: impl IntoIterator<Item = bool>) -> Self {
        self.balance = Some(balance.into_iter().collect());
        self
    }

    /// Spans balancing on × off (§3.3's design-choice ablation).
    pub fn balance_both(self) -> Self {
        self.balance([true, false])
    }

    /// Replaces the verification-budget axis (random vectors per cell; 0
    /// disables the equivalence check).
    pub fn verify_vectors(mut self, vectors: impl IntoIterator<Item = usize>) -> Self {
        self.verify_vectors = Some(vectors.into_iter().collect());
        self
    }

    /// Replaces the base options that unset axes collapse to (and the
    /// timing model, which is not an axis).
    pub fn base_options(mut self, options: CompareOptions) -> Self {
        self.base = options;
        self
    }

    /// The number of grid cells this study expands to.
    pub fn len(&self) -> usize {
        self.specs.len()
            * self.latencies.len()
            * self.adder_archs.as_ref().map_or(1, Vec::len)
            * self.balance.as_ref().map_or(1, Vec::len)
            * self.verify_vectors.as_ref().map_or(1, Vec::len)
    }

    /// Whether the grid is empty (some axis has no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the axis grid into one [`Job`] per cell, in grid order
    /// (specs outermost, then latency, adder, balance, verification).
    ///
    /// The returned list is **not** deduplicated; [`Study::run`] submits
    /// each distinct [`JobKey`] once and fans the shared result back out to
    /// every cell that produced it.
    ///
    /// # Panics
    ///
    /// If an axis value fails [`CompareOptions::builder`]'s validation
    /// (e.g. a `verify_vectors` entry beyond
    /// [`bittrans_core::MAX_VERIFY_VECTORS`], or base options carrying a
    /// non-physical timing model). User-facing front ends pre-validate
    /// through the builder, so this only fires on programmer error.
    pub fn jobs(&self) -> Vec<Job> {
        self.validate();
        let mut jobs = Vec::with_capacity(self.len());
        self.for_each_cell(|job| jobs.push(job));
        jobs
    }

    /// Checks every axis value against the options builder's ranges
    /// without panicking: the first rejected value's [`OptionsError`]
    /// comes back as `Err`.
    ///
    /// [`Study::run`] and [`Study::jobs`] enforce the same invariant by
    /// panicking (programmer error in code-built grids); front ends that
    /// assemble a grid from *untrusted* input — the `serve` request
    /// handler above all, which must never bring a worker thread down on a
    /// client's bad request — call this first and turn the error into a
    /// protocol reply.
    ///
    /// [`OptionsError`]: bittrans_core::OptionsError
    pub fn check(&self) -> Result<(), bittrans_core::OptionsError> {
        let check = |options: CompareOptions| {
            CompareOptions::builder()
                .adder_arch(options.adder_arch)
                .timing(options.timing)
                .balance(options.balance)
                .verify_vectors(options.verify_vectors)
                .build()
                .map(|_| ())
        };
        check(self.base)?;
        for &verify_vectors in self.verify_vectors.iter().flatten() {
            check(CompareOptions { verify_vectors, ..self.base })?;
        }
        Ok(())
    }

    /// Checks every axis value against the options builder's ranges, so
    /// the validated-construction invariant holds for grids as well as for
    /// options assembled one at a time.
    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid study axis value: {e}");
        }
    }

    fn for_each_cell(&self, mut visit: impl FnMut(Job)) {
        let adder_axis = self.adder_archs.clone().unwrap_or_else(|| vec![self.base.adder_arch]);
        let balance_axis = self.balance.clone().unwrap_or_else(|| vec![self.base.balance]);
        let verify_axis =
            self.verify_vectors.clone().unwrap_or_else(|| vec![self.base.verify_vectors]);
        for spec in &self.specs {
            for &latency in &self.latencies {
                for &adder_arch in &adder_axis {
                    for &balance in &balance_axis {
                        for &verify_vectors in &verify_axis {
                            let options = CompareOptions {
                                adder_arch,
                                balance,
                                verify_vectors,
                                timing: self.base.timing,
                            };
                            visit(Job::with_options(spec.clone(), latency, options));
                        }
                    }
                }
            }
        }
    }

    /// Expands the grid, deduplicates it by [`JobKey`], runs the distinct
    /// jobs on `engine`'s worker pool, and labels every cell with its axis
    /// coordinates.
    ///
    /// Cells are returned in grid order. Infeasible coordinates (e.g. a
    /// latency the fragmenter rejects) surface as per-cell errors, exactly
    /// like [`Engine::run`] outcomes — a partly infeasible grid is not a
    /// failed study.
    ///
    /// # Panics
    ///
    /// On axis values the options builder rejects; see [`Study::jobs`].
    pub fn run(&self, engine: &Engine) -> StudyReport {
        let grid = self.dedup();
        let batch = engine.run(grid.distinct);
        let index_of = grid.index_of;
        let cells = assemble(grid.cells, grid.keys, |key| {
            let outcome = &batch.outcomes[index_of[&key]];
            (std::sync::Arc::clone(&outcome.result), outcome.from_cache)
        });
        StudyReport { cells, stats: batch.stats }
    }

    /// The grid's distinct jobs, in first-occurrence grid order — what a
    /// [`Study::run`] actually submits to the engine, and what a sharded
    /// run ([`crate::shard`]) partitions across worker processes.
    ///
    /// # Panics
    ///
    /// On axis values the options builder rejects; see [`Study::jobs`].
    pub fn distinct_jobs(&self) -> Vec<Job> {
        self.dedup().distinct
    }

    /// Expands and deduplicates the grid in one pass.
    pub(crate) fn dedup(&self) -> DedupedGrid {
        let cells = self.jobs();
        // Deduplicate by content key; the engine would compute duplicates
        // only once anyway, but submitting them would inflate the batch's
        // hit statistics with grid-shape artifacts.
        let mut distinct: Vec<Job> = Vec::with_capacity(cells.len());
        let mut index_of: HashMap<JobKey, usize> = HashMap::with_capacity(cells.len());
        let keys: Vec<JobKey> = cells
            .iter()
            .map(|job| {
                let key = job.key();
                index_of.entry(key).or_insert_with(|| {
                    distinct.push(job.clone());
                    distinct.len() - 1
                });
                key
            })
            .collect();
        DedupedGrid { cells, keys, distinct, index_of }
    }
}

/// A study grid after [`Study::dedup`]: every cell with its key, plus the
/// distinct jobs (first-occurrence grid order) and the key → distinct-index
/// map.
pub(crate) struct DedupedGrid {
    /// One job per grid cell, in grid order (with duplicates).
    pub cells: Vec<Job>,
    /// `cells[i]`'s content key.
    pub keys: Vec<JobKey>,
    /// The distinct jobs, in first-occurrence order.
    pub distinct: Vec<Job>,
    /// Key → index into `distinct`.
    pub index_of: HashMap<JobKey, usize>,
}

/// Labels every grid cell with its axis coordinates and result. `resolve`
/// maps a key to its shared result plus whether it was resident before the
/// run started; in-grid duplicates are additionally marked `from_cache`
/// (only the first cell of a key did pipeline work).
pub(crate) fn assemble(
    cells: Vec<Job>,
    keys: Vec<JobKey>,
    mut resolve: impl FnMut(JobKey) -> (std::sync::Arc<crate::job::JobResult>, bool),
) -> Vec<StudyCell> {
    let mut first_seen: std::collections::HashSet<JobKey> =
        std::collections::HashSet::with_capacity(cells.len());
    cells
        .into_iter()
        .zip(keys)
        .map(|(job, key)| {
            let (result, cached) = resolve(key);
            let duplicate = !first_seen.insert(key);
            StudyCell {
                spec: job.spec.name().to_string(),
                latency: job.latency,
                adder_arch: job.options.adder_arch,
                balance: job.options.balance,
                verify_vectors: job.options.verify_vectors,
                key,
                from_cache: cached || duplicate,
                result,
            }
        })
        .collect()
}

/// Convenience for report post-processing: the comparison of a successful
/// cell result.
pub(crate) fn cell_comparison(cell: &StudyCell) -> Option<&Comparison> {
    cell.result.as_ref().as_ref().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn unset_axes_collapse_to_base_options() {
        let study = Study::single(three_adds());
        assert_eq!(study.len(), 1);
        let jobs = study.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].latency, 3);
        assert_eq!(jobs[0].options, CompareOptions::default());
    }

    #[test]
    fn grid_expands_in_axis_order() {
        let study = Study::single(three_adds())
            .latencies([2, 3])
            .adder_archs([AdderArch::RippleCarry, AdderArch::CarryLookahead])
            .balance_both();
        assert_eq!(study.len(), 2 * 2 * 2);
        let jobs = study.jobs();
        // Latency is the outer axis, balance the innermost.
        assert_eq!(jobs[0].latency, 2);
        assert!(jobs[0].options.balance);
        assert!(!jobs[1].options.balance);
        assert_eq!(jobs[1].options.adder_arch, AdderArch::RippleCarry);
        assert_eq!(jobs[2].options.adder_arch, AdderArch::CarryLookahead);
        assert_eq!(jobs[4].latency, 3);
    }

    #[test]
    #[should_panic(expected = "invalid study axis value")]
    fn out_of_range_axis_values_panic() {
        Study::single(three_adds()).verify_vectors([bittrans_core::MAX_VERIFY_VECTORS + 1]).jobs();
    }

    #[test]
    fn empty_axis_means_empty_study() {
        let study = Study::single(three_adds()).latencies([]);
        assert!(study.is_empty());
        let report = study.run(&Engine::default());
        assert!(report.cells.is_empty());
        assert_eq!(report.stats.jobs, 0);
    }

    #[test]
    fn duplicate_coordinates_are_submitted_once() {
        let spec = three_adds();
        let engine = Engine::default();
        let report = Study::over([spec.clone(), spec]).latencies([3, 3]).run(&engine);
        assert_eq!(report.cells.len(), 4);
        // One distinct job: the batch saw exactly one submission.
        assert_eq!(report.stats.jobs, 1);
        assert_eq!(report.stats.cache_misses, 1);
        let first = &report.cells[0].result;
        assert!(report.cells.iter().all(|c| std::sync::Arc::ptr_eq(&c.result, first)));
        // Only the first cell did pipeline work; its in-grid duplicates are
        // marked from_cache even on a cold engine.
        assert!(!report.cells[0].from_cache);
        assert!(report.cells[1..].iter().all(|c| c.from_cache));
    }
}
