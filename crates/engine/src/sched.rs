//! The shared fair scheduler behind the multi-tenant `serve` front end: a
//! **persistent** worker pool fed by a per-request round-robin queue.
//!
//! [`crate::executor::map_ordered`] spins a pool up for one batch and
//! tears it down when the batch completes — the right shape for a CLI
//! invocation, where one batch owns the machine. A long-running service
//! answers many requests at once, and a scoped one-shot pool per request
//! would either serialize them (the old global run lock) or oversubscribe
//! every core by the number of concurrent clients. This module hosts the
//! generalization: one pool of [`Scheduler::width`] threads for the whole
//! process, with work submitted as *requests* (one [`Scheduler::submit`]
//! call, many boxed task closures) and interleaved **fairly** — workers
//! take one task from the request at the head of the queue, then rotate
//! that request to the back, so a 2-cell study admitted behind a
//! 10,000-cell one waits for at most a handful of task grants, never for
//! the whole grid.
//!
//! Determinism is preserved the same way the one-shot pool preserves it:
//! the scheduler owns *when* a task runs, never *where its result goes* —
//! submitters tag tasks with their own slot indices and reassemble
//! results in submission order, so a request's output is independent of
//! pool width and interleaving.
//!
//! A panicking task is caught ([`std::panic::catch_unwind`]) so the
//! worker thread — which outlives any one request — survives; the count
//! is surfaced in [`SchedStats::panicked_tasks`] and the submitting
//! request observes its closed result channel. Every queue transition
//! emits a trace event (`sched.enqueue` / `sched.dispatch` /
//! `sched.complete`), and [`Scheduler::stats`] snapshots the gauges the
//! serve front end reports under `{"stats": true}`.

use crate::stats::SchedStats;
use crate::trace;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// One unit of scheduled work. Results travel through channels the
/// submitter owns; the scheduler only runs the closure.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// One queued task plus the instant it joined the queue (the wait gauge).
struct QueuedTask {
    run: Task,
    enqueued: Instant,
}

/// The tasks of one request still waiting for a worker.
struct RequestQueue {
    ticket: u64,
    /// Tasks of this request not yet *finished* (queued or running);
    /// shared with the workers so request completion is observable.
    outstanding: Arc<AtomicU64>,
    tasks: VecDeque<QueuedTask>,
}

/// Queue state under the scheduler's one mutex. The invariant: every
/// [`RequestQueue`] in `queues` has at least one task — a drained queue
/// is removed immediately, so the head of the deque is always runnable.
struct State {
    queues: VecDeque<RequestQueue>,
    shutdown: bool,
}

/// Everything the worker threads share.
struct Inner {
    state: Mutex<State>,
    available: Condvar,
    /// Tasks enqueued and not yet handed to a worker.
    queue_depth: AtomicU64,
    /// Requests with at least one unfinished task.
    active_requests: AtomicU64,
    /// Requests ever submitted (ticket allocator).
    admitted_requests: AtomicU64,
    /// Requests whose every task has finished.
    completed_requests: AtomicU64,
    /// Tasks handed to a worker.
    dispatched_tasks: AtomicU64,
    /// Tasks that finished (including panicked ones).
    completed_tasks: AtomicU64,
    /// Tasks whose closure panicked (caught; the worker survived).
    panicked_tasks: AtomicU64,
    /// Cumulative enqueue→dispatch wait across dispatched tasks.
    wait_ns: AtomicU64,
}

/// Recover a poisoned guard: the queue is a list of boxed closures and
/// counters, valid at every step, and workers catch task panics anyway —
/// a poisoned mutex here means an internal bug, not corrupt state.
fn relock<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// The persistent fair worker pool. Create once per process
/// ([`Scheduler::new`]), submit each request's tasks with
/// [`Scheduler::submit`], and drop to stop (workers finish their current
/// task; queued tasks of still-pending requests are abandoned, so drop
/// only after every submitter has collected its results).
pub struct Scheduler {
    inner: Arc<Inner>,
    width: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").field("width", &self.width).finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Starts a pool of `width.max(1)` worker threads, idle until the
    /// first [`Scheduler::submit`].
    pub fn new(width: usize) -> Scheduler {
        let width = width.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queues: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
            queue_depth: AtomicU64::new(0),
            active_requests: AtomicU64::new(0),
            admitted_requests: AtomicU64::new(0),
            completed_requests: AtomicU64::new(0),
            dispatched_tasks: AtomicU64::new(0),
            completed_tasks: AtomicU64::new(0),
            panicked_tasks: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
        });
        let workers = (0..width)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Scheduler { inner, width, workers }
    }

    /// Worker threads in the pool.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Enqueues one request's tasks as a new fairness unit and returns
    /// its ticket. The call never blocks on the workers: tasks run as the
    /// round-robin reaches them, and the submitter observes completion
    /// through whatever channels its closures capture. An empty task list
    /// is admitted and completed on the spot.
    pub fn submit(&self, tasks: Vec<Task>) -> u64 {
        let ticket = self.inner.admitted_requests.fetch_add(1, Ordering::SeqCst) + 1;
        trace::event("sched.enqueue", |a| {
            a.num("ticket", ticket).num("tasks", tasks.len() as u64);
        });
        if tasks.is_empty() {
            self.inner.completed_requests.fetch_add(1, Ordering::SeqCst);
            return ticket;
        }
        let count = tasks.len() as u64;
        let enqueued = Instant::now();
        let queue = RequestQueue {
            ticket,
            outstanding: Arc::new(AtomicU64::new(count)),
            tasks: tasks.into_iter().map(|run| QueuedTask { run, enqueued }).collect(),
        };
        self.inner.queue_depth.fetch_add(count, Ordering::SeqCst);
        self.inner.active_requests.fetch_add(1, Ordering::SeqCst);
        {
            let mut state = relock(self.inner.state.lock());
            state.queues.push_back(queue);
        }
        // Wake every idle worker: one new request may carry many tasks.
        self.inner.available.notify_all();
        ticket
    }

    /// A snapshot of the scheduler gauges (the `{"stats": true}` serve
    /// introspection payload).
    pub fn stats(&self) -> SchedStats {
        let inner = &self.inner;
        SchedStats {
            workers: self.width,
            queue_depth: inner.queue_depth.load(Ordering::SeqCst),
            active_requests: inner.active_requests.load(Ordering::SeqCst),
            admitted_requests: inner.admitted_requests.load(Ordering::SeqCst),
            completed_requests: inner.completed_requests.load(Ordering::SeqCst),
            dispatched_tasks: inner.dispatched_tasks.load(Ordering::SeqCst),
            completed_tasks: inner.completed_tasks.load(Ordering::SeqCst),
            panicked_tasks: inner.panicked_tasks.load(Ordering::SeqCst),
            total_wait: std::time::Duration::from_nanos(inner.wait_ns.load(Ordering::SeqCst)),
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut state = relock(self.inner.state.lock());
            state.shutdown = true;
        }
        self.inner.available.notify_all();
        let me = std::thread::current().id();
        for worker in self.workers.drain(..) {
            // A task closure can be the last owner of the structure that
            // holds this scheduler (serve's tasks capture the server
            // state), in which case Drop runs *on a worker thread*.
            // Joining that thread would self-deadlock (EDEADLK), so the
            // current thread's handle is detached instead: shutdown is
            // already set, and the worker exits on its own right after
            // this destructor finishes.
            if worker.thread().id() != me {
                let _ = worker.join();
            }
        }
    }
}

/// One worker: take a task from the request at the head of the queue,
/// rotate that request to the back, run the task, repeat. The rotation is
/// the whole fairness policy — each pass over the queue grants every
/// active request exactly one task slot, so a request's backlog delays
/// its *own* later tasks, never another request's first one.
fn worker_loop(inner: &Inner) {
    loop {
        let (task, ticket, outstanding) = {
            let mut state = relock(inner.state.lock());
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(mut queue) = state.queues.pop_front() {
                    let task = queue.tasks.pop_front().expect("queued requests are non-empty");
                    let ticket = queue.ticket;
                    let outstanding = Arc::clone(&queue.outstanding);
                    if !queue.tasks.is_empty() {
                        state.queues.push_back(queue);
                    }
                    break (task, ticket, outstanding);
                }
                state = relock(inner.available.wait(state));
            }
        };
        inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
        inner.dispatched_tasks.fetch_add(1, Ordering::SeqCst);
        let wait = task.enqueued.elapsed();
        inner
            .wait_ns
            .fetch_add(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX), Ordering::SeqCst);
        trace::event("sched.dispatch", |a| {
            a.num("ticket", ticket)
                .num("wait_ns", u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
        });
        let outcome = catch_unwind(AssertUnwindSafe(task.run));
        if outcome.is_err() {
            inner.panicked_tasks.fetch_add(1, Ordering::SeqCst);
        }
        inner.completed_tasks.fetch_add(1, Ordering::SeqCst);
        trace::event("sched.complete", |a| {
            a.num("ticket", ticket).flag("ok", outcome.is_ok());
        });
        if outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            inner.active_requests.fetch_sub(1, Ordering::SeqCst);
            inner.completed_requests.fetch_add(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Submits `tasks` closures that each send `(slot, value)` back, and
    /// collects the results in slot order.
    fn run_request(sched: &Scheduler, values: Vec<u64>) -> Vec<u64> {
        let (tx, rx) = mpsc::channel();
        let count = values.len();
        let tasks: Vec<Task> = values
            .into_iter()
            .enumerate()
            .map(|(slot, value)| {
                let tx = tx.clone();
                Box::new(move || {
                    let _ = tx.send((slot, value * value));
                }) as Task
            })
            .collect();
        drop(tx);
        sched.submit(tasks);
        let mut slots = vec![0u64; count];
        for _ in 0..count {
            let (slot, value) = rx.recv().expect("scheduled task completed");
            slots[slot] = value;
        }
        slots
    }

    /// Gauge updates land *after* a task's closure has sent its result,
    /// so a submitter that just collected everything may be a hair ahead
    /// of the counters: wait for the bookkeeping to settle.
    fn await_quiesce(sched: &Scheduler, completed_requests: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sched.stats().completed_requests < completed_requests {
            assert!(std::time::Instant::now() < deadline, "scheduler gauges never settled");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn results_slot_back_in_submission_order() {
        for width in [1, 2, 8] {
            let sched = Scheduler::new(width);
            let got = run_request(&sched, (0..40).collect());
            let expect: Vec<u64> = (0..40).map(|x| x * x).collect();
            assert_eq!(got, expect, "width = {width}");
        }
    }

    #[test]
    fn concurrent_requests_all_complete() {
        let sched = Arc::new(Scheduler::new(3));
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || run_request(&sched, (r * 100..r * 100 + 25).collect()))
            })
            .collect();
        for (r, handle) in handles.into_iter().enumerate() {
            let got = handle.join().expect("request thread");
            let expect: Vec<u64> = (r as u64 * 100..r as u64 * 100 + 25).map(|x| x * x).collect();
            assert_eq!(got, expect);
        }
        await_quiesce(&sched, 4);
        let stats = sched.stats();
        assert_eq!(stats.admitted_requests, 4);
        assert_eq!(stats.completed_requests, 4);
        assert_eq!(stats.active_requests, 0);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.completed_tasks, 100);
        assert_eq!(stats.panicked_tasks, 0);
    }

    #[test]
    fn small_request_overtakes_a_large_backlog() {
        // One worker, so dispatch order is fully deterministic: the large
        // request is rotated to the back after every grant, and the small
        // request's two tasks are interleaved — it must finish while most
        // of the large backlog is still queued.
        let sched = Scheduler::new(1);
        let (tx, rx) = mpsc::channel::<&'static str>();
        let gate = Arc::new(std::sync::Barrier::new(2));

        // Task 0 of the large request blocks until the test has enqueued
        // the small request, so the rotation provably happens after both
        // are queued.
        let mut large: Vec<Task> = Vec::new();
        {
            let tx = tx.clone();
            let gate = Arc::clone(&gate);
            large.push(Box::new(move || {
                gate.wait();
                let _ = tx.send("large");
            }));
        }
        for _ in 0..60 {
            let tx = tx.clone();
            large.push(Box::new(move || {
                std::thread::sleep(Duration::from_millis(2));
                let _ = tx.send("large");
            }));
        }
        sched.submit(large);

        let small: Vec<Task> = (0..2)
            .map(|_| {
                let tx = tx.clone();
                Box::new(move || {
                    let _ = tx.send("small");
                }) as Task
            })
            .collect();
        sched.submit(small);
        gate.wait();
        drop(tx);

        let order: Vec<&str> = rx.iter().collect();
        assert_eq!(order.len(), 63);
        let last_small = order.iter().rposition(|&who| who == "small").unwrap();
        assert!(
            last_small <= 4,
            "small request starved: finished at completion index {last_small} of {order:?}"
        );
    }

    #[test]
    fn a_panicking_task_is_caught_and_counted() {
        let sched = Scheduler::new(2);
        let (tx, rx) = mpsc::channel();
        let mut tasks: Vec<Task> = vec![Box::new(|| panic!("task boom"))];
        for i in 0..4u64 {
            let tx = tx.clone();
            tasks.push(Box::new(move || {
                let _ = tx.send(i);
            }));
        }
        drop(tx);
        sched.submit(tasks);
        // The surviving tasks all complete despite the sibling panic...
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        // ...and the pool itself is still serviceable afterwards.
        assert_eq!(run_request(&sched, vec![7]), vec![49]);
        await_quiesce(&sched, 2);
        let stats = sched.stats();
        assert_eq!(stats.panicked_tasks, 1);
        assert_eq!(stats.completed_requests, 2);
        assert_eq!(stats.active_requests, 0);
    }

    #[test]
    fn scheduler_dropped_on_its_own_worker_detaches_instead_of_self_joining() {
        /// Declared *after* the scheduler, so it drops second: it reports
        /// whether `Scheduler::drop` panicked (unwinding is still in
        /// progress while the remaining fields drop).
        struct Signal(mpsc::Sender<bool>);
        impl Drop for Signal {
            fn drop(&mut self) {
                let _ = self.0.send(std::thread::panicking());
            }
        }
        /// Mirrors serve's server state: tasks capture an `Arc` of the
        /// structure that owns the scheduler, so a worker can end up the
        /// last owner and run the scheduler's destructor itself.
        struct Owner {
            sched: Scheduler,
            _signal: Signal,
        }

        let (tx, rx) = mpsc::channel();
        let owner = Arc::new(Owner { sched: Scheduler::new(2), _signal: Signal(tx) });
        {
            let owner_for_task = Arc::clone(&owner);
            owner.sched.submit(vec![Box::new(move || {
                // Hold on until the test thread has released its clone,
                // so this closure provably owns the last reference when
                // it returns — the whole Owner, scheduler included, then
                // drops here on a worker thread.
                let deadline = Instant::now() + Duration::from_secs(5);
                while Arc::strong_count(&owner_for_task) > 1 {
                    assert!(Instant::now() < deadline, "test thread never released its Arc");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }) as Task]);
        }
        drop(owner);
        let panicked = rx.recv_timeout(Duration::from_secs(10)).expect("owner was dropped");
        assert!(!panicked, "Scheduler::drop panicked when run on its own worker thread");
    }

    #[test]
    fn empty_requests_complete_immediately() {
        let sched = Scheduler::new(2);
        let ticket = sched.submit(Vec::new());
        assert_eq!(ticket, 1);
        let stats = sched.stats();
        assert_eq!(stats.admitted_requests, 1);
        assert_eq!(stats.completed_requests, 1);
        assert_eq!(stats.active_requests, 0);
    }

    #[test]
    fn wait_gauge_accumulates() {
        let sched = Scheduler::new(1);
        run_request(&sched, vec![1, 2, 3]);
        let stats = sched.stats();
        assert_eq!(stats.dispatched_tasks, 3);
        assert!(stats.total_wait >= Duration::ZERO);
    }
}
