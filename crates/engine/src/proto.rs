//! The `serve` wire codec shared by every client of the study service:
//! the CLI `client` subcommand, the remote shard coordinator
//! ([`crate::shard`]'s `Remote` transport), and the integration suites.
//!
//! The protocol itself lives in [`crate::serve`]: one JSON request per
//! line, one response line per request. This module owns the *client
//! side* of that framing, and its one hard rule is that **every read has
//! a deadline**. A stalled or half-dead endpoint must surface as a
//! [`std::io::ErrorKind::TimedOut`] error the caller can retry or fall
//! back from — never as a hung caller. (Before this module existed the
//! `client` subcommand read responses with no deadline, so a server that
//! accepted and then went silent hung it forever.)

use crate::stats::EngineStats;
use crate::trace;
use serde_json::Value;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Default deadline for connecting to an endpoint and for one whole
/// response read. A study computes server-side before its response line
/// appears, so this is generous; interactive callers can lower it (the
/// CLI's `--timeout` flag).
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

/// Cap on one buffered response line. Reports scale with the grid, so
/// this sits far above any real study's report; a longer line is a
/// runaway or hostile endpoint, and buffering it unbounded would let one
/// endpoint exhaust the caller's memory.
pub const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// Time left until `deadline`, `None` once it has passed.
fn remaining(deadline: Instant) -> Option<Duration> {
    let left = deadline.saturating_duration_since(Instant::now());
    (!left.is_zero()).then_some(left)
}

/// One connection to a `serve` endpoint: line-oriented requests with
/// deadlines on connect, write and the **whole** of every response read
/// — an endpoint trickling bytes cannot reset its way past the budget.
pub struct LineClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    timeout: Duration,
}

impl LineClient {
    /// Connects with `timeout` as the total connect budget — shared
    /// across every address the endpoint resolves to, so a multi-address
    /// name whose first address blackholes cannot cost one timeout per
    /// address — and keeps the same duration as the per-exchange
    /// deadline of every later call.
    ///
    /// # Errors
    ///
    /// Resolution failure, no reachable address, or socket configuration.
    pub fn connect(endpoint: &str, timeout: Duration) -> io::Result<LineClient> {
        let started = Instant::now();
        let deadline = started + timeout;
        let addrs: Vec<SocketAddr> = endpoint.to_socket_addrs()?.collect();
        let mut last: Option<io::Error> = None;
        for addr in addrs {
            let Some(left) = remaining(deadline) else { break };
            match TcpStream::connect_timeout(&addr, left) {
                Ok(stream) => {
                    trace::event("proto.connect", |a| {
                        a.str("endpoint", endpoint).num(
                            "elapsed_ns",
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    });
                    return LineClient::over(stream, timeout);
                }
                Err(e) => last = Some(e),
            }
        }
        let error = last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("`{endpoint}` resolves to no address"),
            )
        });
        trace::event("proto.connect_error", |a| {
            a.str("endpoint", endpoint).str("error", &error.to_string());
        });
        Err(error)
    }

    /// Wraps an already-connected stream (the test-harness path),
    /// installing `timeout` as its exchange deadline.
    ///
    /// # Errors
    ///
    /// Socket configuration (setting the deadlines, cloning the handle).
    pub fn over(stream: TcpStream, timeout: Duration) -> io::Result<LineClient> {
        stream.set_write_timeout(Some(timeout))?;
        let writer = stream.try_clone()?;
        Ok(LineClient { writer, reader: BufReader::new(stream), timeout })
    }

    /// Sends one request line (the newline delimiter is appended).
    ///
    /// # Errors
    ///
    /// Transport errors, including a write blocked past the deadline.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        let outcome = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush());
        if let Err(e) = &outcome {
            trace::event("proto.write_error", |a| {
                a.num("bytes", line.len() as u64 + 1).str("error", &e.to_string());
            });
        }
        outcome
    }

    /// Reads one complete response line under one overall deadline.
    ///
    /// The deadline covers the **whole line**, re-checked after every
    /// chunk the socket delivers — an endpoint trickling one byte per
    /// read cannot reset its way past the budget, and the buffered line
    /// is capped at [`MAX_RESPONSE_BYTES`].
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the deadline passes without the
    /// line completing (a stalled or dripping endpoint),
    /// [`io::ErrorKind::UnexpectedEof`] when the connection closes before
    /// the line starts or inside it (a truncated reply),
    /// [`io::ErrorKind::InvalidData`] on an oversized or non-UTF-8 line,
    /// and any other transport error as-is.
    pub fn receive(&mut self) -> io::Result<String> {
        let deadline = Instant::now() + self.timeout;
        let mut line: Vec<u8> = Vec::new();
        loop {
            if line.len() > MAX_RESPONSE_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response line exceeds the {MAX_RESPONSE_BYTES} byte cap"),
                ));
            }
            let Some(left) = remaining(deadline) else {
                return Err(stalled(line.len()));
            };
            self.reader.get_ref().set_read_timeout(Some(left))?;
            let available = match self.reader.fill_buf() {
                Ok(available) => available,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    return Err(stalled(line.len()));
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF: before the line started, or inside it.
                return Err(if line.is_empty() {
                    io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed without a response",
                    )
                } else {
                    io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "connection closed mid-response ({} bytes of a truncated line)",
                            line.len()
                        ),
                    )
                });
            }
            let (taken, complete) = match available.iter().position(|&b| b == b'\n') {
                Some(newline) => (newline + 1, true),
                None => (available.len(), false),
            };
            line.extend_from_slice(&available[..taken]);
            self.reader.consume(taken);
            if complete {
                line.pop(); // the newline delimiter
                let text = String::from_utf8(line).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "response line is not UTF-8")
                })?;
                return Ok(text.trim().to_string());
            }
        }
    }

    /// One full exchange: [`LineClient::send`] then [`LineClient::receive`].
    ///
    /// # Errors
    ///
    /// Whatever either half reports.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send(line)?;
        self.receive()
    }

    /// Reads a **streaming** response: every `{"cell":…}` frame line
    /// (sent when the request carried `"stream": true`) is handed to
    /// `on_frame` as it arrives, and the first non-frame line — the
    /// normal final response — is returned. Each line gets the full
    /// per-read deadline ([`LineClient::receive`]), so a server steadily
    /// streaming a large grid never times the client out between cells.
    ///
    /// Also correct against a non-streaming response (e.g. an `ok:false`
    /// rejection of the `stream` field by an older server): the first
    /// line is no frame, so it comes straight back with `on_frame` never
    /// called.
    ///
    /// # Errors
    ///
    /// Whatever [`LineClient::receive`] reports.
    pub fn receive_streaming(&mut self, mut on_frame: impl FnMut(&str)) -> io::Result<String> {
        loop {
            let line = self.receive()?;
            if is_frame(&line) {
                on_frame(&line);
            } else {
                return Ok(line);
            }
        }
    }
}

fn stalled(buffered: usize) -> io::Error {
    trace::event("proto.read_timeout", |a| {
        a.num("buffered_bytes", buffered as u64);
    });
    io::Error::new(
        io::ErrorKind::TimedOut,
        "endpoint stalled: the response line timed out before completing",
    )
}

/// Whether a response line is a streaming cell frame (`{"cell":…}`).
/// The server puts `cell` first in frames and `ok` first in final
/// responses precisely so one prefix check classifies every line.
pub fn is_frame(line: &str) -> bool {
    line.starts_with("{\"cell\":")
}

/// Splits a streaming frame into its grid index and the exact
/// [`crate::StudyCell`] JSON slice — no re-serialization, mirroring
/// [`report_slice`]. `None` for anything that is not a well-formed
/// `{"cell":…,"index":N}` frame line.
pub fn frame_cell(line: &str) -> Option<(u64, &str)> {
    let rest = line.strip_prefix("{\"cell\":")?;
    let rest = rest.strip_suffix('}')?;
    let (cell, index) = rest.rsplit_once(",\"index\":")?;
    Some((index.parse().ok()?, cell))
}

/// The exact `StudyReport` bytes embedded in a successful response line —
/// the server serializes the `report` field **last** precisely so this
/// slice exists without re-serializing (and re-ordering) anything. `None`
/// when the line carries no report or is not a complete JSON object.
pub fn report_slice(line: &str) -> Option<&str> {
    let needle = "\"report\":";
    let start = line.find(needle)?;
    if !line.ends_with('}') {
        return None;
    }
    Some(&line[start + needle.len()..line.len() - 1])
}

/// Reads an [`EngineStats`] object back from its parsed JSON form — the
/// shape the `Serialize` impl writes. `None` on any missing or ill-typed
/// counter, so callers treat a damaged reply as a failed exchange.
pub fn stats_from_value(value: &Value) -> Option<EngineStats> {
    Some(EngineStats {
        jobs: value.get("jobs")?.as_u64()?,
        cache_hits: value.get("cache_hits")?.as_u64()?,
        cache_misses: value.get("cache_misses")?.as_u64()?,
        cache_entries: usize::try_from(value.get("cache_entries")?.as_u64()?).ok()?,
        workers: usize::try_from(value.get("workers")?.as_u64()?).ok()?,
        elapsed: Duration::from_secs_f64(value.get("elapsed_ms")?.as_f64()?.max(0.0) / 1e3),
        // Lenient: replies from engines predating stage caching simply
        // carry zero stage work, they are not damaged.
        stage_hits: value.get("stage_hits").and_then(Value::as_u64).unwrap_or(0),
        stage_misses: value.get("stage_misses").and_then(Value::as_u64).unwrap_or(0),
    })
}

/// Parses the one-line [`EngineStats`] JSON a shard worker prints on
/// stdout (the last non-empty line; noise above it is ignored). `None`
/// for anything else — the coordinator then treats the shard as failed
/// and re-derives its work from the store.
pub fn stats_line(stdout: &str) -> Option<EngineStats> {
    let line = stdout.lines().rev().find(|line| !line.trim().is_empty())?;
    stats_from_value(&serde_json::from_str(line.trim()).ok()?)
}

/// Validates one `host:port` endpoint spelling without resolving it: a
/// non-empty host and a nonzero 16-bit port. (Port 0 means "pick one" to
/// a *listener*; as a dial target nothing can be listening there.)
///
/// # Errors
///
/// A human-readable description of what is wrong with the spelling.
pub fn validate_endpoint(endpoint: &str) -> Result<(), String> {
    let Some((host, port)) = endpoint.rsplit_once(':') else {
        return Err(format!("`{endpoint}` is not host:port"));
    };
    if host.is_empty() {
        return Err(format!("`{endpoint}` has an empty host"));
    }
    match port.parse::<u16>() {
        Ok(0) => Err(format!("`{endpoint}` dials port 0, which nothing can listen on")),
        Ok(_) => Ok(()),
        Err(_) => Err(format!("`{endpoint}` has a bad port `{port}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_line_roundtrips() {
        let stats = EngineStats {
            jobs: 7,
            cache_hits: 2,
            cache_misses: 5,
            cache_entries: 9,
            workers: 3,
            elapsed: Duration::from_millis(12),
            stage_hits: 11,
            stage_misses: 13,
        };
        let line = serde_json::to_string(&stats).unwrap();
        let back = stats_line(&format!("noise above is ignored\n{line}\n")).unwrap();
        assert_eq!(back.jobs, 7);
        assert_eq!(back.cache_hits, 2);
        assert_eq!(back.cache_misses, 5);
        assert_eq!(back.cache_entries, 9);
        assert_eq!(back.workers, 3);
        assert!((back.elapsed.as_secs_f64() - 0.012).abs() < 1e-9);
        assert_eq!(back.stage_hits, 11);
        assert_eq!(back.stage_misses, 13);
        assert!(stats_line("").is_none());
        assert!(stats_line("not json").is_none());
        assert!(stats_line("{\"jobs\": 1}").is_none(), "missing counters are a failed parse");
        // Pre-stage-cache replies lack the stage counters; that is old
        // age, not damage.
        let legacy = stats_line(
            "{\"jobs\":1,\"cache_hits\":0,\"cache_misses\":1,\"hit_rate_pct\":0.0,\
             \"cache_entries\":1,\"workers\":1,\"elapsed_ms\":2.0}",
        )
        .unwrap();
        assert_eq!(legacy.stage_hits, 0);
        assert_eq!(legacy.stage_misses, 0);
    }

    #[test]
    fn report_slice_requires_the_trailing_field() {
        let line = "{\"ok\":true,\"service\":{},\"report\":{\"cells\":[]}}";
        assert_eq!(report_slice(line), Some("{\"cells\":[]}"));
        assert!(report_slice("{\"ok\":true}").is_none(), "no report field");
        assert!(report_slice("{\"report\":{\"cells\":[").is_none(), "truncated line");
    }

    #[test]
    fn frames_are_classified_and_sliced_by_prefix() {
        let frame = "{\"cell\":{\"spec\":\"ex\",\"latency\":3},\"index\":7}";
        assert!(is_frame(frame));
        assert_eq!(frame_cell(frame), Some((7, "{\"spec\":\"ex\",\"latency\":3}")));
        // A cell whose body itself contains an "index" key still splits
        // at the frame-level field (rightmost occurrence).
        let tricky = "{\"cell\":{\"a\":1,\"index\":9},\"index\":2}";
        assert_eq!(frame_cell(tricky), Some((2, "{\"a\":1,\"index\":9}")));
        for not_frame in ["{\"ok\":true}", "{\"ok\":false,\"error\":\"x\"}", "", "{\"cells\":[]}"] {
            assert!(!is_frame(not_frame), "{not_frame}");
            assert!(frame_cell(not_frame).is_none(), "{not_frame}");
        }
        assert!(frame_cell("{\"cell\":{},\"index\":notanum}").is_none());
        assert!(frame_cell("{\"cell\":{}").is_none(), "truncated frame");
    }

    #[test]
    fn endpoint_spellings_are_validated() {
        assert!(validate_endpoint("127.0.0.1:4850").is_ok());
        assert!(validate_endpoint("grid-7.internal:80").is_ok());
        assert!(validate_endpoint("[::1]:4850").is_ok());
        for bad in ["", "nohost", ":5", "h:", "h:0", "h:notaport", "h:70000"] {
            assert!(validate_endpoint(bad).is_err(), "`{bad}` should not validate");
        }
    }
}
