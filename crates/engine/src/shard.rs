//! Sharded multi-process execution: partition a [`Study`]'s deduplicated
//! job list by [`JobKey`] range across workers that share one persistent
//! cache directory, then reassemble the exact single-process
//! [`StudyReport`].
//!
//! # Transports
//!
//! *Where* a shard runs is a [`Transport`] decision, made per run:
//!
//! * [`Transport::Local`] re-invokes the `bittrans` binary as one
//!   `shard-worker` process per shard on this machine (the original
//!   protocol below);
//! * [`Transport::Remote`] dispatches each shard as a **shard request**
//!   to one of a fleet of `bittrans serve` endpoints
//!   ([`crate::serve`]) — the study body plus
//!   `shard_index`/`shard_count` ([`SHARD_COORD_FIELDS`]) over the
//!   newline-delimited JSON protocol, endpoints assigned round-robin
//!   ([`assign_round_robin`]), every read under a deadline
//!   ([`crate::proto`]). A failed or unreachable endpoint's shard is
//!   retried on the next endpoint (each endpoint at most once per
//!   shard); a shard that exhausts the fleet is marked failed and its
//!   missing keys are recomputed in-process, exactly like a crashed
//!   local worker.
//!
//! Both transports feed the same merge: per-shard [`EngineStats`] (a
//! local worker's stdout line, a remote response's `stats` field) are
//! absorbed identically, and the final report never depends on a worker
//! having survived. The one remote-only requirement is the **shared
//! store**: every endpoint must have been started with a `--cache-dir`
//! on the same filesystem the coordinator reads (NFS or equivalent for
//! real multi-machine grids), because the store — not the response — is
//! the result channel.
//!
//! # Protocol
//!
//! The coordinator ([`run_sharded`]):
//!
//! 1. expands the study grid, deduplicates it by key, **sorts the distinct
//!    jobs by [`JobKey`]** and splits the sorted list into K contiguous
//!    ranges ([`partition`] — total and disjoint by construction);
//! 2. writes one JSON [`Manifest`] per shard (the full study description
//!    plus `shard_index`/`shard_count`) under `<cache-dir>/.shards/` and
//!    spawns K worker processes — re-invocations of the `bittrans` binary
//!    with the hidden `shard-worker` subcommand — all pointed at the same
//!    `--cache-dir`;
//! 3. each worker re-derives the identical sorted job list from its
//!    manifest, takes its range, runs it through a normal [`Engine`] (so
//!    every success is spilled into the shared directory), and prints its
//!    [`EngineStats`] as one JSON line on stdout;
//! 4. the coordinator waits for every worker, merges the per-shard stats
//!    ([`EngineStats::merged`]), and re-reads the cache directory. Any
//!    distinct key missing from the store — a gap left by a crashed or
//!    killed worker, or an infeasible coordinate whose error is never
//!    persisted — is computed in-process by the coordinator's own engine.
//!    The assembled [`StudyReport`] is therefore **bit-identical** to what
//!    a single-process [`Study::run`] over the same grid and cache state
//!    produces, faults or no faults.
//!
//! The cache directory is the only result channel: workers never talk to
//! each other, ranges are disjoint so racing writers never collide on a
//! key, and a worker dying mid-shard costs only the recomputation of its
//! unfinished range.
//!
//! Because a study's `Spec` values cannot be re-serialized into parseable
//! DSL (the IR's `Display` is a dump format), a sharded study starts from
//! **source text** ([`ShardedStudy`]) — exactly what the CLI has in hand —
//! and both sides parse the same sources, so content keys agree across
//! processes by construction.

use crate::key::JobKey;
use crate::persist::DirIndex;
use crate::proto;
use crate::report::StudyReport;
use crate::stats::{EndpointStats, EngineStats};
use crate::study::{self, Study};
use crate::trace;
use crate::{Engine, EngineOptions, Job};
use bittrans_core::CompareOptions;
use bittrans_ir::Spec;
use bittrans_rtl::AdderArch;
use bittrans_timing::TimingModel;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a sharded run (or a worker) could not start. Worker *crashes* are
/// not errors — the coordinator absorbs those — only unusable inputs are.
#[derive(Debug)]
pub enum ShardError {
    /// Creating the cache directory, writing manifests, or similar I/O.
    Io(io::Error),
    /// A manifest or spec source failed to parse.
    Invalid(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard i/o: {e}"),
            ShardError::Invalid(why) => write!(f, "invalid shard input: {why}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<io::Error> for ShardError {
    fn from(e: io::Error) -> Self {
        ShardError::Io(e)
    }
}

fn invalid(why: impl Into<String>) -> ShardError {
    ShardError::Invalid(why.into())
}

/// Splits `len` items into `shards` contiguous index ranges that are
/// **total** (their concatenation is exactly `0..len`) and **disjoint**,
/// with sizes differing by at most one. `shards` of zero is treated as
/// one.
pub fn partition(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    (0..shards).map(|i| (i * len / shards)..((i + 1) * len / shards)).collect()
}

/// Maps each of `shards` shard indices to one of `endpoints` endpoint
/// indices, round-robin: shard `i` is **homed** on endpoint
/// `i % endpoints`. Total (every shard assigned exactly once) and
/// balanced (endpoint loads differ by at most one) by construction —
/// property-tested alongside [`partition`]. `endpoints` of zero is
/// treated as one.
pub fn assign_round_robin(shards: usize, endpoints: usize) -> Vec<usize> {
    let endpoints = endpoints.max(1);
    (0..shards).map(|i| i % endpoints).collect()
}

/// Parses a comma-separated `host:port,host:port,...` endpoint list —
/// the CLI's `--workers` argument. Entries are trimmed; the spelling of
/// each is checked ([`proto::validate_endpoint`]) without resolving it.
///
/// # Errors
///
/// [`ShardError::Invalid`] on an empty list, an empty entry, or an entry
/// that is not `host:port` with a nonzero port.
pub fn parse_endpoints(list: &str) -> Result<Vec<String>, ShardError> {
    let pieces: Vec<&str> = list.split(',').map(str::trim).collect();
    if pieces.iter().all(|piece| piece.is_empty()) {
        return Err(invalid("--workers needs at least one host:port endpoint"));
    }
    let mut endpoints = Vec::with_capacity(pieces.len());
    for piece in pieces {
        if piece.is_empty() {
            return Err(invalid("empty endpoint in the --workers list"));
        }
        proto::validate_endpoint(piece).map_err(ShardError::Invalid)?;
        endpoints.push(piece.to_string());
    }
    Ok(endpoints)
}

/// A [`Study`] described by its **source text** instead of parsed specs,
/// so it can cross a process boundary in a manifest. [`ShardedStudy::study`]
/// parses it back; coordinator and workers both do, so their grids — and
/// therefore their content keys — agree exactly.
#[derive(Clone, Debug)]
pub struct ShardedStudy {
    /// One DSL source per specification, in grid order.
    pub sources: Vec<String>,
    /// The latency axis (λ values, in order).
    pub latencies: Vec<u32>,
    /// The adder-architecture axis, when set.
    pub adder_archs: Option<Vec<AdderArch>>,
    /// The balancing axis, when set.
    pub balance: Option<Vec<bool>>,
    /// The verification-budget axis, when set.
    pub verify_vectors: Option<Vec<usize>>,
    /// Base options that unset axes collapse to.
    pub base: CompareOptions,
}

impl ShardedStudy {
    /// The field names [`ShardedStudy::from_value`] consumes — the wire
    /// schema of a study body. Strict front ends (the `serve` request
    /// parser) reject objects carrying anything else — except the shard
    /// coordinates ([`SHARD_COORD_FIELDS`]) — so a typo'd axis name
    /// fails loudly instead of silently collapsing to the default.
    pub const FIELDS: [&'static str; 6] =
        ["sources", "latencies", "adder_archs", "balance", "verify_vectors", "base"];

    /// Reads a study body back from a parsed JSON object — the reverse of
    /// this type's `Serialize` impl. Shared by the [`Manifest`] reader
    /// (whose flat layout carries the same field names) and the `serve`
    /// request parser, so a study serialized by any front end deserializes
    /// identically everywhere.
    ///
    /// Ignores fields outside [`ShardedStudy::FIELDS`]; callers that must
    /// reject unknown fields check the key set first. Only `sources` is
    /// required: an absent `latencies` collapses to the [`Study`] default
    /// (λ = 3) and an absent `base` to [`CompareOptions::default`] —
    /// machine writers (the [`Manifest`]) always spell both out, and
    /// because every reader applies the same defaults, a hand-written
    /// request and its expanded form produce identical grids and keys.
    ///
    /// # Errors
    ///
    /// [`ShardError::Invalid`] on a missing `sources` or an ill-typed
    /// field.
    pub fn from_value(value: &Value) -> Result<Self, ShardError> {
        let sources = string_list(field(value, "sources")?, "sources")?;
        let latencies = optional(value, "latencies")
            .map(|v| {
                v.as_array()
                    .ok_or_else(|| invalid("`latencies` is not an array"))?
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(|| invalid("bad value in `latencies`"))
                    })
                    .collect::<Result<Vec<u32>, _>>()
            })
            .transpose()?
            .unwrap_or_else(|| vec![3]);
        let adder_archs = optional(value, "adder_archs")
            .map(|v| {
                string_list(v, "adder_archs")?
                    .iter()
                    .map(|code| parse_adder_code(code))
                    .collect::<Result<Vec<_>, _>>()
            })
            .transpose()?;
        let balance = optional(value, "balance")
            .map(|v| {
                v.as_array()
                    .ok_or_else(|| invalid("`balance` is not an array"))?
                    .iter()
                    .map(|b| b.as_bool().ok_or_else(|| invalid("bad value in `balance`")))
                    .collect::<Result<Vec<bool>, _>>()
            })
            .transpose()?;
        let verify_vectors = optional(value, "verify_vectors")
            .map(|v| {
                v.as_array()
                    .ok_or_else(|| invalid("`verify_vectors` is not an array"))?
                    .iter()
                    .map(|n| {
                        n.as_u64()
                            .and_then(|n| usize::try_from(n).ok())
                            .ok_or_else(|| invalid("bad value in `verify_vectors`"))
                    })
                    .collect::<Result<Vec<usize>, _>>()
            })
            .transpose()?;
        let base = match optional(value, "base") {
            None => CompareOptions::default(),
            Some(base_value) => CompareOptions {
                adder_arch: parse_adder_code(
                    field(base_value, "adder_arch")?
                        .as_str()
                        .ok_or_else(|| invalid("base `adder_arch` is not a string"))?,
                )?,
                timing: TimingModel {
                    delta_ns: field(base_value, "delta_ns")?
                        .as_f64()
                        .ok_or_else(|| invalid("base `delta_ns` is not a number"))?,
                    overhead_ns: field(base_value, "overhead_ns")?
                        .as_f64()
                        .ok_or_else(|| invalid("base `overhead_ns` is not a number"))?,
                },
                balance: field(base_value, "balance")?
                    .as_bool()
                    .ok_or_else(|| invalid("base `balance` is not a boolean"))?,
                verify_vectors: as_usize(base_value, "verify_vectors")?,
            },
        };
        Ok(ShardedStudy { sources, latencies, adder_archs, balance, verify_vectors, base })
    }

    /// Parses the sources and rebuilds the equivalent [`Study`].
    ///
    /// # Errors
    ///
    /// [`ShardError::Invalid`] when a source does not parse.
    pub fn study(&self) -> Result<Study, ShardError> {
        let specs: Vec<Spec> =
            self.sources.iter().map(|src| parse_source(src)).collect::<Result<_, _>>()?;
        let mut study =
            Study::over(specs).latencies(self.latencies.iter().copied()).base_options(self.base);
        if let Some(archs) = &self.adder_archs {
            study = study.adder_archs(archs.iter().copied());
        }
        if let Some(balance) = &self.balance {
            study = study.balance(balance.iter().copied());
        }
        if let Some(vectors) = &self.verify_vectors {
            study = study.verify_vectors(vectors.iter().copied());
        }
        Ok(study)
    }
}

/// The two wire fields a **shard request** carries on top of the study
/// body: a `serve` endpoint receiving them executes only that range of
/// the study's key-sorted distinct jobs ([`shard_slice`]) and answers
/// with the batch's [`EngineStats`] instead of a report — the remote
/// counterpart of a local worker's stdout stats line.
pub const SHARD_COORD_FIELDS: [&str; 2] = ["shard_index", "shard_count"];

/// The wire form of one remote shard dispatch: the flat study body plus
/// the shard coordinates. The `serve` request parser reads the study
/// back with [`ShardedStudy::from_value`] exactly as it reads a
/// whole-study request, so the two request shapes cannot drift apart.
struct ShardRequest<'a> {
    study: &'a ShardedStudy,
    shard_index: usize,
    shard_count: usize,
}

impl Serialize for ShardRequest<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("ShardRequest", 8)?;
        st.serialize_field("shard_index", &self.shard_index)?;
        st.serialize_field("shard_count", &self.shard_count)?;
        serialize_study_fields(&mut st, self.study)?;
        st.end()
    }
}

/// Version of the manifest layout; workers reject anything else.
pub const MANIFEST_SCHEMA: u64 = 1;

/// Everything one worker process needs: the full study, its shard
/// coordinates, and the shared cache directory.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// The study, by source text.
    pub study: ShardedStudy,
    /// This worker's shard (0-based).
    pub shard_index: usize,
    /// Total shards the sorted job list is split into.
    pub shard_count: usize,
    /// Worker threads inside this shard (`None`: all cores).
    pub threads: Option<usize>,
    /// The shared result store.
    pub cache_dir: PathBuf,
}

fn parse_adder_code(code: &str) -> Result<AdderArch, ShardError> {
    AdderArch::from_code(code).ok_or_else(|| invalid(format!("unknown adder code `{code}`")))
}

/// Parses one study source: the bittrans DSL, or — when the text leads
/// with the canonical-codec magic — the versioned [`Spec::to_canonical`]
/// encoding. Generated specs (the fuzzer's `random_spec` output) have no
/// DSL source, so coordinators ship them as canonical text and every
/// worker process or `serve` endpoint reconstructs the identical spec
/// here; `from_canonical(to_canonical(s)) == s`, so content keys agree
/// across processes.
pub fn parse_source(src: &str) -> Result<Spec, ShardError> {
    if src.trim_start().starts_with(bittrans_ir::canonical::MAGIC) {
        Spec::from_canonical(src).map_err(|e| invalid(e.to_string()))
    } else {
        Spec::parse(src).map_err(|e| invalid(e.to_string()))
    }
}

impl Serialize for Manifest {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Manifest", 11)?;
        st.serialize_field("schema", &MANIFEST_SCHEMA)?;
        st.serialize_field("shard_index", &self.shard_index)?;
        st.serialize_field("shard_count", &self.shard_count)?;
        st.serialize_field("threads", &self.threads)?;
        st.serialize_field("cache_dir", &self.cache_dir.to_string_lossy().into_owned())?;
        serialize_study_fields(&mut st, &self.study)?;
        st.end()
    }
}

/// Writes the six study-body fields into an in-progress JSON object —
/// shared by the standalone [`ShardedStudy`] serialization (the `serve`
/// request body) and the flat [`Manifest`] layout, so both spell the wire
/// schema identically.
fn serialize_study_fields<S: SerializeStruct>(
    st: &mut S,
    study: &ShardedStudy,
) -> Result<(), S::Error> {
    st.serialize_field("sources", &study.sources)?;
    st.serialize_field("latencies", &study.latencies)?;
    let archs: Option<Vec<String>> = study
        .adder_archs
        .as_ref()
        .map(|archs| archs.iter().map(|a| a.code().to_string()).collect());
    st.serialize_field("adder_archs", &archs)?;
    st.serialize_field("balance", &study.balance)?;
    st.serialize_field("verify_vectors", &study.verify_vectors)?;
    st.serialize_field("base", &BaseOptions(&study.base))
}

impl Serialize for ShardedStudy {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("ShardedStudy", 6)?;
        serialize_study_fields(&mut st, self)?;
        st.end()
    }
}

struct BaseOptions<'a>(&'a CompareOptions);

impl Serialize for BaseOptions<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("CompareOptions", 5)?;
        st.serialize_field("adder_arch", self.0.adder_arch.code())?;
        st.serialize_field("delta_ns", &self.0.timing.delta_ns)?;
        st.serialize_field("overhead_ns", &self.0.timing.overhead_ns)?;
        st.serialize_field("balance", &self.0.balance)?;
        st.serialize_field("verify_vectors", &self.0.verify_vectors)?;
        st.end()
    }
}

fn field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, ShardError> {
    value.get(key).ok_or_else(|| invalid(format!("missing field `{key}`")))
}

fn as_usize(value: &Value, key: &str) -> Result<usize, ShardError> {
    field(value, key)?
        .as_u64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| invalid(format!("`{key}` is not an unsigned integer")))
}

fn optional<'v>(value: &'v Value, key: &str) -> Option<&'v Value> {
    match value.get(key) {
        None | Some(Value::Null) => None,
        Some(present) => Some(present),
    }
}

impl Manifest {
    /// The manifest as one line of JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("manifest serializes")
    }

    /// Parses a manifest produced by [`Manifest::to_json`].
    ///
    /// # Errors
    ///
    /// [`ShardError::Invalid`] on malformed JSON, a missing field, or a
    /// schema this build does not understand.
    pub fn from_json(text: &str) -> Result<Self, ShardError> {
        let value = serde_json::from_str(text).map_err(|e| invalid(e.to_string()))?;
        let schema = field(&value, "schema")?.as_u64();
        if schema != Some(MANIFEST_SCHEMA) {
            return Err(invalid(format!("unsupported manifest schema {schema:?}")));
        }
        // `from_value` defaults absent `latencies`/`base` for hand-written
        // serve requests; a machine-written manifest always spells them
        // out, so absence here is corruption or coordinator/worker version
        // skew and silently running a default grid would persist results
        // under the wrong study. Require them.
        field(&value, "latencies")?;
        field(&value, "base")?;
        let study = ShardedStudy::from_value(&value)?;
        let shard_index = as_usize(&value, "shard_index")?;
        let shard_count = as_usize(&value, "shard_count")?;
        if shard_count == 0 || shard_index >= shard_count {
            return Err(invalid(format!("shard {shard_index} of {shard_count} is out of range")));
        }
        let threads = optional(&value, "threads")
            .map(|v| {
                v.as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| invalid("manifest `threads` is not an unsigned integer"))
            })
            .transpose()?;
        let cache_dir = PathBuf::from(
            field(&value, "cache_dir")?
                .as_str()
                .ok_or_else(|| invalid("manifest `cache_dir` is not a string"))?,
        );
        Ok(Manifest { study, shard_index, shard_count, threads, cache_dir })
    }

    /// Reads a manifest file.
    ///
    /// # Errors
    ///
    /// I/O reading the file, or anything [`Manifest::from_json`] rejects.
    pub fn read(path: &Path) -> Result<Self, ShardError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }

    /// This shard's slice of the study: the grid deduplicated, sorted by
    /// key, and cut to the `shard_index`-th of `shard_count` ranges. Every
    /// worker (and the coordinator) computes the same partition from the
    /// same pure inputs.
    ///
    /// # Errors
    ///
    /// [`ShardError::Invalid`] when a source does not parse.
    pub fn jobs(&self) -> Result<Vec<Job>, ShardError> {
        Ok(shard_slice(&self.study.study()?, self.shard_index, self.shard_count))
    }
}

/// The `index`-th of `count` ranges of a study's key-sorted distinct job
/// list — the slice one worker executes, whether that worker is a local
/// `shard-worker` process (via [`Manifest::jobs`]) or a `serve` endpoint
/// answering a shard request. An out-of-range `index` yields an empty
/// slice; `count` of zero is treated as one.
///
/// The cut is the same integer arithmetic [`partition`] performs,
/// computed directly for the one requested range: a `serve` endpoint
/// feeds this function an untrusted `count`, so it must neither
/// materialize `count` ranges nor overflow (`u128` headroom), however
/// absurd the coordinates.
///
/// # Panics
///
/// On axis values the options builder rejects; see [`Study::jobs`].
pub fn shard_slice(study: &Study, index: usize, count: usize) -> Vec<Job> {
    let sorted = sorted_distinct(study);
    let (index, count, len) = (index as u128, count.max(1) as u128, sorted.len() as u128);
    if index >= count {
        return Vec::new();
    }
    let start = (index * len / count) as usize;
    let end = ((index + 1) * len / count) as usize;
    sorted[start..end].to_vec()
}

fn string_list(value: &Value, key: &str) -> Result<Vec<String>, ShardError> {
    value
        .as_array()
        .ok_or_else(|| invalid(format!("`{key}` is not an array")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("`{key}` holds a non-string")))
        })
        .collect()
}

/// The distinct jobs of a study, sorted by content key — the canonical
/// order every process derives independently before partitioning. Keys are
/// content hashes of the full canonicalized spec, so each is computed once.
fn sorted_distinct(study: &Study) -> Vec<Job> {
    let mut jobs = study.distinct_jobs();
    jobs.sort_by_cached_key(Job::key);
    jobs
}

/// A test-only fault injected into [`run_worker`]: process the shard one
/// job at a time and stop — as if the process were killed — after
/// `abort_after` jobs. Triggered by the CLI from the
/// `BITTRANS_SHARD_FAULT` environment variable.
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// Jobs to complete (and spill) before dying.
    pub abort_after: usize,
}

/// What a worker did: its engine statistics, how many jobs it finished,
/// and whether an injected fault stopped it early.
#[derive(Clone, Debug)]
pub struct WorkerRun {
    /// Statistics of the work actually performed.
    pub stats: EngineStats,
    /// Jobs completed (equals the shard size when not aborted).
    pub completed: usize,
    /// Whether an injected [`Fault`] stopped the shard early. The caller
    /// is expected to exit abnormally so the coordinator sees a dead
    /// worker.
    pub aborted: bool,
}

/// Runs one shard: re-derives the job range from the manifest and pushes
/// it through an [`Engine`] attached to the shared cache directory, so
/// every successful comparison lands in the store. With a [`Fault`], jobs
/// run one at a time (each spilled as it completes) and the run stops
/// early — the harness hook for killing a worker mid-shard.
///
/// # Errors
///
/// [`ShardError`] on unusable manifests or an unusable cache directory —
/// never on pipeline errors, which are per-job results like everywhere
/// else.
pub fn run_worker(manifest: &Manifest, fault: Option<Fault>) -> Result<WorkerRun, ShardError> {
    let jobs = manifest.jobs()?;
    let total = jobs.len();
    let engine = Engine::new(EngineOptions { workers: manifest.threads, cache: true })
        .with_cache_dir(&manifest.cache_dir)?;
    let Some(fault) = fault else {
        let batch = engine.run(jobs);
        return Ok(WorkerRun { stats: batch.stats, completed: total, aborted: false });
    };
    let mut stats = EngineStats::zero();
    let mut completed = 0;
    for job in jobs {
        if completed == fault.abort_after {
            return Ok(WorkerRun { stats, completed, aborted: true });
        }
        stats.absorb(&engine.run(vec![job]).stats);
        completed += 1;
    }
    Ok(WorkerRun { stats, completed, aborted: false })
}

/// Where shard work is dispatched: local worker processes or a fleet of
/// remote `serve` endpoints. See the [module docs](self) for how the two
/// transports share one merge and one recovery contract.
#[derive(Clone, Debug)]
pub enum Transport {
    /// Re-invoke the `bittrans` binary as one `shard-worker` process per
    /// shard on this machine.
    Local(LocalTransport),
    /// Send each shard as a shard request to one of a fleet of
    /// `bittrans serve` endpoints sharing the coordinator's store.
    Remote(RemoteTransport),
}

/// The local process-spawn transport.
#[derive(Clone, Debug)]
pub struct LocalTransport {
    /// The binary to re-invoke with `shard-worker <manifest>` — normally
    /// `std::env::current_exe()` of the `bittrans` CLI.
    pub worker_binary: PathBuf,
    /// Worker threads per shard (`None`: all cores in every worker).
    pub threads_per_worker: Option<usize>,
}

/// The remote serve-fleet transport.
#[derive(Clone, Debug)]
pub struct RemoteTransport {
    /// `host:port` endpoints of running `bittrans serve` processes, all
    /// started with a `--cache-dir` on the store the coordinator reads.
    /// Shards are homed round-robin ([`assign_round_robin`]) and retried
    /// on the next endpoint on failure, each endpoint at most once per
    /// shard.
    pub endpoints: Vec<String>,
    /// Connect deadline and per-read deadline of every exchange. A
    /// stalled endpoint costs one timeout, never a hung coordinator —
    /// but size it generously: endpoints serialize studies over one
    /// engine, so when `shards` exceeds the fleet size a shard's
    /// response waits behind the endpoint's earlier shards, and the
    /// deadline must cover that queue wait **plus** the shard's own
    /// compute (roughly shards-per-endpoint × per-shard time).
    pub timeout: Duration,
}

/// How to run a study across processes.
#[derive(Clone, Debug)]
pub struct ShardOptions {
    /// Shards to cut the sorted job list into (clamped to the distinct
    /// job count; at least one job per shard).
    pub shards: usize,
    /// Where the shards run.
    pub transport: Transport,
}

/// Everything a sharded run produces.
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// The assembled study report — bit-identical to a single-process
    /// [`Study::run`] over the same grid and starting cache state. Its
    /// `stats` describe the run in single-process terms: every
    /// deduplicated job is accounted exactly once (hits = keys already in
    /// the store when the run started, misses = the rest), `workers` sums
    /// the pools that ran, `elapsed` is coordinator wall clock.
    pub report: StudyReport,
    /// Per-shard statistics merged ([`EngineStats::merged`]) with the
    /// coordinator's retry work. Jobs a dead worker finished but never
    /// reported are absent — compare with `report.stats` to spot lost
    /// accounting.
    pub merged: EngineStats,
    /// Each worker's own statistics (`None` for a shard that died or
    /// produced no parseable stats line).
    pub shard_stats: Vec<Option<EngineStats>>,
    /// Who did the work: one entry per dispatch target that completed at
    /// least one shard (a `host:port` endpoint, the `local` process
    /// pool), plus a `coordinator` entry when gap-fill recomputation ran
    /// — so the merged totals stay attributable per machine.
    pub endpoints: Vec<EndpointStats>,
    /// Shards that exited abnormally or reported nothing.
    pub failed: Vec<usize>,
    /// Keys from failed shards' ranges that were absent from the store
    /// after the workers finished and were recomputed in-process.
    pub retried: Vec<JobKey>,
}

/// Runs `study` across `options.shards` worker processes sharing
/// `cache_dir` as the result store, and reassembles the single-process
/// report. See the [module docs](self) for the full protocol; the short
/// version: partition → spawn → wait → merge stats → re-read the store →
/// recompute whatever is missing (crashed-worker gaps and never-persisted
/// pipeline errors) in-process.
///
/// A crashed, killed or lying worker never fails the run — its range is
/// detected as missing and retried locally — so the result is exactly as
/// durable as a single-process run.
///
/// # Errors
///
/// [`ShardError`] on unparseable sources or cache-directory I/O.
///
/// # Panics
///
/// On axis values the options builder rejects; see [`Study::jobs`].
pub fn run_sharded(
    sharded: &ShardedStudy,
    cache_dir: &Path,
    options: &ShardOptions,
) -> Result<ShardRun, ShardError> {
    let started = Instant::now();
    let study = sharded.study()?;
    let grid = study.dedup();
    // Hash each distinct job's key once; every later pass reuses the list.
    let mut keyed: Vec<(JobKey, Job)> =
        grid.distinct.iter().map(|job| (job.key(), job.clone())).collect();
    keyed.sort_by_key(|&(key, _)| key);
    let sorted_keys: Vec<JobKey> = keyed.iter().map(|&(key, _)| key).collect();
    let shards = if keyed.is_empty() { 0 } else { options.shards.clamp(1, keyed.len()) };
    let ranges = partition(keyed.len(), shards);
    drop(keyed);
    let _run = trace::span_attrs("shard.run", |a| {
        a.num("shards", shards as u64).num("distinct", sorted_keys.len() as u64);
    });

    std::fs::create_dir_all(cache_dir)?;
    let before = DirIndex::open(cache_dir)?;
    let preloaded_total = before.len();
    // A key only counts as preloaded if its entry actually parses — a
    // corrupt body is exactly what a single-process run would discover at
    // lookup time and recompute as a miss, and the report (hits,
    // from_cache flags) must not diverge from that. `stale` corrects the
    // final entry count: the corrupt file is both in `preloaded_total`
    // and recomputed as a miss, so it would otherwise be counted twice.
    let mut preloaded: HashSet<JobKey> = HashSet::new();
    let mut stale = 0usize;
    for &key in &sorted_keys {
        if before.contains(&key) {
            if before.load(key).is_some() {
                preloaded.insert(key);
            } else {
                stale += 1;
            }
        }
    }
    drop(before);

    // Dispatch the shards through the configured transport. A shard that
    // cannot be dispatched at all is treated exactly like one that
    // crashed: its range is detected as missing and recomputed below.
    let dispatch = if shards == 0 {
        Dispatch::empty(0)
    } else {
        match &options.transport {
            Transport::Local(local) => dispatch_local(sharded, shards, cache_dir, local)?,
            Transport::Remote(remote) => dispatch_remote(sharded, shards, remote),
        }
    };
    let Dispatch { shard_stats, mut endpoints, failed } = dispatch;

    // Re-read the shared store and detect gaps before the final batch: a
    // key from a failed shard's range with no entry on disk is work the
    // dead worker never finished.
    let after = DirIndex::open(cache_dir)?;
    let on_disk: HashSet<JobKey> = after.keys().collect();
    drop(after);
    let failed_keys: HashSet<JobKey> = failed
        .iter()
        .flat_map(|&index| sorted_keys[ranges[index].clone()].iter().copied())
        .collect();
    let retried: Vec<JobKey> = sorted_keys
        .iter()
        .filter(|key| failed_keys.contains(key) && !on_disk.contains(key))
        .copied()
        .collect();

    // One local batch over the distinct jobs assembles everything: keys in
    // the store load lazily as hits; gaps and infeasible coordinates (whose
    // errors are never persisted) compute here, exactly as a single-process
    // run would have computed them.
    if !retried.is_empty() {
        trace::event("shard.recompute", |a| {
            a.num("keys", retried.len() as u64).num("failed_shards", failed.len() as u64);
        });
    }
    let engine = Engine::default().with_cache_dir(cache_dir)?;
    let batch = engine.run(grid.distinct.clone());

    let mut merged = EngineStats::merged(shard_stats.iter().flatten());
    if !retried.is_empty() {
        let recompute = EngineStats {
            jobs: retried.len() as u64,
            cache_hits: 0,
            cache_misses: retried.len() as u64,
            cache_entries: batch.stats.cache_entries,
            workers: batch.stats.workers,
            elapsed: batch.stats.elapsed,
            stage_hits: batch.stats.stage_hits,
            stage_misses: batch.stats.stage_misses,
        };
        merged.absorb(&recompute);
        endpoints.push(EndpointStats {
            endpoint: "coordinator".to_string(),
            shards: failed.clone(),
            stats: recompute,
        });
    }

    let hits = preloaded.len() as u64;
    let distinct_count = grid.distinct.len() as u64;
    let index_of: HashMap<JobKey, usize> = grid.index_of;
    let cells = study::assemble(grid.cells, grid.keys, |key| {
        let outcome = &batch.outcomes[index_of[&key]];
        (Arc::clone(&outcome.result), preloaded.contains(&key))
    });
    let stats = EngineStats {
        jobs: distinct_count,
        cache_hits: hits,
        cache_misses: distinct_count - hits,
        cache_entries: preloaded_total - stale + (distinct_count - hits) as usize,
        workers: merged.workers,
        elapsed: started.elapsed(),
        // Stage work happened inside the shard processes (and the
        // gap-fill batch); the merged endpoint stats carry it.
        stage_hits: merged.stage_hits,
        stage_misses: merged.stage_misses,
    };
    Ok(ShardRun {
        report: StudyReport { cells, stats },
        merged,
        shard_stats,
        endpoints,
        failed,
        retried,
    })
}

/// What one transport dispatch produced, whoever ran it.
struct Dispatch {
    /// Per-shard statistics (`None` for a shard every attempt lost).
    shard_stats: Vec<Option<EngineStats>>,
    /// Attribution of completed shards to dispatch targets.
    endpoints: Vec<EndpointStats>,
    /// Shards no attempt completed.
    failed: Vec<usize>,
}

impl Dispatch {
    fn empty(shards: usize) -> Dispatch {
        Dispatch { shard_stats: vec![None; shards], endpoints: Vec::new(), failed: Vec::new() }
    }
}

/// Local dispatch: write one manifest per shard and spawn one
/// `shard-worker` re-invocation per shard, all pointed at the shared
/// store; a worker's one-line stdout stats are its report.
///
/// # Errors
///
/// Creating the scratch directory or writing a manifest. Spawn failures
/// are per-shard faults, not errors.
fn dispatch_local(
    sharded: &ShardedStudy,
    shards: usize,
    cache_dir: &Path,
    transport: &LocalTransport,
) -> Result<Dispatch, ShardError> {
    let scratch = cache_dir.join(".shards").join(format!("run-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)?;
    let mut children: Vec<(usize, io::Result<Child>)> = Vec::new();
    for index in 0..shards {
        let manifest = Manifest {
            study: sharded.clone(),
            shard_index: index,
            shard_count: shards,
            threads: transport.threads_per_worker,
            cache_dir: cache_dir.to_path_buf(),
        };
        let path = scratch.join(format!("shard-{index}.json"));
        std::fs::write(&path, manifest.to_json())?;
        trace::event("shard.dispatch", |a| {
            a.num("shard", index as u64).num("attempt", 0).str("endpoint", "local");
        });
        let child = Command::new(&transport.worker_binary)
            .arg("shard-worker")
            .arg(&path)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn();
        children.push((index, child));
    }

    let mut dispatch = Dispatch::empty(shards);
    for (index, child) in children {
        let output = child.and_then(Child::wait_with_output);
        match output {
            Ok(out) if out.status.success() => {
                match proto::stats_line(&String::from_utf8_lossy(&out.stdout)) {
                    Some(stats) => {
                        trace::event("shard.served", |a| {
                            a.num("shard", index as u64)
                                .str("endpoint", "local")
                                .num("jobs", stats.jobs);
                        });
                        dispatch.shard_stats[index] = Some(stats);
                    }
                    None => {
                        trace::event("shard.fallback", |a| {
                            a.num("shard", index as u64)
                                .str("endpoint", "local")
                                .str("error", "no stats line");
                        });
                        dispatch.failed.push(index);
                    }
                }
            }
            _ => {
                trace::event("shard.fallback", |a| {
                    a.num("shard", index as u64)
                        .str("endpoint", "local")
                        .str("error", "worker exited abnormally");
                });
                dispatch.failed.push(index);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let completed: Vec<usize> =
        (0..shards).filter(|&index| dispatch.shard_stats[index].is_some()).collect();
    if !completed.is_empty() {
        dispatch.endpoints.push(EndpointStats {
            endpoint: "local".to_string(),
            stats: EngineStats::merged(
                completed.iter().filter_map(|&index| dispatch.shard_stats[index].as_ref()),
            ),
            shards: completed,
        });
    }
    Ok(dispatch)
}

/// Remote dispatch: one thread per shard walks the endpoint ring from
/// the shard's round-robin home, trying each endpoint at most once,
/// until a shard request succeeds or the fleet is exhausted. Every
/// failure is logged to stderr and absorbed — the coordinator's gap-fill
/// is the backstop, so a dead fleet degrades to a single-process run
/// instead of an error.
fn dispatch_remote(sharded: &ShardedStudy, shards: usize, transport: &RemoteTransport) -> Dispatch {
    if transport.endpoints.is_empty() {
        let mut dispatch = Dispatch::empty(shards);
        dispatch.failed = (0..shards).collect();
        return dispatch;
    }
    let assignment = assign_round_robin(shards, transport.endpoints.len());
    let study = Arc::new(sharded.clone());
    let endpoints = Arc::new(transport.endpoints.clone());
    let timeout = transport.timeout;
    let handles: Vec<std::thread::JoinHandle<Option<(usize, EngineStats)>>> = assignment
        .into_iter()
        .enumerate()
        .map(|(index, home)| {
            let study = Arc::clone(&study);
            let endpoints = Arc::clone(&endpoints);
            std::thread::spawn(move || {
                for attempt in 0..endpoints.len() {
                    let which = (home + attempt) % endpoints.len();
                    let endpoint = &endpoints[which];
                    trace::event("shard.dispatch", |a| {
                        a.num("shard", index as u64)
                            .num("attempt", attempt as u64)
                            .str("endpoint", endpoint);
                    });
                    match request_shard(endpoint, &study, index, shards, timeout) {
                        Ok(stats) => {
                            trace::event("shard.served", |a| {
                                a.num("shard", index as u64)
                                    .str("endpoint", endpoint)
                                    .num("jobs", stats.jobs);
                            });
                            return Some((which, stats));
                        }
                        Err(why) => {
                            let last = attempt + 1 == endpoints.len();
                            trace::event(
                                if last { "shard.fallback" } else { "shard.retry" },
                                |a| {
                                    a.num("shard", index as u64)
                                        .str("endpoint", endpoint)
                                        .str("error", &why);
                                },
                            );
                            let next = if last {
                                "; no endpoints left, the coordinator recomputes the range"
                            } else {
                                "; retrying on the next endpoint"
                            };
                            trace::diag(&format!(
                                "shard {index}/{shards}: {endpoint}: {why}{next}"
                            ));
                        }
                    }
                }
                None
            })
        })
        .collect();

    let mut dispatch = Dispatch::empty(shards);
    let mut per_endpoint: Vec<(Vec<usize>, EngineStats)> =
        vec![(Vec::new(), EngineStats::zero()); transport.endpoints.len()];
    for (index, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Some((which, stats))) => {
                per_endpoint[which].0.push(index);
                per_endpoint[which].1.absorb(&stats);
                dispatch.shard_stats[index] = Some(stats);
            }
            _ => dispatch.failed.push(index),
        }
    }
    dispatch.endpoints = transport
        .endpoints
        .iter()
        .zip(per_endpoint)
        .filter(|(_, (served, _))| !served.is_empty())
        .map(|(endpoint, (served, stats))| EndpointStats {
            endpoint: endpoint.clone(),
            shards: served,
            stats,
        })
        .collect();
    dispatch
}

/// One remote dispatch attempt: send the shard as a serve request, read
/// one response line under the transport deadline, and pull the batch
/// statistics out of it. Every failure mode — refused connection,
/// stalled endpoint, truncated line, unparseable or rejecting reply —
/// comes back as a description for the retry loop's log line.
fn request_shard(
    endpoint: &str,
    study: &ShardedStudy,
    shard_index: usize,
    shard_count: usize,
    timeout: Duration,
) -> Result<EngineStats, String> {
    let request = ShardRequest { study, shard_index, shard_count };
    let line = serde_json::to_string(&request).expect("shard request serializes");
    let mut client =
        proto::LineClient::connect(endpoint, timeout).map_err(|e| format!("connect: {e}"))?;
    let reply = client.request(&line).map_err(|e| e.to_string())?;
    let value: Value =
        serde_json::from_str(&reply).map_err(|e| format!("unparseable response: {e}"))?;
    if value.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err(match value.get("error").and_then(Value::as_str) {
            Some(why) => format!("endpoint rejected the shard: {why}"),
            None => "response is neither success nor error".to_string(),
        });
    }
    value
        .get("stats")
        .and_then(proto::stats_from_value)
        .ok_or_else(|| "response carries no usable stats".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_disjoint_and_balanced() {
        for len in [0usize, 1, 2, 7, 12, 100] {
            for shards in [1usize, 2, 3, 5, 16] {
                let ranges = partition(len, shards);
                assert_eq!(ranges.len(), shards);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges[shards - 1].end, len);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "len={len} shards={shards}");
                }
                let sizes: Vec<usize> = ranges.iter().map(|range| range.len()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced {sizes:?}");
            }
        }
        assert_eq!(partition(5, 0).len(), 1);
    }

    #[test]
    fn round_robin_assignment_is_total_and_balanced() {
        for shards in [0usize, 1, 2, 7, 12, 100] {
            for endpoints in [1usize, 2, 3, 5, 16] {
                let assignment = assign_round_robin(shards, endpoints);
                assert_eq!(assignment.len(), shards, "every shard assigned exactly once");
                let mut load = vec![0usize; endpoints];
                for &endpoint in &assignment {
                    load[endpoint] += 1;
                }
                let (min, max) = (load.iter().min().unwrap(), load.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced {load:?}");
            }
        }
        assert_eq!(assign_round_robin(5, 0), vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn endpoint_lists_parse_and_reject_garbage() {
        assert_eq!(parse_endpoints("a:1, b:2").unwrap(), vec!["a:1", "b:2"]);
        assert_eq!(parse_endpoints("127.0.0.1:4850").unwrap(), vec!["127.0.0.1:4850"]);
        for bad in ["", " , ", "a:1,", "nohost", "h:0", "h:notaport", "a:1,,b:2"] {
            assert!(parse_endpoints(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn shard_requests_serialize_with_coords_and_study_body() {
        let study = ShardedStudy {
            sources: vec!["spec s { input a: u4; output o = a; }".to_string()],
            latencies: vec![2, 3],
            adder_archs: None,
            balance: None,
            verify_vectors: None,
            base: CompareOptions::default(),
        };
        let line =
            serde_json::to_string(&ShardRequest { study: &study, shard_index: 1, shard_count: 3 })
                .unwrap();
        assert!(line.contains("\"shard_index\":1"), "{line}");
        assert!(line.contains("\"shard_count\":3"), "{line}");
        // The study body reads back through the same parser serve uses.
        let value = serde_json::from_str(&line).unwrap();
        let back = ShardedStudy::from_value(&value).unwrap();
        assert_eq!(back.sources, study.sources);
        assert_eq!(back.latencies, study.latencies);
    }
}
