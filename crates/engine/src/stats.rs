//! Batch and engine statistics: how much work ran, how much the cache
//! absorbed, and how wide the pool was.

use crate::job::JobOutcome;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use std::fmt;
use std::time::Duration;

/// Counters for one batch (in [`BatchReport`]) or for an engine's lifetime
/// (from [`crate::Engine::stats`]).
///
/// # Hit/miss semantics
///
/// Every submitted job is classified as exactly one hit or one miss, so
/// `cache_hits + cache_misses == jobs` always holds for a batch:
///
/// * a job whose [`crate::JobKey`] is already resident — from an earlier
///   batch on this engine, or preloaded from a persistent cache directory
///   ([`crate::Engine::with_cache_dir`]) — is a **hit**;
/// * an in-batch duplicate (a later job with the same key as an earlier
///   one in the same batch) is a **hit**: it does no pipeline work and
///   shares the first occurrence's result;
/// * the first occurrence of each distinct uncached key is a **miss**.
///
/// With caching disabled ([`crate::EngineOptions::cache`] = false), batch
/// stats keep the same per-batch classification (in-batch duplicates still
/// count as hits) but nothing is recorded into the engine's lifetime
/// counters.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Jobs submitted.
    pub jobs: u64,
    /// Jobs served without pipeline work: resident cache entries plus
    /// in-batch duplicates (see the type-level semantics).
    pub cache_hits: u64,
    /// Jobs that required running the pipeline.
    pub cache_misses: u64,
    /// Results resident in the cache after the batch.
    pub cache_entries: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the batch (zero for lifetime snapshots).
    pub elapsed: Duration,
    /// Pipeline stages served from the stage cache (memory or disk)
    /// instead of being recomputed. Only cache-miss jobs run stages at
    /// all, so these counters describe sharing *within* the misses; like
    /// `workers` and `elapsed` they depend on the run shape (a sharded
    /// run shares fewer stages per process than a single-process run) and
    /// are blanked by report normalization.
    pub stage_hits: u64,
    /// Pipeline stages computed (stage-cache misses).
    pub stage_misses: u64,
}

impl EngineStats {
    /// Cache hits as a percentage of submitted jobs (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs as f64 * 100.0
        }
    }

    /// The all-zero counters — the identity of [`EngineStats::absorb`].
    pub fn zero() -> Self {
        EngineStats {
            jobs: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_entries: 0,
            workers: 0,
            elapsed: Duration::ZERO,
            stage_hits: 0,
            stage_misses: 0,
        }
    }

    /// Folds another batch's counters into this one, as when merging the
    /// per-shard statistics of a multi-process run: `jobs`, `cache_hits`,
    /// `cache_misses` and `workers` add (the job sets are disjoint and the
    /// pools ran side by side); `cache_entries` takes the maximum (each
    /// process sees the same shared store, so summing would double-count);
    /// `elapsed` takes the maximum (the batches overlapped in time).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.jobs += other.jobs;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_entries = self.cache_entries.max(other.cache_entries);
        self.workers += other.workers;
        self.elapsed = self.elapsed.max(other.elapsed);
        self.stage_hits += other.stage_hits;
        self.stage_misses += other.stage_misses;
    }

    /// Merges any number of batch statistics ([`EngineStats::absorb`]
    /// semantics), e.g. the per-shard stats of a sharded run.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a EngineStats>) -> EngineStats {
        let mut total = EngineStats::zero();
        for part in parts {
            total.absorb(part);
        }
        total
    }
}

impl Serialize for EngineStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("EngineStats", 9)?;
        st.serialize_field("jobs", &self.jobs)?;
        st.serialize_field("cache_hits", &self.cache_hits)?;
        st.serialize_field("cache_misses", &self.cache_misses)?;
        st.serialize_field("hit_rate_pct", &self.hit_rate())?;
        st.serialize_field("cache_entries", &self.cache_entries)?;
        st.serialize_field("workers", &self.workers)?;
        st.serialize_field("stage_hits", &self.stage_hits)?;
        st.serialize_field("stage_misses", &self.stage_misses)?;
        st.serialize_field("elapsed_ms", &(self.elapsed.as_secs_f64() * 1e3))?;
        st.end()
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs, {} cache hits / {} misses ({:.0}% hit rate), \
             {} cached results, {} workers",
            self.jobs,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate(),
            self.cache_entries,
            self.workers,
        )?;
        if self.stage_hits + self.stage_misses > 0 {
            write!(f, ", {} stage hits / {} stages computed", self.stage_hits, self.stage_misses)?;
        }
        if !self.elapsed.is_zero() {
            write!(f, ", {:.1} ms", self.elapsed.as_secs_f64() * 1e3)?;
        }
        Ok(())
    }
}

/// Attribution of one dispatch target's share of a multi-process run:
/// which shards it served and the merged [`EngineStats`] of that work.
/// A sharded run ([`crate::shard::run_sharded`]) reports one of these per
/// endpoint that did work — the `serve` endpoints of a `Remote`
/// transport, the `local` worker-process pool of a `Local` one, and the
/// `coordinator` itself when gap-fill recomputation ran — so the merged
/// totals stay auditable: every job in the sum can be pointed at the
/// machine that ran it.
#[derive(Clone, Debug)]
pub struct EndpointStats {
    /// Who did the work: a `host:port` endpoint, `local` for worker
    /// processes, or `coordinator` for in-process gap-fill.
    pub endpoint: String,
    /// The shard indices this endpoint completed.
    pub shards: Vec<usize>,
    /// The merged statistics of those shards
    /// ([`EngineStats::merged`] semantics).
    pub stats: EngineStats,
}

impl Serialize for EndpointStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("EndpointStats", 3)?;
        st.serialize_field("endpoint", &self.endpoint)?;
        st.serialize_field("shards", &self.shards)?;
        st.serialize_field("stats", &self.stats)?;
        st.end()
    }
}

impl fmt::Display for EndpointStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "endpoint {}: {} shard(s) {:?}, {}",
            self.endpoint,
            self.shards.len(),
            self.shards,
            self.stats
        )
    }
}

/// A snapshot of the fair scheduler's gauges ([`crate::sched::Scheduler::stats`]):
/// how deep the shared queue is, how many requests are interleaving right
/// now, and the lifetime dispatch counters. Served by the `serve` front
/// end's `{"stats": true}` introspection so an operator can see queueing
/// pressure without attaching a tracer.
#[derive(Clone, Debug)]
pub struct SchedStats {
    /// Worker threads in the shared pool.
    pub workers: usize,
    /// Tasks enqueued and not yet handed to a worker.
    pub queue_depth: u64,
    /// Requests with at least one unfinished task.
    pub active_requests: u64,
    /// Requests ever admitted to the queue.
    pub admitted_requests: u64,
    /// Requests whose every task has finished.
    pub completed_requests: u64,
    /// Tasks handed to a worker so far.
    pub dispatched_tasks: u64,
    /// Tasks that finished (including panicked ones).
    pub completed_tasks: u64,
    /// Tasks whose closure panicked (caught; the pool survived).
    pub panicked_tasks: u64,
    /// Cumulative enqueue→dispatch wait summed over dispatched tasks.
    pub total_wait: Duration,
}

impl SchedStats {
    /// Mean enqueue→dispatch wait per dispatched task (zero when idle).
    ///
    /// Computed in `u128` nanoseconds: `Duration`'s `Div` takes a `u32`
    /// divisor, and the previous `u32::try_from(...).unwrap_or(u32::MAX)`
    /// clamp silently inflated the mean once a long-lived service passed
    /// `u32::MAX` dispatched tasks.
    pub fn mean_wait(&self) -> Duration {
        if self.dispatched_tasks == 0 {
            return Duration::ZERO;
        }
        let mean_ns = self.total_wait.as_nanos() / u128::from(self.dispatched_tasks);
        Duration::from_nanos(u64::try_from(mean_ns).unwrap_or(u64::MAX))
    }
}

impl Serialize for SchedStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("SchedStats", 10)?;
        st.serialize_field("workers", &self.workers)?;
        st.serialize_field("queue_depth", &self.queue_depth)?;
        st.serialize_field("active_requests", &self.active_requests)?;
        st.serialize_field("admitted_requests", &self.admitted_requests)?;
        st.serialize_field("completed_requests", &self.completed_requests)?;
        st.serialize_field("dispatched_tasks", &self.dispatched_tasks)?;
        st.serialize_field("completed_tasks", &self.completed_tasks)?;
        st.serialize_field("panicked_tasks", &self.panicked_tasks)?;
        st.serialize_field("total_wait_ms", &(self.total_wait.as_secs_f64() * 1e3))?;
        st.serialize_field("mean_wait_ms", &(self.mean_wait().as_secs_f64() * 1e3))?;
        st.end()
    }
}

impl fmt::Display for SchedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} workers, {} queued, {} active / {} completed requests, \
             {} tasks dispatched ({:.1} ms mean wait)",
            self.workers,
            self.queue_depth,
            self.active_requests,
            self.completed_requests,
            self.dispatched_tasks,
            self.mean_wait().as_secs_f64() * 1e3,
        )
    }
}

/// Process-lifetime counters of a long-running service front end
/// ([`crate::serve`]), distinct from the **per-request** [`EngineStats`]
/// that travel inside each response's report: a service answers many
/// requests over one warm engine, so "how did this request do" (one
/// batch's hits/misses) and "what has this process absorbed so far"
/// (cumulative engine counters, request totals, uptime) are different
/// questions with different counters.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Study requests answered with a report.
    pub requests: u64,
    /// Requests rejected at the protocol layer (malformed JSON, unknown
    /// fields, oversized bodies, unparseable or invalid studies) — these
    /// never reach the engine.
    pub errors: u64,
    /// Time since the service started.
    pub uptime: Duration,
    /// The engine's cumulative counters ([`crate::Engine::stats`]) across
    /// every request served so far.
    pub engine: EngineStats,
}

impl Serialize for ServiceStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("ServiceStats", 4)?;
        st.serialize_field("requests", &self.requests)?;
        st.serialize_field("errors", &self.errors)?;
        st.serialize_field("uptime_ms", &(self.uptime.as_secs_f64() * 1e3))?;
        st.serialize_field("engine", &self.engine)?;
        st.end()
    }
}

impl fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests served, {} rejected, up {:.1} s; engine: {}",
            self.requests,
            self.errors,
            self.uptime.as_secs_f64(),
            self.engine,
        )
    }
}

/// Everything one [`crate::Engine::run`] call produces.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// The batch's statistics.
    pub stats: EngineStats,
}

impl BatchReport {
    /// Outcomes whose pipeline run succeeded.
    pub fn successes(&self) -> impl Iterator<Item = &JobOutcome> {
        self.outcomes.iter().filter(|o| o.result.is_ok())
    }

    /// Outcomes whose pipeline run failed (e.g. infeasible latency).
    pub fn failures(&self) -> impl Iterator<Item = &JobOutcome> {
        self.outcomes.iter().filter(|o| o.result.is_err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_jobs() {
        let stats = EngineStats { workers: 1, ..EngineStats::zero() };
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn zero_job_stats_serialize_a_finite_hit_rate() {
        // The zero-jobs guard in `hit_rate()` must reach the wire: an
        // empty grid (or a stats-only introspection request) serializes
        // `0.0`, never `NaN`/`null`, so downstream JSON consumers always
        // see a number.
        let json = serde_json::to_string(&EngineStats::zero()).unwrap();
        assert!(json.contains("\"jobs\":0"), "{json}");
        assert!(json.contains("\"hit_rate_pct\":0.0"), "{json}");
        assert!(!json.contains("null"), "{json}");
        assert!(!json.to_lowercase().contains("nan"), "{json}");
        let text = EngineStats::zero().to_string();
        assert!(text.contains("0% hit rate"), "{text}");
    }

    #[test]
    fn idle_service_stats_serialize_a_finite_hit_rate() {
        // A `{"stats":true}` request against a freshly started server
        // reports a zero-job engine; the embedded stats must stay clean
        // JSON numbers all the way down.
        let stats = ServiceStats {
            requests: 0,
            errors: 0,
            uptime: Duration::ZERO,
            engine: EngineStats::zero(),
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"requests\":0"), "{json}");
        assert!(json.contains("\"hit_rate_pct\":0.0"), "{json}");
        assert!(!json.contains("null"), "{json}");
        assert!(serde_json::from_str(&json).is_ok(), "{json}");
    }

    #[test]
    fn merge_sums_disjoint_work_and_maxes_shared_state() {
        let a = EngineStats {
            jobs: 4,
            cache_hits: 1,
            cache_misses: 3,
            cache_entries: 10,
            workers: 2,
            elapsed: Duration::from_millis(8),
            stage_hits: 6,
            stage_misses: 9,
        };
        let b = EngineStats {
            jobs: 5,
            cache_hits: 0,
            cache_misses: 5,
            cache_entries: 10,
            workers: 3,
            elapsed: Duration::from_millis(5),
            stage_hits: 1,
            stage_misses: 20,
        };
        let merged = EngineStats::merged([&a, &b]);
        assert_eq!(merged.jobs, 9);
        assert_eq!(merged.cache_hits, 1);
        assert_eq!(merged.cache_misses, 8);
        assert_eq!(merged.cache_hits + merged.cache_misses, merged.jobs);
        assert_eq!(merged.cache_entries, 10);
        assert_eq!(merged.workers, 5);
        assert_eq!(merged.elapsed, Duration::from_millis(8));
        // Stage work sums like job work: the shards ran disjoint stages.
        assert_eq!(merged.stage_hits, 7);
        assert_eq!(merged.stage_misses, 29);
        assert_eq!(EngineStats::merged([]).jobs, 0);
    }

    #[test]
    fn service_stats_serialize_and_display() {
        let stats = ServiceStats {
            requests: 3,
            errors: 1,
            uptime: Duration::from_millis(1500),
            engine: EngineStats { jobs: 9, cache_hits: 6, cache_misses: 3, ..EngineStats::zero() },
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"requests\":3"), "{json}");
        assert!(json.contains("\"errors\":1"), "{json}");
        assert!(json.contains("\"uptime_ms\":1500"), "{json}");
        assert!(json.contains("\"engine\":{"), "{json}");
        let text = stats.to_string();
        assert!(text.contains("3 requests served, 1 rejected"), "{text}");
    }

    #[test]
    fn endpoint_stats_serialize_and_display() {
        let stats = EndpointStats {
            endpoint: "127.0.0.1:4850".to_string(),
            shards: vec![0, 2],
            stats: EngineStats { jobs: 6, cache_hits: 0, cache_misses: 6, ..EngineStats::zero() },
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"endpoint\":\"127.0.0.1:4850\""), "{json}");
        assert!(json.contains("\"shards\":[0,2]"), "{json}");
        assert!(json.contains("\"stats\":{"), "{json}");
        let text = stats.to_string();
        assert!(text.contains("endpoint 127.0.0.1:4850: 2 shard(s) [0, 2]"), "{text}");
    }

    #[test]
    fn sched_stats_serialize_and_display() {
        let stats = SchedStats {
            workers: 4,
            queue_depth: 7,
            active_requests: 2,
            admitted_requests: 10,
            completed_requests: 8,
            dispatched_tasks: 100,
            completed_tasks: 93,
            panicked_tasks: 0,
            total_wait: Duration::from_millis(200),
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"workers\":4"), "{json}");
        assert!(json.contains("\"queue_depth\":7"), "{json}");
        assert!(json.contains("\"active_requests\":2"), "{json}");
        assert!(json.contains("\"total_wait_ms\":200"), "{json}");
        assert!(json.contains("\"mean_wait_ms\":2"), "{json}");
        assert!(serde_json::from_str(&json).is_ok(), "{json}");
        let text = stats.to_string();
        assert!(text.contains("4 workers, 7 queued"), "{text}");
        // Idle scheduler divides by zero nowhere.
        let idle = SchedStats {
            workers: 1,
            queue_depth: 0,
            active_requests: 0,
            admitted_requests: 0,
            completed_requests: 0,
            dispatched_tasks: 0,
            completed_tasks: 0,
            panicked_tasks: 0,
            total_wait: Duration::ZERO,
        };
        assert_eq!(idle.mean_wait(), Duration::ZERO);
    }

    #[test]
    fn mean_wait_is_exact_past_the_u32_divisor_boundary() {
        // 2^33 dispatched tasks at 100 ns each. The old computation
        // clamped the divisor to u32::MAX and reported ~200 ns — double
        // the true mean — once a long-lived service crossed the boundary.
        let tasks: u64 = 1 << 33;
        let stats = SchedStats {
            workers: 8,
            queue_depth: 0,
            active_requests: 0,
            admitted_requests: tasks,
            completed_requests: tasks,
            dispatched_tasks: tasks,
            completed_tasks: tasks,
            panicked_tasks: 0,
            total_wait: Duration::from_nanos(100u64 << 33),
        };
        assert_eq!(stats.total_wait.as_nanos(), u128::from(tasks) * 100);
        assert_eq!(stats.mean_wait(), Duration::from_nanos(100));
        // Exactly at the boundary the old clamp happened to be fine;
        // stay exact there too.
        let at_boundary = SchedStats {
            dispatched_tasks: u64::from(u32::MAX),
            total_wait: Duration::from_nanos(7) * u32::MAX,
            ..stats
        };
        assert_eq!(at_boundary.mean_wait(), Duration::from_nanos(7));
    }

    #[test]
    fn display_mentions_hits_and_workers() {
        let stats = EngineStats {
            jobs: 4,
            cache_hits: 4,
            cache_misses: 0,
            cache_entries: 4,
            workers: 2,
            elapsed: Duration::from_millis(5),
            stage_hits: 0,
            stage_misses: 0,
        };
        let text = stats.to_string();
        assert!(text.contains("100% hit rate"), "{text}");
        assert!(text.contains("2 workers"), "{text}");
        assert!(!text.contains("stage"), "no stage noise when none ran: {text}");
        let staged = EngineStats { stage_hits: 3, stage_misses: 2, ..stats };
        assert!(staged.to_string().contains("3 stage hits / 2 stages computed"));
    }
}
