//! Study results: one labelled cell per grid coordinate, renderable as an
//! aligned text table or machine-readable JSON, plus the batch statistics
//! of the run that produced them.

use crate::job::JobResult;
use crate::key::JobKey;
use crate::stats::EngineStats;
use crate::study::cell_comparison;
use bittrans_core::{Comparison, SweepPoint};
use bittrans_rtl::AdderArch;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use std::fmt::Write as _;
use std::sync::Arc;

/// One cell of a [`crate::Study`] grid: the axis coordinates plus the
/// comparison computed (or the pipeline error hit) at that point.
#[derive(Clone, Debug)]
pub struct StudyCell {
    /// Specification name.
    pub spec: String,
    /// Latency λ in cycles.
    pub latency: u32,
    /// Adder micro-architecture of the cost model.
    pub adder_arch: AdderArch,
    /// Whether schedulers balanced operations across cycles.
    pub balance: bool,
    /// Random vectors spent on the built-in equivalence check.
    pub verify_vectors: usize,
    /// The cell's content-addressed job key.
    pub key: JobKey,
    /// Whether this cell did no fresh pipeline work (cache or in-grid
    /// duplicate).
    pub from_cache: bool,
    /// The comparison, shared with the engine's cache.
    pub result: Arc<JobResult>,
}

impl StudyCell {
    /// The comparison, when the cell's pipeline run succeeded.
    pub fn comparison(&self) -> Option<&Comparison> {
        cell_comparison(self)
    }

    /// The pipeline error, when the coordinate was infeasible.
    pub fn error(&self) -> Option<String> {
        self.result.as_ref().as_ref().err().map(|e| e.to_string())
    }
}

impl Serialize for StudyCell {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("StudyCell", 9)?;
        st.serialize_field("spec", &self.spec)?;
        st.serialize_field("latency", &self.latency)?;
        st.serialize_field("adder_arch", &self.adder_arch.to_string())?;
        st.serialize_field("balance", &self.balance)?;
        st.serialize_field("verify_vectors", &self.verify_vectors)?;
        st.serialize_field("key", &self.key.to_string())?;
        st.serialize_field("from_cache", &self.from_cache)?;
        match self.result.as_ref() {
            Ok(cmp) => {
                st.serialize_field("ok", &true)?;
                st.serialize_field("comparison", cmp)?;
            }
            Err(e) => {
                st.serialize_field("ok", &false)?;
                st.serialize_field("error", &e.to_string())?;
            }
        }
        st.end()
    }
}

/// Everything a [`crate::Study::run`] produces: per-cell comparisons with
/// their axis coordinates, and the [`EngineStats`] of the batch.
#[derive(Clone, Debug)]
pub struct StudyReport {
    /// One cell per grid coordinate, in grid order.
    pub cells: Vec<StudyCell>,
    /// Statistics of the batch that ran the distinct cells.
    pub stats: EngineStats,
}

impl StudyReport {
    /// Cells whose pipeline run succeeded.
    pub fn successes(&self) -> impl Iterator<Item = &StudyCell> {
        self.cells.iter().filter(|c| c.result.is_ok())
    }

    /// Cells whose coordinate was infeasible.
    pub fn failures(&self) -> impl Iterator<Item = &StudyCell> {
        self.cells.iter().filter(|c| c.result.is_err())
    }

    /// The feasible cells as Fig. 4 points (latency, both cycle lengths),
    /// in cell order — with a single latency axis this reproduces the
    /// serial `bittrans_core::latency_sweep` output exactly.
    pub fn sweep_points(&self) -> Vec<SweepPoint> {
        self.successes()
            .map(|cell| {
                let cmp = cell.comparison().expect("successes() yields Ok cells");
                SweepPoint {
                    latency: cell.latency,
                    original_ns: cmp.original.cycle_ns,
                    optimized_ns: cmp.optimized.cycle_ns,
                }
            })
            .collect()
    }

    /// Renders the study as an aligned text table: one row per cell with
    /// its coordinates, both cycle lengths, the paper's "Saved" and "Area"
    /// columns, and whether the cell was served from the cache.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20}{:>4}{:>16}{:>9}{:>8}{:>12}{:>12}{:>9}{:>9}{:>8}",
            "spec",
            "λ",
            "adder",
            "balance",
            "verify",
            "orig (ns)",
            "opt (ns)",
            "saved",
            "area Δ",
            "cached"
        );
        for cell in &self.cells {
            let prefix = format!(
                "{:<20}{:>4}{:>16}{:>9}{:>8}",
                cell.spec,
                cell.latency,
                cell.adder_arch.to_string(),
                if cell.balance { "on" } else { "off" },
                cell.verify_vectors,
            );
            match cell.result.as_ref() {
                Ok(cmp) => {
                    let _ = writeln!(
                        out,
                        "{prefix}{:>12.2}{:>12.2}{:>8.1}%{:>8.1}%{:>8}",
                        cmp.original.cycle_ns,
                        cmp.optimized.cycle_ns,
                        cmp.cycle_saved_pct(),
                        cmp.area_delta_pct(),
                        if cell.from_cache { "yes" } else { "no" },
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "{prefix}  error: {e}");
                }
            }
        }
        out
    }

    /// One human-readable line for request logs: cell totals plus the
    /// batch statistics of the run. Used by the `serve` front end (one
    /// line per answered request) where the full table would drown the
    /// log.
    pub fn summary(&self) -> String {
        format!(
            "{} cells ({} ok, {} failed); {}",
            self.cells.len(),
            self.successes().count(),
            self.failures().count(),
            self.stats,
        )
    }

    /// The report with its run shape erased: `elapsed`, `workers` and the
    /// stage counters zeroed, everything else untouched. Two runs of the
    /// same grid over the same cache state — single-process vs. sharded,
    /// direct vs. served — legitimately differ only in wall clock, pool
    /// width and stage sharing (a sharded run shares fewer stages per
    /// process, a warm run runs no stages at all), so serializing
    /// `normalized()` reports is the byte-identity comparison the
    /// shard/serve suites make. For already-serialized text use
    /// [`normalize_run_shape`].
    pub fn normalized(&self) -> StudyReport {
        let mut report = self.clone();
        report.stats.elapsed = std::time::Duration::ZERO;
        report.stats.workers = 0;
        report.stats.stage_hits = 0;
        report.stats.stage_misses = 0;
        report.stats.cache_entries = 0;
        report
    }

    /// The report as compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("study report serializes")
    }

    /// The report as pretty-printed JSON (the CLI `--json` format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("study report serializes")
    }
}

/// Blanks every `"elapsed_ms"` value in a serialized report or response
/// line (compact or pretty), leaving every other byte intact. Two runs
/// of the same grid over the same cache state differ *only* in wall
/// clock, so this is the normalization the serve and shard byte-identity
/// suites apply before comparing reports (the CI smoke jobs mirror it in
/// Python by popping the key). All occurrences are blanked because a
/// full serve response carries two — the lifetime service counters' and
/// the report's.
pub fn strip_elapsed_ms(json: &str) -> String {
    blank_number_values(json, "elapsed_ms")
}

/// Blanks every volatile run-shape value — `"elapsed_ms"`, `"workers"`,
/// `"stage_hits"`, `"stage_misses"` and `"cache_entries"` — in a
/// serialized report or response line (compact or pretty), leaving every
/// other byte intact. This is the textual counterpart of
/// [`StudyReport::normalized`], for call sites that only have serialized
/// output in hand (CLI stdout, CI smoke diffs, raw response lines).
///
/// `cache_entries` joined the list after differential fuzzing (replay
/// seed 32 of `fuzz --seed 31`) showed it counts the *whole store* —
/// when several studies share one result directory, two otherwise
/// identical runs of the same grid report different resident-entry
/// totals even though every cell and every hit/miss count agrees. The
/// store's population is a deployment fact, not a result.
pub fn normalize_run_shape(json: &str) -> String {
    ["elapsed_ms", "workers", "stage_hits", "stage_misses", "cache_entries"]
        .iter()
        .fold(json.to_string(), |acc, field| blank_number_values(&acc, field))
}

/// Blanks the numeric value after every `"<field>":` occurrence.
fn blank_number_values(json: &str, field: &str) -> String {
    let needle = format!("\"{field}\":");
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(start) = rest.find(&needle) {
        let value_start = start + needle.len();
        out.push_str(&rest[..value_start]);
        let tail = &rest[value_start..];
        let end = tail
            .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E' | ' '))
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

impl Serialize for StudyReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("StudyReport", 2)?;
        st.serialize_field("cells", &self.cells)?;
        st.serialize_field("stats", &self.stats)?;
        st.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Study};
    use bittrans_ir::Spec;

    fn report() -> StudyReport {
        let spec = Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap();
        Study::single(spec).latencies([0, 3]).verify_vectors([0]).run(&Engine::default())
    }

    #[test]
    fn text_table_has_coordinates_and_errors() {
        let r = report();
        let text = r.render_text();
        assert!(text.contains("ripple-carry"), "{text}");
        assert!(text.contains("error:"), "{text}");
        assert!(text.contains("saved"), "{text}");
        assert_eq!(text.lines().count(), 3, "{text}");
    }

    #[test]
    fn json_is_parseable_and_labelled() {
        let r = report();
        let v = serde_json::from_str(&r.to_json_pretty()).expect("valid JSON");
        let cells = v.get("cells").and_then(|c| c.as_array()).expect("cells array");
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("ok").and_then(|o| o.as_bool()), Some(false));
        assert!(cells[0].get("error").is_some());
        assert_eq!(cells[1].get("ok").and_then(|o| o.as_bool()), Some(true));
        let cmp = cells[1].get("comparison").expect("comparison present");
        assert!(cmp.get("optimized").and_then(|o| o.get("cycle_ns")).is_some());
        assert!(v.get("stats").and_then(|s| s.get("cache_misses")).is_some());
    }

    #[test]
    fn strip_elapsed_ms_blanks_only_the_wall_clock() {
        let r = report();
        let compact = r.to_json();
        let stripped = strip_elapsed_ms(&compact);
        assert_ne!(compact, stripped);
        assert!(stripped.contains("\"elapsed_ms\":}"), "{stripped}");
        // Idempotent, and inert on reports without the field.
        assert_eq!(strip_elapsed_ms(&stripped), stripped);
        assert_eq!(strip_elapsed_ms("{\"cells\":[]}"), "{\"cells\":[]}");
        // The pretty spelling (space after the colon) is blanked too.
        let pretty = strip_elapsed_ms("{\"elapsed_ms\": 12.5\n}");
        assert_eq!(pretty, "{\"elapsed_ms\":\n}");
        // Every occurrence goes — a serve response line carries two (the
        // service counters' and the report's).
        let twice = "{\"a\":{\"elapsed_ms\":1.5},\"b\":{\"elapsed_ms\":2.5}}";
        assert_eq!(strip_elapsed_ms(twice), "{\"a\":{\"elapsed_ms\":},\"b\":{\"elapsed_ms\":}}");
    }

    #[test]
    fn normalized_erases_only_the_run_shape() {
        let r = report();
        let mut wider = r.clone();
        wider.stats.workers += 3;
        wider.stats.elapsed += std::time::Duration::from_millis(7);
        wider.stats.stage_hits += 2;
        wider.stats.stage_misses += 5;
        assert_ne!(r.to_json(), wider.to_json());
        assert_eq!(r.normalized().to_json(), wider.normalized().to_json());
        // Different cell content survives normalization.
        let mut other = r.clone();
        other.cells.pop();
        assert_ne!(r.normalized().to_json(), other.normalized().to_json());
        // The textual form agrees with the structural one.
        assert_eq!(normalize_run_shape(&r.to_json()), normalize_run_shape(&wider.to_json()));
        assert!(normalize_run_shape(&r.to_json()).contains("\"workers\":,"));
        // Pretty spelling (space after the colon) is blanked too.
        assert_eq!(
            normalize_run_shape("{\"workers\": 4,\n\"elapsed_ms\": 1.5}"),
            "{\"workers\":,\n\"elapsed_ms\":}"
        );
    }

    #[test]
    fn sweep_points_skip_failures() {
        let r = report();
        let points = r.sweep_points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].latency, 3);
    }
}
