//! Fleet-scale differential fuzzing of the whole pipeline.
//!
//! [`run`] drives seeded random specifications ([`bittrans_benchmarks::
//! random_spec`]) through a full [`Study`] grid (latencies × adder
//! architectures × balance, verification on) and asserts the paper's
//! cross-configuration invariants on every case:
//!
//! * **adder equivalence** — at a fixed (latency, balance) coordinate,
//!   every adder architecture must agree on feasibility, on the error when
//!   infeasible, and on both schedules' cycle lengths (the schedule is
//!   adder-independent; the built-in equivalence check runs on every
//!   feasible cell because `verify_vectors > 0`);
//! * **latency monotonicity** — at a fixed (adder, balance) coordinate,
//!   the cycle length in δ is non-increasing as the latency budget λ
//!   relaxes, for both the conventional and the transformed schedule —
//!   the paper's core claim;
//! * **staged identity** — the staged pipeline
//!   ([`EngineOptions`]` { cache: true }`) produces byte-identical cells
//!   to the monolithic path (`cache: false`);
//! * **shard identity** (with a [`Differential`] transport) — the
//!   sharded/remote report is byte-identical, after
//!   [`normalize_run_shape`], to the single-process run over the same
//!   grid and starting cache state;
//! * **panic freedom** — a case that panics anywhere in the pipeline is
//!   caught and reported as a violation instead of killing the run.
//!
//! Every case is reproducible from its seed alone: the generator shape is
//! derived from the seed ([`Shape::of`]), so `bittrans fuzz --replay SEED`
//! re-runs exactly one case. Progress and violations ride the
//! [`trace`](crate::trace) collector as `fuzz.*` spans and events.

use crate::report::{normalize_run_shape, StudyCell, StudyReport};
use crate::shard::{self, ShardOptions, ShardedStudy, Transport};
use crate::study::Study;
use crate::trace;
use crate::{Engine, EngineOptions};
use bittrans_benchmarks::{random_spec, RandomSpecOptions};
use bittrans_core::CompareOptions;
use bittrans_rtl::AdderArch;
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::time::Instant;

/// The latency axis every case sweeps — small enough to keep throughput
/// up, wide enough that monotonicity has four points to bite on.
pub const LATENCIES: [u32; 4] = [2, 3, 4, 6];

/// Random vectors spent on each cell's built-in equivalence check.
pub const VERIFY_VECTORS: usize = 8;

/// The adder-architecture axis: all of them.
pub const ADDERS: [AdderArch; 3] =
    [AdderArch::RippleCarry, AdderArch::CarryLookahead, AdderArch::CarrySelect];

/// Generator shape of one fuzz case, derived from the case seed alone
/// ([`Shape::of`]) so a seed is always replayable without the run that
/// produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Many inputs, shallow graph, wide operands.
    Wide,
    /// Few inputs, long dependence chains.
    Deep,
    /// Multiplication-dominated.
    MulHeavy,
    /// The smallest legal generator configuration (`ops=1`, `inputs=1`,
    /// `min_width == max_width`).
    Degenerate,
}

impl Shape {
    /// The shape of the case with this seed.
    pub fn of(seed: u64) -> Shape {
        match seed % 4 {
            0 => Shape::Wide,
            1 => Shape::Deep,
            2 => Shape::MulHeavy,
            _ => Shape::Degenerate,
        }
    }

    /// Stable lowercase name used in reports and trace attributes.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Wide => "wide",
            Shape::Deep => "deep",
            Shape::MulHeavy => "mul_heavy",
            Shape::Degenerate => "degenerate",
        }
    }

    /// The generator options of this shape; `mul_prob` (when given)
    /// overrides the shape's multiplication probability.
    pub fn options(self, mul_prob: Option<f64>) -> RandomSpecOptions {
        let mut o = match self {
            Shape::Wide => {
                RandomSpecOptions { ops: 10, inputs: 8, min_width: 4, max_width: 20, mul_prob: 0.1 }
            }
            Shape::Deep => RandomSpecOptions {
                ops: 14,
                inputs: 2,
                min_width: 4,
                max_width: 10,
                mul_prob: 0.05,
            },
            Shape::MulHeavy => {
                RandomSpecOptions { ops: 8, inputs: 4, min_width: 3, max_width: 10, mul_prob: 0.6 }
            }
            Shape::Degenerate => {
                RandomSpecOptions { ops: 1, inputs: 1, min_width: 7, max_width: 7, mul_prob: 0.5 }
            }
        };
        if let Some(p) = mul_prob {
            o.mul_prob = p;
        }
        o
    }
}

/// The invariant a [`Violation`] broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Invariant {
    /// Adder architectures disagreed at one grid coordinate.
    AdderEquivalence,
    /// Cycle length grew as the latency budget relaxed.
    LatencyMonotonic,
    /// Staged and monolithic pipelines produced different cells.
    StagedIdentity,
    /// Sharded/remote report differed from single-process.
    ShardIdentity,
    /// The pipeline panicked.
    Panic,
}

impl Invariant {
    /// Stable snake_case name used in the JSON document.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::AdderEquivalence => "adder_equivalence",
            Invariant::LatencyMonotonic => "latency_monotonic",
            Invariant::StagedIdentity => "staged_identity",
            Invariant::ShardIdentity => "shard_identity",
            Invariant::Panic => "panic",
        }
    }
}

/// One broken invariant, attributed to the seed that reproduces it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The case seed; `bittrans fuzz --replay <seed>` reproduces it.
    pub seed: u64,
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Deterministic human-readable detail.
    pub detail: String,
}

/// How to cross-check the distributed path: the sharded (or remote) run's
/// store, shard count, and transport.
#[derive(Clone, Debug)]
pub struct Differential {
    /// The result store. A [`Transport::Local`] run uses a fresh
    /// `case-<seed>` subdirectory per case so both sides start cold; a
    /// [`Transport::Remote`] run uses this directory as-is because the
    /// serve fleet persists into its own configured store — point it at
    /// the fleet's shared directory, fresh for the fuzzed seeds.
    pub cache_dir: PathBuf,
    /// Shards to cut each case's job list into.
    pub shards: usize,
    /// Where the shards run.
    pub transport: Transport,
}

/// Everything [`run`] needs.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Cases to run.
    pub count: usize,
    /// Seed of the first case; case `i` has seed `seed + i` (wrapping).
    pub seed: u64,
    /// Overrides every shape's multiplication probability when given.
    pub mul_prob: Option<f64>,
    /// Worker threads per engine (`None`: all cores).
    pub workers: Option<usize>,
    /// Cross-check the distributed path when given.
    pub differential: Option<Differential>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions { count: 100, seed: 0, mul_prob: None, workers: None, differential: None }
    }
}

/// What one case did.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// The case seed.
    pub seed: u64,
    /// The generator shape derived from the seed.
    pub shape: Shape,
    /// Grid cells evaluated (0 when the case panicked before reporting).
    pub cells: usize,
    /// Cells whose pipeline run succeeded.
    pub feasible: usize,
    /// Invariant checks performed, keyed by invariant.
    pub checks: Vec<(Invariant, usize)>,
    /// Invariants broken by this case.
    pub violations: Vec<Violation>,
}

/// Aggregated result of a fuzz run; [`to_json`](FuzzReport::to_json) is
/// the `bittrans fuzz --json` document.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Seed of the first case.
    pub seed: u64,
    /// Cases requested (and run).
    pub count: usize,
    /// The `mul_prob` override, when one was given.
    pub mul_prob: Option<f64>,
    /// Whether the distributed path was cross-checked.
    pub differential: bool,
    /// Case count per shape name, in [`Shape`] declaration order.
    pub shapes: Vec<(&'static str, usize)>,
    /// Total grid cells evaluated.
    pub cells: usize,
    /// Cells whose pipeline run succeeded.
    pub feasible: usize,
    /// Checks performed per invariant, in [`Invariant`] declaration order.
    pub checks: Vec<(Invariant, usize)>,
    /// Violations per invariant, same order as `checks`.
    pub violations: Vec<(Invariant, usize)>,
    /// Seeds of all failing cases, in case order, deduplicated.
    pub failing_seeds: Vec<u64>,
    /// Every violation, in case order.
    pub details: Vec<Violation>,
    /// Wall-clock of the whole run.
    pub elapsed_ms: u128,
}

impl FuzzReport {
    /// Total violations across all invariants.
    pub fn total_violations(&self) -> usize {
        self.violations.iter().map(|&(_, n)| n).sum()
    }

    /// The run as a deterministic JSON document (`schema`
    /// `bittrans-fuzz-v1`). Everything except `elapsed_ms` is a pure
    /// function of `(seed, count, options)`; `bittrans report normalize`
    /// blanks `elapsed_ms` for byte comparisons.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"bittrans-fuzz-v1\",\n");
        out.push_str(&format!("  \"seed\": {},\n  \"count\": {},\n", self.seed, self.count));
        match self.mul_prob {
            Some(p) => out.push_str(&format!("  \"mul_prob\": {p},\n")),
            None => out.push_str("  \"mul_prob\": null,\n"),
        }
        out.push_str(&format!("  \"differential\": {},\n", self.differential));
        out.push_str("  \"shapes\": {");
        for (i, (name, n)) in self.shapes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {n}"));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"cells\": {},\n  \"feasible\": {},\n",
            self.cells, self.feasible
        ));
        out.push_str("  \"checks\": {");
        for (i, (inv, n)) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {n}", inv.name()));
        }
        out.push_str("},\n  \"violations\": {");
        for (i, (inv, n)) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {n}", inv.name()));
        }
        out.push_str(&format!(", \"total\": {}}},\n", self.total_violations()));
        out.push_str("  \"failing_seeds\": [");
        for (i, s) in self.failing_seeds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&s.to_string());
        }
        out.push_str("],\n  \"details\": [\n");
        for (i, v) in self.details.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seed\": {}, \"invariant\": \"{}\", \"detail\": {}}}{}\n",
                v.seed,
                v.invariant.name(),
                json_escape(&v.detail),
                if i + 1 == self.details.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!("  ],\n  \"elapsed_ms\": {}\n}}\n", self.elapsed_ms));
        out
    }

    /// A short human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "fuzz: {} cases (seed {}..), {} cells, {} feasible, {} violations in {} ms\n",
            self.count,
            self.seed,
            self.cells,
            self.feasible,
            self.total_violations(),
            self.elapsed_ms
        );
        for (name, n) in &self.shapes {
            out.push_str(&format!("  shape {name:<11} {n} cases\n"));
        }
        for ((inv, checked), (_, broken)) in self.checks.iter().zip(&self.violations) {
            out.push_str(&format!("  {:<18} {checked} checks, {broken} violations\n", inv.name()));
        }
        for v in &self.details {
            out.push_str(&format!(
                "  FAIL seed {} [{}]: {} (replay: bittrans fuzz --replay {})\n",
                v.seed,
                v.invariant.name(),
                v.detail,
                v.seed
            ));
        }
        out
    }
}

/// JSON string literal with the escapes the document needs.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The study grid every case runs: the fixed latency/adder/balance axes
/// over one generated spec, verification on.
fn case_study(spec: bittrans_ir::Spec) -> Study {
    let base = CompareOptions::builder()
        .verify_vectors(VERIFY_VECTORS)
        .build()
        .expect("fuzz base options are valid");
    Study::single(spec).latencies(LATENCIES).adder_archs(ADDERS).balance_both().base_options(base)
}

/// Per-cell facts the invariants compare. `Err` carries the pipeline
/// error text; `Ok` carries (original cycle δ, optimized cycle δ).
type CellFact = Result<(u32, u32), String>;

/// One feasible cell along a latency axis: (λ, original δ, optimized δ).
type LatencyPoint = (u32, u32, u32);

fn fact(cell: &StudyCell) -> CellFact {
    match cell.comparison() {
        Some(cmp) => Ok((cmp.original.cycle_delta, cmp.optimized.cycle_delta)),
        None => Err(cell.error().unwrap_or_default()),
    }
}

fn fact_text(f: &CellFact) -> String {
    match f {
        Ok((orig, opt)) => format!("ok(original {orig}δ, optimized {opt}δ)"),
        Err(e) => format!("error({e})"),
    }
}

/// Invariant (a): at each (latency, balance) coordinate all adder
/// architectures agree on feasibility, error, and both cycle lengths.
fn check_adder_equivalence(seed: u64, report: &StudyReport, out: &mut Vec<Violation>) -> usize {
    let mut groups: BTreeMap<(u32, bool), Vec<(AdderArch, CellFact)>> = BTreeMap::new();
    for cell in &report.cells {
        groups.entry((cell.latency, cell.balance)).or_default().push((cell.adder_arch, fact(cell)));
    }
    let checks = groups.len();
    for ((latency, balance), cells) in groups {
        let Some((first_arch, first)) = cells.first() else { continue };
        for (arch, f) in &cells[1..] {
            if f != first {
                out.push(Violation {
                    seed,
                    invariant: Invariant::AdderEquivalence,
                    detail: format!(
                        "latency {latency} balance {balance}: {} {} but {} {}",
                        first_arch.code(),
                        fact_text(first),
                        arch.code(),
                        fact_text(f)
                    ),
                });
            }
        }
    }
    checks
}

/// Invariant (b): at each (adder, balance) coordinate, both schedules'
/// cycle lengths are non-increasing over the feasible latencies.
fn check_latency_monotonic(seed: u64, report: &StudyReport, out: &mut Vec<Violation>) -> usize {
    let mut groups: BTreeMap<(String, bool), Vec<LatencyPoint>> = BTreeMap::new();
    for cell in &report.cells {
        if let Some(cmp) = cell.comparison() {
            groups.entry((cell.adder_arch.code().to_string(), cell.balance)).or_default().push((
                cell.latency,
                cmp.original.cycle_delta,
                cmp.optimized.cycle_delta,
            ));
        }
    }
    let checks = groups.len();
    for ((arch, balance), mut points) in groups {
        points.sort_unstable();
        for pair in points.windows(2) {
            let (lo, orig_lo, opt_lo) = pair[0];
            let (hi, orig_hi, opt_hi) = pair[1];
            for (which, at_lo, at_hi) in
                [("original", orig_lo, orig_hi), ("optimized", opt_lo, opt_hi)]
            {
                if at_hi > at_lo {
                    out.push(Violation {
                        seed,
                        invariant: Invariant::LatencyMonotonic,
                        detail: format!(
                            "{arch} balance {balance}: {which} cycle grew {at_lo}δ@λ={lo} \
                             → {at_hi}δ@λ={hi}"
                        ),
                    });
                }
            }
        }
    }
    checks
}

/// Invariant (d): the staged pipeline's cells are byte-identical to the
/// monolithic path's. Cells (not whole reports) because engine cache
/// statistics legitimately differ when one side keeps no cache at all.
fn check_staged_identity(
    seed: u64,
    staged: &StudyReport,
    study: &Study,
    workers: Option<usize>,
    out: &mut Vec<Violation>,
) {
    let monolithic = Engine::new(EngineOptions { workers, cache: false });
    let mono = study.run(&monolithic);
    let a = serde_json::to_string(&staged.cells).expect("cells serialize");
    let b = serde_json::to_string(&mono.cells).expect("cells serialize");
    if a != b {
        out.push(Violation {
            seed,
            invariant: Invariant::StagedIdentity,
            detail: format!("staged and monolithic cells differ: {}", first_diff(&a, &b)),
        });
    }
}

/// Invariant (c): the sharded/remote report normalizes byte-identical to
/// the single-process one.
fn check_shard_identity(
    seed: u64,
    reference: &StudyReport,
    sharded: &ShardedStudy,
    diff: &Differential,
    out: &mut Vec<Violation>,
) {
    let dir = match &diff.transport {
        Transport::Local(_) => diff.cache_dir.join(format!("case-{seed}")),
        Transport::Remote(_) => diff.cache_dir.clone(),
    };
    let options = ShardOptions { shards: diff.shards, transport: diff.transport.clone() };
    match shard::run_sharded(sharded, &dir, &options) {
        Ok(run) => {
            let a = normalize_run_shape(&reference.to_json());
            let b = normalize_run_shape(&run.report.to_json());
            if a != b {
                out.push(Violation {
                    seed,
                    invariant: Invariant::ShardIdentity,
                    detail: format!(
                        "sharded report differs from single-process: {}",
                        first_diff(&a, &b)
                    ),
                });
            }
        }
        Err(e) => out.push(Violation {
            seed,
            invariant: Invariant::ShardIdentity,
            detail: format!("sharded run failed: {e}"),
        }),
    }
    if matches!(diff.transport, Transport::Local(_)) {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A short deterministic description of where two strings diverge.
fn first_diff(a: &str, b: &str) -> String {
    let at = a.bytes().zip(b.bytes()).position(|(x, y)| x != y).unwrap_or(a.len().min(b.len()));
    let excerpt = |s: &str| {
        let start = at.saturating_sub(20);
        let end = (at + 40).min(s.len());
        s.get(start..end).unwrap_or("<non-utf8 boundary>").replace('\n', " ")
    };
    format!("byte {at}: `{}` vs `{}`", excerpt(a), excerpt(b))
}

/// Runs one case: generate the spec for `seed`, run the grid through the
/// staged engine, and check every invariant. A panic anywhere is caught
/// and reported as a [`Invariant::Panic`] violation.
pub fn run_case(seed: u64, options: &FuzzOptions) -> CaseOutcome {
    let shape = Shape::of(seed);
    let _span = trace::span_attrs("fuzz.case", |a| {
        a.num("seed", seed).str("shape", shape.name());
    });
    let mut violations = Vec::new();
    let mut checks: Vec<(Invariant, usize)> = Vec::new();
    let mut cells = 0;
    let mut feasible = 0;
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let spec = random_spec(seed, &shape.options(options.mul_prob));
        let study = case_study(spec.clone());
        let staged = Engine::new(EngineOptions { workers: options.workers, cache: true });
        let staged = match &options.differential {
            // Mirror the sharded run's disk-backed starting state so the
            // reports can be compared byte-for-byte: both sides cold.
            Some(diff) => {
                let dir = diff.cache_dir.join(format!("ref-{seed}"));
                let engine = staged.with_cache_dir(&dir)?;
                let report = study.run(&engine);
                let _ = std::fs::remove_dir_all(&dir);
                report
            }
            None => study.run(&staged),
        };
        let mut violations = Vec::new();
        let mut checks = Vec::new();
        checks.push((
            Invariant::AdderEquivalence,
            check_adder_equivalence(seed, &staged, &mut violations),
        ));
        checks.push((
            Invariant::LatencyMonotonic,
            check_latency_monotonic(seed, &staged, &mut violations),
        ));
        check_staged_identity(seed, &staged, &study, options.workers, &mut violations);
        checks.push((Invariant::StagedIdentity, 1));
        if let Some(diff) = &options.differential {
            let sharded = ShardedStudy {
                sources: vec![spec.to_canonical()],
                latencies: LATENCIES.to_vec(),
                adder_archs: Some(ADDERS.to_vec()),
                // Same axis order as `Study::balance_both` so grid (and
                // therefore cell) order matches the reference report.
                balance: Some(vec![true, false]),
                verify_vectors: None,
                base: CompareOptions::builder()
                    .verify_vectors(VERIFY_VECTORS)
                    .build()
                    .expect("fuzz base options are valid"),
            };
            check_shard_identity(seed, &staged, &sharded, diff, &mut violations);
            checks.push((Invariant::ShardIdentity, 1));
        }
        let feasible = staged.successes().count();
        Ok::<_, std::io::Error>((staged.cells.len(), feasible, checks, violations))
    }));
    match run {
        Ok(Ok((c, f, ch, v))) => {
            cells = c;
            feasible = f;
            checks = ch;
            violations = v;
        }
        Ok(Err(e)) => violations.push(Violation {
            seed,
            invariant: Invariant::Panic,
            detail: format!("cache directory unusable: {e}"),
        }),
        Err(payload) => {
            let text = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            violations.push(Violation {
                seed,
                invariant: Invariant::Panic,
                detail: format!("pipeline panicked: {text}"),
            });
        }
    }
    for v in &violations {
        trace::event("fuzz.violation", |a| {
            a.num("seed", v.seed).str("invariant", v.invariant.name()).str("detail", &v.detail);
        });
    }
    CaseOutcome { seed, shape, cells, feasible, checks, violations }
}

/// Runs `options.count` cases with seeds `options.seed..` and aggregates
/// a [`FuzzReport`].
pub fn run(options: &FuzzOptions) -> FuzzReport {
    let started = Instant::now();
    let _span = trace::span_attrs("fuzz.run", |a| {
        a.num("seed", options.seed).num("count", options.count as u64);
    });
    let invariants = [
        Invariant::AdderEquivalence,
        Invariant::LatencyMonotonic,
        Invariant::StagedIdentity,
        Invariant::ShardIdentity,
        Invariant::Panic,
    ];
    let mut shapes: Vec<(&'static str, usize)> =
        [Shape::Wide, Shape::Deep, Shape::MulHeavy, Shape::Degenerate]
            .iter()
            .map(|s| (s.name(), 0))
            .collect();
    let mut checks: Vec<(Invariant, usize)> = invariants.iter().map(|&i| (i, 0)).collect();
    let mut violations: Vec<(Invariant, usize)> = invariants.iter().map(|&i| (i, 0)).collect();
    let mut cells = 0;
    let mut feasible = 0;
    let mut failing_seeds = Vec::new();
    let mut details = Vec::new();
    for i in 0..options.count {
        let seed = options.seed.wrapping_add(i as u64);
        let outcome = run_case(seed, options);
        let shape_at = match outcome.shape {
            Shape::Wide => 0,
            Shape::Deep => 1,
            Shape::MulHeavy => 2,
            Shape::Degenerate => 3,
        };
        shapes[shape_at].1 += 1;
        cells += outcome.cells;
        feasible += outcome.feasible;
        // Every case is checked for panics by construction.
        checks[4].1 += 1;
        for (inv, n) in &outcome.checks {
            if let Some(slot) = checks.iter_mut().find(|(i, _)| i == inv) {
                slot.1 += n;
            }
        }
        if !outcome.violations.is_empty() {
            failing_seeds.push(seed);
        }
        for v in outcome.violations {
            if let Some(slot) = violations.iter_mut().find(|(i, _)| *i == v.invariant) {
                slot.1 += 1;
            }
            details.push(v);
        }
    }
    let report = FuzzReport {
        seed: options.seed,
        count: options.count,
        mul_prob: options.mul_prob,
        differential: options.differential.is_some(),
        shapes,
        cells,
        feasible,
        checks,
        violations,
        failing_seeds,
        details,
        elapsed_ms: started.elapsed().as_millis(),
    };
    trace::event("fuzz.done", |a| {
        a.num("cases", report.count as u64)
            .num("cells", report.cells as u64)
            .num("violations", report.total_violations() as u64)
            .num("elapsed_ms", report.elapsed_ms as u64);
    });
    report
}
