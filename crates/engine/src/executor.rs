//! The worker pool: a deterministic parallel `map` over a task list.
//!
//! Plain `std::thread` + channels — no async runtime. Tasks are pulled
//! from a shared queue (so slow jobs don't stall a fixed-stride worker),
//! results are slotted back by task index, and the output order therefore
//! equals the input order no matter how many workers run or how the OS
//! schedules them.

use crate::trace;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Applies `f` to every task on `workers` threads, returning results in
/// task order.
///
/// With `workers <= 1` (or a single task) everything runs on the calling
/// thread — same code path as the pool, minus the spawns — so serial and
/// parallel execution are behaviourally identical.
///
/// # Panics
///
/// Propagates the **first** panic from `f` with its original payload.
/// Sibling workers stop pulling tasks, finish their in-flight task, and
/// exit cleanly — the pool is torn down before the payload is rethrown,
/// so the caller sees exactly what the task panicked with, never a
/// poisoned-lock or scoped-thread surrogate.
pub fn map_ordered<T, R, F>(tasks: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let task_count = tasks.len();
    // When tracing, each task runs inside an `exec.task` span (parented
    // to the caller's open span even across the spawn boundary) whose
    // `queue_ns` attribute splits time-on-queue from time-on-CPU.
    let enqueued = trace::enabled().then(Instant::now);
    if workers <= 1 || task_count <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(index, task)| {
                let _span = task_span(trace::current_span_id(), index, enqueued);
                f(task)
            })
            .collect();
    }

    let parent = trace::current_span_id();
    let queue: Mutex<std::vec::IntoIter<(usize, T)>> =
        Mutex::new(tasks.into_iter().enumerate().collect::<Vec<_>>().into_iter());
    let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();

    // Panic containment: workers catch a panicking task, park the first
    // payload here and raise the abort flag; `resume_unwind` after the
    // scope rethrows it verbatim. Letting the panic unwind the worker
    // thread instead would reach the caller as `std::thread::scope`'s
    // generic "a scoped thread panicked" — the original payload lost —
    // and any sibling that touched a mutex the panicking thread had
    // poisoned would die on the poison instead of exiting cleanly.
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let abort = AtomicBool::new(false);

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(task_count).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(task_count) {
            let result_tx = result_tx.clone();
            let queue = &queue;
            let f = &f;
            let first_panic = &first_panic;
            let abort = &abort;
            scope.spawn(move || loop {
                if abort.load(Ordering::SeqCst) {
                    return;
                }
                // Take one task; don't hold the queue lock while working.
                // The iterator stays valid across a poisoning (it is only
                // advanced, never left mid-update), so recover the guard.
                let next = queue.lock().unwrap_or_else(PoisonError::into_inner).next();
                match next {
                    Some((index, task)) => {
                        let outcome = {
                            let _span = task_span(parent, index, enqueued);
                            catch_unwind(AssertUnwindSafe(|| f(task)))
                        };
                        match outcome {
                            // A send error means the receiver is gone
                            // because a sibling already panicked; stop.
                            Ok(result) => {
                                if result_tx.send((index, result)).is_err() {
                                    return;
                                }
                            }
                            Err(payload) => {
                                abort.store(true, Ordering::SeqCst);
                                let mut slot =
                                    first_panic.lock().unwrap_or_else(PoisonError::into_inner);
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                return;
                            }
                        }
                    }
                    None => return,
                }
            });
        }
        drop(result_tx);
        for (index, result) in result_rx {
            slots[index] = Some(result);
        }
    });

    if let Some(payload) = first_panic.lock().unwrap_or_else(PoisonError::into_inner).take() {
        resume_unwind(payload);
    }
    slots.into_iter().map(|slot| slot.expect("worker pool completed every task")).collect()
}

/// Opens one task's trace span: `queue_ns` is how long the task sat on
/// the queue before a worker picked it up; the span's own duration is
/// the run time.
fn task_span(parent: u64, index: usize, enqueued: Option<Instant>) -> trace::Span {
    trace::span_under(parent, "exec.task", |a| {
        a.num("index", index as u64);
        if let Some(enqueued) = enqueued {
            a.num("queue_ns", u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_across_worker_counts() {
        let tasks: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = tasks.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = map_ordered(tasks.clone(), workers, |x| x * x);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn runs_tasks_exactly_once() {
        let counter = AtomicUsize::new(0);
        let got = map_ordered((0..100).collect(), 4, |x: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let barrier = std::sync::Barrier::new(2);
        map_ordered(vec![0, 1], 2, |_| {
            // Both tasks must be in-flight at once to pass the barrier.
            barrier.wait();
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(seen.lock().unwrap().len(), 2);
    }

    #[test]
    fn a_panicking_task_propagates_its_original_payload() {
        // Regression: the panic used to unwind the worker thread, so the
        // caller saw `std::thread::scope`'s generic "a scoped thread
        // panicked" message and sibling workers could die on the poisoned
        // task-queue mutex. The original payload must surface.
        for workers in [2, 4, 8] {
            let caught = std::panic::catch_unwind(|| {
                map_ordered((0..32).collect::<Vec<u32>>(), workers, |x| {
                    if x == 3 {
                        panic!("boom at {x}");
                    }
                    x
                })
            });
            let payload = caught.expect_err("the panic must propagate");
            let text = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
                .unwrap_or_default();
            assert!(
                text.contains("boom at 3"),
                "workers = {workers}: payload {text:?} is not the original panic"
            );
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = map_ordered(Vec::<u32>::new(), 8, |x| x);
        assert!(got.is_empty());
    }
}
