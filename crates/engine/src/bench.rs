//! The performance-trajectory harness behind `bittrans bench`: a small,
//! self-contained benchmark suite over the real engine, service and shard
//! coordinator, reported as one JSON document (`BENCH_<n>.json` in the
//! repository root tracks it release over release).
//!
//! Seven timed metric groups, each exercising a different layer:
//!
//! * **throughput** — jobs/second of one cold batch at 1, 2 and 4
//!   workers, on a fresh engine each time ([`crate::executor`] scaling);
//! * **cache** — the same batch cold then warm on one engine, so the
//!   speedup is the price of the pipeline relative to a content-addressed
//!   hit ([`crate::cache`]);
//! * **incremental** — a verify-heavy grid walked point by point on one
//!   engine, so every point after the first resolves its extract,
//!   fragment, verify and schedule stages from the stage memo
//!   ([`crate::stagecache`]) and only recomputes the allocation suffix;
//! * **serve** — round-trip p50/p99 of concurrent clients against an
//!   in-process [`Server`], measured through the real TCP codec
//!   ([`crate::proto`]);
//! * **sharding** — wall-clock of the same study dispatched over 1 and 2
//!   single-threaded serve endpoints by [`shard::run_sharded`]'s remote
//!   transport, with scaling efficiency;
//! * **multi_tenant** — small-tenant round-trip p50/p99 while a large
//!   grid saturates a width-1 server, the fairness cost the scheduler's
//!   round-robin interleaving ([`crate::sched`]) is supposed to bound;
//! * **fuzz** — cases/second of a fixed-seed in-process
//!   [`crate::fuzz`] run (every case is a full grid with cross-
//!   configuration invariant checks), so the differential fuzzer's
//!   throughput — what bounds how many seeds a CI budget covers — is
//!   tracked release over release like any other pipeline cost.
//!
//! A final group, **trace_check**, cross-checks the observability layer
//! against the statistics layer: it runs a cold+warm batch under the
//! in-memory trace collector and reconciles the per-job provenance
//! events ([`crate::trace`]) with the [`EngineStats`](crate::stats::EngineStats) counters — the two
//! systems count the same work through entirely different code paths, so
//! agreement here is a real invariant, not a tautology.
//!
//! Numbers come from wall clocks and are machine-dependent. Every timed
//! group runs [`BENCH_RUNS`] times and reports the median repetition (by
//! the group's primary scalar) plus the min-to-max spread in percent, so
//! a committed document carries its own noise estimate. CI gates on
//! consecutive `BENCH_<n>.json` deltas: a >2× regression beyond the two
//! documents' combined `spread_pct` allowance fails the job, within it
//! only warns. The `quick` mode shrinks every axis so CI can validate
//! the schema in seconds.

use crate::shard::{self, RemoteTransport, ShardOptions, ShardedStudy, Transport};
use crate::{proto, trace, Engine, EngineOptions, Job, ServeOptions, Server};
use bittrans_core::CompareOptions;
use bittrans_ir::Spec;
use serde_json::Value;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of one [`run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BenchOptions {
    /// Shrink every axis (fewer jobs, fewer vectors, fewer requests) so
    /// the whole suite finishes in seconds — the CI schema-validation
    /// mode. Full runs produce the committed trajectory document.
    pub quick: bool,
}

/// One worker-count throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputPoint {
    /// Worker threads the batch ran with.
    pub workers: usize,
    /// Jobs in the batch (all cold).
    pub jobs: u64,
    /// Batch wall clock.
    pub elapsed: Duration,
}

impl ThroughputPoint {
    /// Jobs per second (0 for a degenerate zero-duration clock).
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.jobs as f64 / secs
        } else {
            0.0
        }
    }
}

/// Cold-versus-warm cache measurement on one engine.
#[derive(Clone, Copy, Debug)]
pub struct CachePoint {
    /// First batch: everything computed.
    pub cold: Duration,
    /// Second identical batch: everything served from memory.
    pub warm: Duration,
    /// Hits the warm batch reported.
    pub warm_hits: u64,
}

impl CachePoint {
    /// How many times faster the warm batch was.
    pub fn speedup(&self) -> f64 {
        let warm = self.warm.as_secs_f64();
        if warm > 0.0 {
            self.cold.as_secs_f64() / warm
        } else {
            0.0
        }
    }
}

/// Round-trip latency distribution of concurrent serve clients.
#[derive(Clone, Copy, Debug)]
pub struct ServePoint {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests measured across all clients.
    pub requests: usize,
    /// Median round trip.
    pub p50: Duration,
    /// 99th-percentile round trip.
    pub p99: Duration,
}

/// Small-tenant latency behind a large tenant on a deliberately narrow
/// (width-1) server — the fairness measurement.
#[derive(Clone, Copy, Debug)]
pub struct MultiTenantPoint {
    /// Cells in the large tenant's saturating grid.
    pub large_cells: u64,
    /// Small (2-cell, always-cold) requests measured behind it.
    pub small_requests: usize,
    /// Median small-tenant round trip while the large grid runs.
    pub small_p50: Duration,
    /// 99th-percentile small-tenant round trip.
    pub small_p99: Duration,
    /// The large tenant's own round trip.
    pub large_elapsed: Duration,
}

/// One shard-count scaling measurement.
#[derive(Clone, Copy, Debug)]
pub struct ShardPoint {
    /// Shards (and single-threaded endpoints) the study was cut across.
    pub shards: usize,
    /// Coordinator wall clock for the whole sharded run.
    pub elapsed: Duration,
}

/// Incremental-compute measurement over the engine's stage memo: one
/// verify-heavy spec walked point by point across allocation-layer
/// options on a single engine.
#[derive(Clone, Copy, Debug)]
pub struct IncrementalPoint {
    /// Grid points walked (first one cold, the rest warm).
    pub points: u64,
    /// Wall clock of the first point: every stage computes.
    pub cold_point: Duration,
    /// Mean wall clock of the remaining points, whose extract, fragment,
    /// verify and schedule stages resolve from the stage memo.
    pub warm_point: Duration,
    /// Stage resolutions served from the memo across the whole walk.
    pub stage_hits: u64,
    /// Stage resolutions computed across the whole walk.
    pub stage_misses: u64,
}

impl IncrementalPoint {
    /// How many times faster a warm point was than the cold one.
    pub fn speedup(&self) -> f64 {
        let warm = self.warm_point.as_secs_f64();
        if warm > 0.0 {
            self.cold_point.as_secs_f64() / warm
        } else {
            0.0
        }
    }

    /// Share of stage resolutions served from the memo, in percent.
    pub fn stage_hit_rate_pct(&self) -> f64 {
        let total = self.stage_hits + self.stage_misses;
        if total > 0 {
            self.stage_hits as f64 / total as f64 * 100.0
        } else {
            0.0
        }
    }
}

/// Throughput of a fixed-seed in-process fuzz run: full grid cases
/// checked per second, the number that bounds how many seeds a CI
/// budget covers.
#[derive(Clone, Copy, Debug)]
pub struct FuzzPoint {
    /// Cases (seeds) the run covered.
    pub cases: u64,
    /// Grid cells those cases evaluated.
    pub cells: u64,
    /// Invariant violations found (must be 0 on a healthy tree).
    pub violations: u64,
    /// Wall clock of the whole run.
    pub elapsed: Duration,
}

impl FuzzPoint {
    /// Cases per second (0 for a degenerate zero-duration clock).
    pub fn cases_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.cases as f64 / secs
        } else {
            0.0
        }
    }
}

/// Repetitions of every timed metric group; the report carries the
/// median run and the min-to-max spread across all of them.
pub const BENCH_RUNS: u32 = 3;

/// Min-to-max spread (in percent of the median) of each timed group's
/// primary scalar across the [`BENCH_RUNS`] repetitions — the run-to-run
/// noise floor a trajectory gate has to tolerate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpreadPct {
    /// Throughput group (scalar: jobs/sec at the highest worker count).
    pub throughput: f64,
    /// Cache group (scalar: cold-to-warm speedup).
    pub cache: f64,
    /// Incremental group (scalar: cold-to-warm point speedup).
    pub incremental: f64,
    /// Serve group (scalar: p50 round trip).
    pub serve: f64,
    /// Sharding group (scalar: wall clock at the highest shard count).
    pub sharding: f64,
    /// Multi-tenant group (scalar: small-tenant p50).
    pub multi_tenant: f64,
    /// Fuzz group (scalar: cases/sec).
    pub fuzz: f64,
}

impl SpreadPct {
    /// The noisiest group's spread — the single number to read when
    /// judging whether a trajectory delta clears the noise floor.
    pub fn max(&self) -> f64 {
        [self.throughput, self.cache, self.incremental, self.serve, self.sharding]
            .into_iter()
            .chain([self.multi_tenant, self.fuzz])
            .fold(0.0, f64::max)
    }
}

/// The median repetition of one timed group plus the spread of its
/// primary scalar across all repetitions.
struct Measured<T> {
    median: T,
    spread_pct: f64,
}

/// Runs `f` `runs` times, picks the repetition whose `primary` scalar is
/// the median, and reports the min-to-max spread as a percentage of that
/// median (0 when the median is 0 or only one run was taken).
fn measured<T>(
    runs: u32,
    primary: impl Fn(&T) -> f64,
    mut f: impl FnMut() -> io::Result<T>,
) -> io::Result<Measured<T>> {
    let mut samples = Vec::new();
    for _ in 0..runs.max(1) {
        samples.push(f()?);
    }
    let keys: Vec<f64> = samples.iter().map(&primary).collect();
    let mut order: Vec<usize> = (0..samples.len()).collect();
    order.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]));
    let mid = order[(order.len() - 1) / 2];
    let median_key = keys[mid];
    let (lo, hi) = (keys[order[0]], keys[order[order.len() - 1]]);
    let spread_pct = if median_key != 0.0 { (hi - lo) / median_key.abs() * 100.0 } else { 0.0 };
    Ok(Measured { median: samples.swap_remove(mid), spread_pct })
}

/// Trace-versus-stats reconciliation of one cold+warm batch pair.
#[derive(Clone, Copy, Debug)]
pub struct TraceCheck {
    /// `job` events with `provenance: "computed"` in the trace.
    pub traced_computed: u64,
    /// `job` events with a hit provenance (memory / disk / duplicate).
    pub traced_hits: u64,
    /// Misses the two batches' [`EngineStats`](crate::stats::EngineStats) reported.
    pub stats_misses: u64,
    /// Hits the two batches' [`EngineStats`](crate::stats::EngineStats) reported.
    pub stats_hits: u64,
}

impl TraceCheck {
    /// Whether the trace events and the statistics counters agree.
    pub fn consistent(&self) -> bool {
        self.traced_computed == self.stats_misses && self.traced_hits == self.stats_hits
    }
}

/// Everything one benchmark run measured.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Whether the reduced `quick` grid ran.
    pub quick: bool,
    /// Distinct jobs in the workload batch.
    pub jobs: usize,
    /// Repetitions each timed group ran; the group fields below hold the
    /// median repetition.
    pub runs: u32,
    /// Per-group run-to-run spread across the repetitions.
    pub spread: SpreadPct,
    /// Cold throughput at each worker count.
    pub throughput: Vec<ThroughputPoint>,
    /// Cold-versus-warm cache speedup.
    pub cache: CachePoint,
    /// Stage-memo incremental-compute speedup.
    pub incremental: IncrementalPoint,
    /// Serve round-trip distribution.
    pub serve: ServePoint,
    /// Sharded scaling, ascending shard counts (first entry is the
    /// single-shard baseline).
    pub sharding: Vec<ShardPoint>,
    /// Small-tenant latency behind a saturating large tenant.
    pub multi_tenant: MultiTenantPoint,
    /// Differential-fuzz throughput.
    pub fuzz: FuzzPoint,
    /// Trace/stats cross-check.
    pub trace_check: TraceCheck,
}

/// Identifies the document layout; bumped if fields change shape.
/// v2 added the `multi_tenant` group; v3 added `incremental`; v4 made
/// every timed group a median-of-[`BENCH_RUNS`] and added the top-level
/// `runs` count and `spread_pct` noise-floor object; v5 added the
/// `fuzz` throughput group.
pub const SCHEMA: &str = "bittrans-bench-v5";

impl BenchReport {
    /// The report as one pretty-printed JSON document (the committed
    /// `BENCH_<n>.json` format). Hand-assembled so float formatting is
    /// stable across serializer changes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"quick\": {},\n  \"jobs\": {},\n  \
             \"runs\": {},\n",
            self.quick, self.jobs, self.runs
        ));
        out.push_str(&format!(
            "  \"spread_pct\": {{\"throughput\": {:.1}, \"cache\": {:.1}, \
             \"incremental\": {:.1}, \"serve\": {:.1}, \"sharding\": {:.1}, \
             \"multi_tenant\": {:.1}, \"fuzz\": {:.1}}},\n",
            self.spread.throughput,
            self.spread.cache,
            self.spread.incremental,
            self.spread.serve,
            self.spread.sharding,
            self.spread.multi_tenant,
            self.spread.fuzz,
        ));
        out.push_str("  \"throughput\": [\n");
        for (i, point) in self.throughput.iter().enumerate() {
            let comma = if i + 1 < self.throughput.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"workers\": {}, \"jobs\": {}, \"elapsed_ms\": {:.3}, \
                 \"jobs_per_sec\": {:.1}}}{comma}\n",
                point.workers,
                point.jobs,
                point.elapsed.as_secs_f64() * 1e3,
                point.jobs_per_sec(),
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"cache\": {{\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup\": {:.1}, \
             \"warm_hits\": {}}},\n",
            self.cache.cold.as_secs_f64() * 1e3,
            self.cache.warm.as_secs_f64() * 1e3,
            self.cache.speedup(),
            self.cache.warm_hits,
        ));
        out.push_str(&format!(
            "  \"incremental\": {{\"points\": {}, \"cold_point_ms\": {:.3}, \
             \"warm_point_ms\": {:.3}, \"speedup\": {:.1}, \"stage_hits\": {}, \
             \"stage_misses\": {}, \"stage_hit_rate_pct\": {:.1}}},\n",
            self.incremental.points,
            self.incremental.cold_point.as_secs_f64() * 1e3,
            self.incremental.warm_point.as_secs_f64() * 1e3,
            self.incremental.speedup(),
            self.incremental.stage_hits,
            self.incremental.stage_misses,
            self.incremental.stage_hit_rate_pct(),
        ));
        out.push_str(&format!(
            "  \"serve\": {{\"clients\": {}, \"requests\": {}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}}},\n",
            self.serve.clients,
            self.serve.requests,
            self.serve.p50.as_secs_f64() * 1e3,
            self.serve.p99.as_secs_f64() * 1e3,
        ));
        out.push_str(&format!(
            "  \"multi_tenant\": {{\"large_cells\": {}, \"small_requests\": {}, \
             \"small_p50_ms\": {:.3}, \"small_p99_ms\": {:.3}, \"large_elapsed_ms\": {:.3}}},\n",
            self.multi_tenant.large_cells,
            self.multi_tenant.small_requests,
            self.multi_tenant.small_p50.as_secs_f64() * 1e3,
            self.multi_tenant.small_p99.as_secs_f64() * 1e3,
            self.multi_tenant.large_elapsed.as_secs_f64() * 1e3,
        ));
        out.push_str("  \"sharding\": [\n");
        let baseline = self.sharding.first().map_or(Duration::ZERO, |p| p.elapsed);
        for (i, point) in self.sharding.iter().enumerate() {
            let comma = if i + 1 < self.sharding.len() { "," } else { "" };
            let speedup = if point.elapsed.as_secs_f64() > 0.0 {
                baseline.as_secs_f64() / point.elapsed.as_secs_f64()
            } else {
                0.0
            };
            let efficiency = if point.shards > 0 { speedup / point.shards as f64 } else { 0.0 };
            out.push_str(&format!(
                "    {{\"shards\": {}, \"elapsed_ms\": {:.3}, \"speedup\": {:.2}, \
                 \"efficiency\": {:.2}}}{comma}\n",
                point.shards,
                point.elapsed.as_secs_f64() * 1e3,
                speedup,
                efficiency,
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"fuzz\": {{\"cases\": {}, \"cells\": {}, \"violations\": {}, \
             \"elapsed_ms\": {:.3}, \"cases_per_sec\": {:.1}}},\n",
            self.fuzz.cases,
            self.fuzz.cells,
            self.fuzz.violations,
            self.fuzz.elapsed.as_secs_f64() * 1e3,
            self.fuzz.cases_per_sec(),
        ));
        out.push_str(&format!(
            "  \"trace_check\": {{\"traced_computed\": {}, \"traced_hits\": {}, \
             \"stats_misses\": {}, \"stats_hits\": {}, \"consistent\": {}}}\n}}\n",
            self.trace_check.traced_computed,
            self.trace_check.traced_hits,
            self.trace_check.stats_misses,
            self.trace_check.stats_hits,
            self.trace_check.consistent(),
        ));
        out
    }

    /// A short human-readable summary (the default `bittrans bench`
    /// output when `--json` is not given).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "bench ({} jobs{}, median of {} runs, noise floor {:.1}%):\n",
            self.jobs,
            if self.quick { ", quick" } else { "" },
            self.runs,
            self.spread.max(),
        );
        for point in &self.throughput {
            out.push_str(&format!(
                "  {} worker(s): {:.1} jobs/sec\n",
                point.workers,
                point.jobs_per_sec()
            ));
        }
        out.push_str(&format!(
            "  cache: cold {:.1} ms, warm {:.3} ms ({:.0}x)\n",
            self.cache.cold.as_secs_f64() * 1e3,
            self.cache.warm.as_secs_f64() * 1e3,
            self.cache.speedup(),
        ));
        out.push_str(&format!(
            "  incremental: cold point {:.1} ms, warm point {:.1} ms ({:.1}x, \
             {:.0}% stage hits)\n",
            self.incremental.cold_point.as_secs_f64() * 1e3,
            self.incremental.warm_point.as_secs_f64() * 1e3,
            self.incremental.speedup(),
            self.incremental.stage_hit_rate_pct(),
        ));
        out.push_str(&format!(
            "  serve: p50 {:.2} ms, p99 {:.2} ms over {} requests from {} clients\n",
            self.serve.p50.as_secs_f64() * 1e3,
            self.serve.p99.as_secs_f64() * 1e3,
            self.serve.requests,
            self.serve.clients,
        ));
        out.push_str(&format!(
            "  multi-tenant: small p50 {:.2} ms / p99 {:.2} ms behind a {}-cell grid \
             ({:.1} ms)\n",
            self.multi_tenant.small_p50.as_secs_f64() * 1e3,
            self.multi_tenant.small_p99.as_secs_f64() * 1e3,
            self.multi_tenant.large_cells,
            self.multi_tenant.large_elapsed.as_secs_f64() * 1e3,
        ));
        for point in &self.sharding {
            out.push_str(&format!(
                "  {} shard(s): {:.1} ms\n",
                point.shards,
                point.elapsed.as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!(
            "  fuzz: {:.1} cases/sec ({} cases, {} violations)\n",
            self.fuzz.cases_per_sec(),
            self.fuzz.cases,
            self.fuzz.violations,
        ));
        out.push_str(&format!(
            "  trace/stats reconciliation: {}\n",
            if self.trace_check.consistent() { "consistent" } else { "INCONSISTENT" }
        ));
        out
    }
}

/// The workload: 3-add chains at several bit widths — distinct content
/// keys, identical structure — crossed with a feasible latency range,
/// made compute-heavy through the verification budget so worker scaling
/// is measurable on such small specs.
struct Workload {
    sources: Vec<String>,
    latencies: Vec<u32>,
    options: CompareOptions,
}

impl Workload {
    fn new(quick: bool) -> Workload {
        let widths: &[u32] = if quick { &[8, 16] } else { &[8, 10, 12, 14, 16, 20, 24, 32] };
        let latencies: Vec<u32> = if quick { vec![2, 3] } else { vec![2, 3, 4, 5] };
        let sources = widths
            .iter()
            .map(|w| {
                format!(
                    "spec chain{w} {{ input A: u{w}; input B: u{w}; input D: u{w}; \
                     input F: u{w}; C: u{w} = A + B; E: u{w} = C + D; G: u{w} = E + F; \
                     output G; }}"
                )
            })
            .collect();
        let options = CompareOptions {
            verify_vectors: if quick { 64 } else { 2000 },
            ..CompareOptions::default()
        };
        Workload { sources, latencies, options }
    }

    fn jobs(&self) -> Vec<Job> {
        let specs: Vec<Spec> =
            self.sources.iter().map(|src| Spec::parse(src).expect("bench spec parses")).collect();
        specs
            .iter()
            .flat_map(|spec| {
                self.latencies
                    .iter()
                    .map(|&latency| Job::with_options(spec.clone(), latency, self.options))
            })
            .collect()
    }

    fn sharded_study(&self) -> ShardedStudy {
        ShardedStudy {
            sources: self.sources.clone(),
            latencies: self.latencies.clone(),
            adder_archs: None,
            balance: None,
            verify_vectors: None,
            base: self.options,
        }
    }
}

/// Runs the whole suite: every timed group [`BENCH_RUNS`] times (each
/// repetition on fresh engines/servers, so counters stay exact), keeping
/// the median repetition and the cross-run spread. The trace collector
/// is taken over for the `trace_check` group (in-memory sink) and
/// released afterwards, so `bench` should not be combined with a file
/// trace of the same process; that group is a consistency check, not a
/// timing, and runs once.
///
/// # Errors
///
/// I/O from the in-process serve fleet or the scratch cache directories.
pub fn run(options: &BenchOptions) -> io::Result<BenchReport> {
    let workload = Workload::new(options.quick);
    let jobs = workload.jobs();
    let runs = BENCH_RUNS;

    let throughput = measured(
        runs,
        |points: &Vec<ThroughputPoint>| points.last().map_or(0.0, ThroughputPoint::jobs_per_sec),
        || Ok(measure_throughput(&jobs, options.quick)),
    )?;
    let cache = measured(runs, CachePoint::speedup, || Ok(measure_cache(&jobs)))?;
    let incremental =
        measured(runs, IncrementalPoint::speedup, || Ok(measure_incremental(options.quick)))?;
    let serve = measured(
        runs,
        |point: &ServePoint| point.p50.as_secs_f64(),
        || measure_serve(&workload, options.quick),
    )?;
    let sharding = measured(
        runs,
        |points: &Vec<ShardPoint>| points.last().map_or(0.0, |p| p.elapsed.as_secs_f64()),
        || measure_sharding(&workload),
    )?;
    let multi_tenant = measured(
        runs,
        |point: &MultiTenantPoint| point.small_p50.as_secs_f64(),
        || measure_multi_tenant(&workload, options.quick),
    )?;
    let fuzz = measured(runs, FuzzPoint::cases_per_sec, || Ok(measure_fuzz(options.quick)))?;
    let trace_check = measure_trace_check(&jobs);

    Ok(BenchReport {
        quick: options.quick,
        jobs: jobs.len(),
        runs,
        spread: SpreadPct {
            throughput: throughput.spread_pct,
            cache: cache.spread_pct,
            incremental: incremental.spread_pct,
            serve: serve.spread_pct,
            sharding: sharding.spread_pct,
            multi_tenant: multi_tenant.spread_pct,
            fuzz: fuzz.spread_pct,
        },
        throughput: throughput.median,
        cache: cache.median,
        incremental: incremental.median,
        serve: serve.median,
        sharding: sharding.median,
        multi_tenant: multi_tenant.median,
        fuzz: fuzz.median,
        trace_check,
    })
}

/// Cold batches on fresh engines at ascending worker counts.
fn measure_throughput(jobs: &[Job], quick: bool) -> Vec<ThroughputPoint> {
    let counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    counts
        .iter()
        .map(|&workers| {
            let engine = Engine::new(EngineOptions { workers: Some(workers), cache: true });
            let batch = engine.run(jobs.to_vec());
            ThroughputPoint { workers, jobs: batch.stats.jobs, elapsed: batch.stats.elapsed }
        })
        .collect()
}

/// The same batch cold then warm on one engine.
fn measure_cache(jobs: &[Job]) -> CachePoint {
    let engine = Engine::default();
    let cold = engine.run(jobs.to_vec());
    let warm = engine.run(jobs.to_vec());
    CachePoint {
        cold: cold.stats.elapsed,
        warm: warm.stats.elapsed,
        warm_hits: warm.stats.cache_hits,
    }
}

/// One verify-heavy spec walked point by point across the allocation
/// axes (adder architecture, and cycle balancing in full mode) on a
/// single engine, one batch per point so each point's wall clock and
/// stage counters are observable in isolation. Every point is a distinct
/// job key — the job-level cache never hits — but the stage memo serves
/// the allocation-invariant prefix (extract, fragment, the expensive
/// verify, both schedules) to every point after the first, so the
/// cold-to-warm point ratio is the speedup incremental stage caching
/// buys when only downstream options change.
fn measure_incremental(quick: bool) -> IncrementalPoint {
    use bittrans_rtl::AdderArch;

    let spec = Spec::parse(
        "spec inc { input A: u16; input B: u16; input D: u16; input F: u16; \
         C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
    )
    .expect("bench spec parses");
    // Verification dominates the cold point so the shared-prefix saving
    // is well above timer noise even on the quick grid.
    let vectors = if quick { 4000 } else { 40_000 };
    let archs = [AdderArch::RippleCarry, AdderArch::CarryLookahead, AdderArch::CarrySelect];
    let balances: &[bool] = if quick { &[true] } else { &[true, false] };

    let engine = Engine::default();
    let mut cold_point = Duration::ZERO;
    let mut warm_total = Duration::ZERO;
    let mut warm_points = 0u32;
    let mut stage_hits = 0u64;
    let mut stage_misses = 0u64;
    let mut points = 0u64;
    for &balance in balances {
        for arch in archs {
            let options = CompareOptions {
                adder_arch: arch,
                balance,
                verify_vectors: vectors,
                ..CompareOptions::default()
            };
            let batch = engine.run(vec![Job::with_options(spec.clone(), 3, options)]);
            stage_hits += batch.stats.stage_hits;
            stage_misses += batch.stats.stage_misses;
            if points == 0 {
                cold_point = batch.stats.elapsed;
            } else {
                warm_total += batch.stats.elapsed;
                warm_points += 1;
            }
            points += 1;
        }
    }
    IncrementalPoint {
        points,
        cold_point,
        warm_point: warm_total / warm_points.max(1),
        stage_hits,
        stage_misses,
    }
}

/// Concurrent clients round-tripping a small study against an in-process
/// server; the engine is warm after each client's first request, so the
/// distribution mostly measures the protocol and the scheduler's
/// admission path.
fn measure_serve(workload: &Workload, quick: bool) -> io::Result<ServePoint> {
    let server = Server::bind(&ServeOptions::default())?;
    let addr = server.local_addr().to_string();
    let server = std::thread::spawn(move || server.run());

    let clients = if quick { 2 } else { 4 };
    let per_client = if quick { 3 } else { 8 };
    let body = serde_json::to_string(&workload.sharded_study()).expect("study serializes");
    let timeout = Duration::from_secs(120);
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let Ok(mut client) = proto::LineClient::connect(&addr, timeout) else { return };
                for _ in 0..per_client {
                    let started = Instant::now();
                    if client.request(&body).is_err() {
                        return;
                    }
                    latencies.lock().expect("latency lock").push(started.elapsed());
                }
            });
        }
    });
    let mut samples = latencies.into_inner().expect("latency lock");
    samples.sort_unstable();

    let mut shutdown = proto::LineClient::connect(&addr, timeout)?;
    let _ = shutdown.request("{\"shutdown\":true}");
    let _ = server.join();

    let percentile = |p: usize| -> Duration {
        if samples.is_empty() {
            Duration::ZERO
        } else {
            samples[(samples.len() - 1) * p / 100]
        }
    };
    Ok(ServePoint { clients, requests: samples.len(), p50: percentile(50), p99: percentile(99) })
}

/// Small 2-cell tenants round-tripping against a deliberately width-1
/// server that a large grid is saturating. Every small request uses a
/// fresh spec (always cold), so the p50/p99 measure how quickly the fair
/// scheduler interleaves a newcomer's two tasks into a long backlog —
/// under the old per-request run lock these latencies would approach the
/// large tenant's whole wall clock.
fn measure_multi_tenant(workload: &Workload, quick: bool) -> io::Result<MultiTenantPoint> {
    let server = Server::bind(&ServeOptions { workers: Some(1), ..ServeOptions::default() })?;
    let addr = server.local_addr().to_string();
    let server = std::thread::spawn(move || server.run());
    let timeout = Duration::from_secs(300);

    let large_body = serde_json::to_string(&workload.sharded_study()).expect("study serializes");
    let large_cells = (workload.sources.len() * workload.latencies.len()) as u64;
    let addr_large = addr.clone();
    let large = std::thread::spawn(move || -> io::Result<Duration> {
        let mut client = proto::LineClient::connect(&addr_large, timeout)?;
        let started = Instant::now();
        client.request(&large_body)?;
        Ok(started.elapsed())
    });

    // Give the large grid a head start onto the scheduler so the small
    // tenants demonstrably arrive behind its backlog.
    std::thread::sleep(Duration::from_millis(if quick { 20 } else { 100 }));
    let small_requests = if quick { 2 } else { 8 };
    let mut samples = Vec::new();
    let mut client = proto::LineClient::connect(&addr, timeout)?;
    for i in 0..small_requests {
        let body = format!(
            "{{\"sources\": [\"spec tenant{i} {{ input a: u8; input b: u8; \
             s: u8 = a + b; output s; }}\"], \"latencies\": [2, 3]}}"
        );
        let started = Instant::now();
        client.request(&body)?;
        samples.push(started.elapsed());
    }
    let large_elapsed = large.join().expect("large tenant thread")?;
    samples.sort_unstable();

    let mut shutdown = proto::LineClient::connect(&addr, timeout)?;
    let _ = shutdown.request("{\"shutdown\":true}");
    let _ = server.join();

    let percentile = |p: usize| -> Duration {
        if samples.is_empty() {
            Duration::ZERO
        } else {
            samples[(samples.len() - 1) * p / 100]
        }
    };
    Ok(MultiTenantPoint {
        large_cells,
        small_requests: samples.len(),
        small_p50: percentile(50),
        small_p99: percentile(99),
        large_elapsed,
    })
}

/// The same study dispatched over 1 and 2 single-threaded in-process
/// serve endpoints, each run from a cold scratch store, through the real
/// remote shard transport.
fn measure_sharding(workload: &Workload) -> io::Result<Vec<ShardPoint>> {
    let sharded = workload.sharded_study();
    let mut points = Vec::new();
    for (which, shards) in [1usize, 2].into_iter().enumerate() {
        let cache_dir = scratch_dir(which)?;
        let mut endpoints = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..shards {
            let server = Server::bind(&ServeOptions {
                workers: Some(1),
                cache_dir: Some(cache_dir.clone()),
                ..ServeOptions::default()
            })?;
            endpoints.push(server.local_addr().to_string());
            servers.push(std::thread::spawn(move || server.run()));
        }
        let options = ShardOptions {
            shards,
            transport: Transport::Remote(RemoteTransport {
                endpoints: endpoints.clone(),
                timeout: Duration::from_secs(120),
            }),
        };
        let started = Instant::now();
        let run = shard::run_sharded(&sharded, &cache_dir, &options)
            .map_err(|e| io::Error::other(e.to_string()))?;
        let elapsed = started.elapsed();
        drop(run);
        for endpoint in &endpoints {
            if let Ok(mut client) = proto::LineClient::connect(endpoint, Duration::from_secs(5)) {
                let _ = client.request("{\"shutdown\":true}");
            }
        }
        for server in servers {
            let _ = server.join();
        }
        let _ = std::fs::remove_dir_all(&cache_dir);
        points.push(ShardPoint { shards, elapsed });
    }
    Ok(points)
}

/// A fixed-seed in-process [`crate::fuzz`] run, all four spec shapes
/// covered, no differential (the sharded path spawns worker processes,
/// which would make the number a process-launch benchmark). Seed 100
/// keeps the workload disjoint from the seeds the fuzz tests pin.
fn measure_fuzz(quick: bool) -> FuzzPoint {
    let options = crate::fuzz::FuzzOptions {
        count: if quick { 4 } else { 24 },
        seed: 100,
        ..crate::fuzz::FuzzOptions::default()
    };
    let report = crate::fuzz::run(&options);
    FuzzPoint {
        cases: report.count as u64,
        cells: report.cells as u64,
        violations: report.total_violations() as u64,
        elapsed: Duration::from_millis(report.elapsed_ms as u64),
    }
}

/// A cold+warm batch pair under the in-memory trace collector, with the
/// per-job provenance events reconciled against the statistics counters.
fn measure_trace_check(jobs: &[Job]) -> TraceCheck {
    trace::install_memory();
    let engine = Engine::default();
    let cold = engine.run(jobs.to_vec());
    let warm = engine.run(jobs.to_vec());
    let lines = trace::drain();
    trace::uninstall();

    let mut traced_computed = 0u64;
    let mut traced_hits = 0u64;
    for line in &lines {
        let Ok(value) = serde_json::from_str(line) else { continue };
        if value.get("name").and_then(Value::as_str) != Some("job") {
            continue;
        }
        match value.get("provenance").and_then(Value::as_str) {
            Some("computed") => traced_computed += 1,
            Some("memory" | "disk" | "duplicate") => traced_hits += 1,
            _ => {}
        }
    }
    TraceCheck {
        traced_computed,
        traced_hits,
        stats_misses: cold.stats.cache_misses + warm.stats.cache_misses,
        stats_hits: cold.stats.cache_hits + warm.stats.cache_hits,
    }
}

/// A process-unique scratch cache directory under the system temp dir.
fn scratch_dir(which: usize) -> io::Result<PathBuf> {
    let dir = std::env::temp_dir().join(format!("bittrans-bench-{}-{which}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_picks_the_median_run_and_reports_the_spread() {
        let samples = [4.0f64, 1.0, 2.0];
        let mut next = 0usize;
        let got = measured(
            3,
            |v: &f64| *v,
            || {
                next += 1;
                Ok(samples[next - 1])
            },
        )
        .unwrap();
        assert_eq!(got.median, 2.0);
        // (4 - 1) / 2 = 150% min-to-max spread around the median.
        assert!((got.spread_pct - 150.0).abs() < 1e-9, "{}", got.spread_pct);

        let single = measured(1, |v: &f64| *v, || Ok(7.0)).unwrap();
        assert_eq!(single.median, 7.0);
        assert_eq!(single.spread_pct, 0.0);

        let zero = measured(3, |v: &f64| *v, || Ok(0.0)).unwrap();
        assert_eq!(zero.spread_pct, 0.0, "zero median degrades to zero spread");
    }

    #[test]
    fn quick_bench_produces_a_valid_consistent_document() {
        let report = run(&BenchOptions { quick: true }).expect("quick bench runs");
        assert!(report.quick);
        assert!(report.jobs > 0);
        assert_eq!(report.runs, BENCH_RUNS);
        for (group, spread) in [
            ("throughput", report.spread.throughput),
            ("cache", report.spread.cache),
            ("incremental", report.spread.incremental),
            ("serve", report.spread.serve),
            ("sharding", report.spread.sharding),
            ("multi_tenant", report.spread.multi_tenant),
            ("fuzz", report.spread.fuzz),
        ] {
            assert!(spread.is_finite() && spread >= 0.0, "{group} spread {spread}");
        }
        assert!(report.spread.max() >= report.spread.cache);
        assert_eq!(report.throughput.len(), 2);
        assert!(report.throughput.iter().all(|p| p.jobs == report.jobs as u64));
        assert!(report.cache.warm_hits == report.jobs as u64);
        // The incremental walk: 3 points (one per adder arch), the first
        // cold (9 stages computed), the rest sharing the 5-stage
        // allocation-invariant prefix each.
        assert_eq!(report.incremental.points, 3);
        assert_eq!(report.incremental.stage_misses, 9 + 2 * 4);
        assert_eq!(report.incremental.stage_hits, 2 * 5);
        assert!(report.incremental.stage_hit_rate_pct() > 0.0);
        assert!(
            report.incremental.speedup() > 1.0,
            "warm points must beat the verify-heavy cold point: {:?}",
            report.incremental
        );
        assert!(report.serve.requests > 0);
        assert_eq!(report.fuzz.cases, 4);
        assert_eq!(report.fuzz.cells, 4 * 24);
        assert_eq!(report.fuzz.violations, 0, "quick bench fuzz must run clean");
        assert_eq!(report.sharding.len(), 2);
        assert_eq!(report.multi_tenant.small_requests, 2);
        assert!(report.multi_tenant.large_cells > 0);
        assert!(
            report.trace_check.consistent(),
            "trace {:?} disagrees with stats",
            report.trace_check
        );

        // The JSON document parses and carries every metric group.
        let json = report.to_json();
        let value: Value = serde_json::from_str(&json).expect("bench JSON parses");
        assert_eq!(value.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert_eq!(value.get("runs").and_then(Value::as_u64), Some(u64::from(BENCH_RUNS)));
        for group in [
            "spread_pct",
            "throughput",
            "cache",
            "incremental",
            "serve",
            "multi_tenant",
            "sharding",
            "fuzz",
            "trace_check",
        ] {
            assert!(value.get(group).is_some(), "missing `{group}` in {json}");
        }
        assert_eq!(
            value.get("trace_check").and_then(|t| t.get("consistent")).and_then(Value::as_bool),
            Some(true)
        );
        assert!(!report.summary().is_empty());
    }
}
