//! Zero-dependency observability: monotonic spans and events over the
//! whole engine, collected into a process-global, lock-striped buffer
//! and sunk as JSONL.
//!
//! The collector is off by default and costs one relaxed atomic load per
//! call site when disabled — no allocation, no clock read, no lock. When
//! enabled (CLI `--trace-out FILE`, the `BITTRANS_TRACE` environment
//! variable, or [`install_memory`] in tests), every span and event
//! becomes one line of JSON:
//!
//! ```json
//! {"seq":12,"ts_ns":80211,"kind":"span","name":"exec.task","id":5,"parent":2,"dur_ns":73000,"index":3}
//! {"seq":13,"ts_ns":81090,"kind":"event","name":"job","parent":2,"key":"8c…","provenance":"computed"}
//! ```
//!
//! * `seq` — a process-wide emission counter; sorting by `seq` is the
//!   canonical order and `ts_ns` is non-decreasing along it.
//! * `ts_ns` — nanoseconds on the monotonic clock since the collector's
//!   first installation (never the wall clock, so lines never go
//!   backwards across NTP steps).
//! * spans carry a stable `id` (unique per process), their `parent`
//!   span id (`0` = root) and `dur_ns`; events carry `parent` only.
//! * everything after the fixed fields is call-site attributes.
//!
//! Spans parent through a thread-local stack; [`current_span_id`] plus
//! [`span_under`] carry the chain across thread boundaries (the executor
//! captures the batch span before spawning workers). A span line is
//! emitted exactly once, when its guard drops.
//!
//! [`flush`] rewrites the sink file from the full buffer via the same
//! hidden-temp-file + atomic-rename idiom as the persistent cache
//! (`persist.rs`), so a reader never observes a torn trace. [`diag`]
//! mirrors legacy diagnostics to stderr verbatim while also recording
//! them as events, and [`stderr_log`] emits structured one-line JSON
//! logs (always on stderr, mirrored into the trace when enabled) for the
//! `serve` front end.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of independently locked line buffers; threads are spread over
/// them by thread-id hash so emission rarely contends.
const STRIPES: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static STAMP: Mutex<Stamp> = Mutex::new(Stamp { seq: 0, last_ns: 0 });
static SINK: Mutex<Sink> = Mutex::new(Sink::Off);
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_STRIPE: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());
static BUFFERS: [Mutex<Vec<(u64, String)>>; STRIPES] = [EMPTY_STRIPE; STRIPES];

thread_local! {
    /// Open span ids on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Sequence/timestamp allocator. One lock serializes stamping, which is
/// what makes `ts_ns` monotone along `seq` by construction.
struct Stamp {
    seq: u64,
    last_ns: u64,
}

/// Where flushed lines go.
#[derive(Clone)]
enum Sink {
    /// No collector installed.
    Off,
    /// Lines stay in the buffer until [`drain`] (tests, the bench
    /// harness's trace cross-check).
    Memory,
    /// [`flush`] rewrites this file atomically from the full buffer.
    File(PathBuf),
}

/// Whether a collector is installed. One relaxed load — the whole cost
/// of every instrumentation point in a disabled build.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs the collector with a JSONL file sink. [`flush`] (or process
/// shutdown in the CLI) writes the file; nothing touches the disk before
/// that.
pub fn install_file(path: impl Into<PathBuf>) {
    install(Sink::File(path.into()));
}

/// Installs the collector with an in-memory sink; [`drain`] returns the
/// collected lines.
pub fn install_memory() {
    install(Sink::Memory);
}

/// Installs a file sink from the `BITTRANS_TRACE` environment variable.
/// Returns whether a collector was installed.
pub fn install_from_env() -> bool {
    match std::env::var("BITTRANS_TRACE") {
        Ok(path) if !path.is_empty() => {
            install_file(path);
            true
        }
        _ => false,
    }
}

fn install(sink: Sink) {
    let _ = EPOCH.get_or_init(Instant::now);
    clear_buffers();
    *SINK.lock().expect("trace sink lock") = sink;
    // The core pipeline cannot depend on this crate, so it exposes a
    // stage-observer hook instead; registering it here is what turns
    // per-stage timings into child spans.
    bittrans_core::stage::set_observer(stage);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables the collector, unregisters the core stage observer and
/// discards any unflushed lines.
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    bittrans_core::stage::clear_observer();
    *SINK.lock().expect("trace sink lock") = Sink::Off;
    clear_buffers();
}

fn clear_buffers() {
    for stripe in &BUFFERS {
        stripe.lock().expect("trace stripe lock").clear();
    }
}

/// All emitted lines in canonical (`seq`) order, without clearing.
fn snapshot() -> Vec<(u64, String)> {
    let mut lines: Vec<(u64, String)> = Vec::new();
    for stripe in &BUFFERS {
        lines.extend(stripe.lock().expect("trace stripe lock").iter().cloned());
    }
    lines.sort_unstable_by_key(|&(seq, _)| seq);
    lines
}

/// Rewrites the file sink from the full buffer (temp file + atomic
/// rename, the `persist.rs` idiom). Returns the path written, or `None`
/// for a memory/absent sink. Lines stay buffered, so repeated flushes
/// are cumulative rewrites, and a crash between flushes loses only the
/// tail.
///
/// # Errors
///
/// I/O errors writing or renaming the temp file.
pub fn flush() -> io::Result<Option<PathBuf>> {
    let sink = SINK.lock().expect("trace sink lock").clone();
    let Sink::File(path) = sink else { return Ok(None) };
    let mut text = String::new();
    for (_, line) in snapshot() {
        text.push_str(&line);
        text.push('\n');
    }
    // Temp name carries pid + serial so concurrent flushes (or two
    // processes pointed at one file) never interleave into one temp.
    static FLUSH: AtomicU64 = AtomicU64::new(0);
    let serial = FLUSH.fetch_add(1, Ordering::Relaxed);
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = dir.join(format!(".{name}.{}-{serial}.tmp", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &path)?;
    Ok(Some(path))
}

/// Takes every buffered line (canonical order) out of the collector.
/// The usual read path for a memory sink.
pub fn drain() -> Vec<String> {
    let lines = snapshot().into_iter().map(|(_, line)| line).collect();
    clear_buffers();
    lines
}

/// Allocates the next (seq, ts_ns) pair with the monotone clamp.
fn stamp() -> (u64, u64) {
    let now_ns =
        u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut stamp = STAMP.lock().expect("trace stamp lock");
    stamp.seq += 1;
    stamp.last_ns = stamp.last_ns.max(now_ns);
    (stamp.seq, stamp.last_ns)
}

fn stripe_index() -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    (hasher.finish() as usize) % STRIPES
}

/// Stamps and buffers one line; `render` receives `(seq, ts_ns)` and
/// appends the full JSON object.
fn emit(render: impl FnOnce(u64, u64, &mut String)) {
    let (seq, ts_ns) = stamp();
    let mut line = String::with_capacity(96);
    render(seq, ts_ns, &mut line);
    BUFFERS[stripe_index()].lock().expect("trace stripe lock").push((seq, line));
}

/// Appends `s` to `out` with JSON string escaping.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Call-site attributes appended to a span or event line. Keys must be
/// plain identifiers (they are written unescaped); values are escaped.
#[derive(Default)]
pub struct Attrs {
    buf: String,
}

impl Attrs {
    /// Adds a string attribute.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":\"");
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer attribute.
    pub fn num(&mut self, key: &str, value: u64) -> &mut Self {
        let _ = write!(self.buf, ",\"{key}\":{value}");
        self
    }

    /// Adds a float attribute (`null` if not finite — JSON has no NaN).
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        if value.is_finite() {
            let _ = write!(self.buf, ",\"{key}\":{value:?}");
        } else {
            let _ = write!(self.buf, ",\"{key}\":null");
        }
        self
    }

    /// Adds a boolean attribute.
    pub fn flag(&mut self, key: &str, value: bool) -> &mut Self {
        let _ = write!(self.buf, ",\"{key}\":{value}");
        self
    }
}

/// An open span. Emits exactly one `"kind":"span"` line when dropped;
/// a span obtained while the collector is disabled is inert (no clock
/// read, no allocation, nothing on drop).
pub struct Span {
    name: &'static str,
    id: u64,
    parent: u64,
    started: Option<Instant>,
    attrs: String,
}

impl Span {
    /// This span's id, for parenting work on other threads
    /// ([`span_under`]). `0` when the collector is disabled.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let dur_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let attrs = std::mem::take(&mut self.attrs);
        let (name, id, parent) = (self.name, self.id, self.parent);
        emit(|seq, ts_ns, out| {
            let _ = write!(
                out,
                "{{\"seq\":{seq},\"ts_ns\":{ts_ns},\"kind\":\"span\",\"name\":\"{name}\",\
                 \"id\":{id},\"parent\":{parent},\"dur_ns\":{dur_ns}{attrs}}}"
            );
        });
    }
}

fn open_span(name: &'static str, parent: Option<u64>, f: impl FnOnce(&mut Attrs)) -> Span {
    if !enabled() {
        return Span { name, id: 0, parent: 0, started: None, attrs: String::new() };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = parent.unwrap_or_else(current_span_id);
    STACK.with(|stack| stack.borrow_mut().push(id));
    let mut attrs = Attrs::default();
    f(&mut attrs);
    Span { name, id, parent, started: Some(Instant::now()), attrs: attrs.buf }
}

/// Opens a span parented to the innermost open span on this thread.
pub fn span(name: &'static str) -> Span {
    open_span(name, None, |_| {})
}

/// Opens a span with attributes; the closure runs only when the
/// collector is enabled, so attribute formatting is free when disabled.
pub fn span_attrs(name: &'static str, f: impl FnOnce(&mut Attrs)) -> Span {
    open_span(name, None, f)
}

/// Opens a span under an explicit parent id — the cross-thread form.
/// Capture [`current_span_id`] before spawning, pass it here inside the
/// worker.
pub fn span_under(parent: u64, name: &'static str, f: impl FnOnce(&mut Attrs)) -> Span {
    open_span(name, Some(parent), f)
}

/// The innermost open span id on this thread (`0` = root).
pub fn current_span_id() -> u64 {
    STACK.with(|stack| stack.borrow().last().copied().unwrap_or(0))
}

/// Records one `"kind":"event"` line parented to the innermost open
/// span. The attribute closure runs only when the collector is enabled.
pub fn event(name: &'static str, f: impl FnOnce(&mut Attrs)) {
    if !enabled() {
        return;
    }
    let mut attrs = Attrs::default();
    f(&mut attrs);
    let parent = current_span_id();
    let buf = attrs.buf;
    emit(|seq, ts_ns, out| {
        let _ = write!(
            out,
            "{{\"seq\":{seq},\"ts_ns\":{ts_ns},\"kind\":\"event\",\"name\":\"{name}\",\
             \"parent\":{parent}{buf}}}"
        );
    });
}

/// Records a completed child span of the innermost open span — the shape
/// the core pipeline's stage observer reports, where the work already
/// happened and only its duration is known. The line carries
/// `"name":"stage.<name>"` and a freshly allocated span id.
pub fn stage(name: &'static str, dur: Duration) {
    if !enabled() {
        return;
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = current_span_id();
    let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
    emit(|seq, ts_ns, out| {
        let _ = write!(
            out,
            "{{\"seq\":{seq},\"ts_ns\":{ts_ns},\"kind\":\"span\",\"name\":\"stage.{name}\",\
             \"id\":{id},\"parent\":{parent},\"dur_ns\":{dur_ns}}}"
        );
    });
}

/// A legacy diagnostic: printed to stderr verbatim (several of these
/// lines are part of the CLI's tested interface) and recorded as a
/// `diag` event when the collector is enabled.
pub fn diag(text: &str) {
    eprintln!("{text}");
    event("diag", |a| {
        a.str("text", text);
    });
}

/// A structured one-line JSON log: always printed to stderr as
/// `{"log":"<stream>","event":"<event>",…attrs}` and recorded as a trace
/// event when the collector is enabled. The `serve` front end's request
/// lifecycle logs use this so diagnostics never pollute `--json` stdout
/// streams yet stay machine-parseable.
pub fn stderr_log(stream: &'static str, log_event: &'static str, f: impl FnOnce(&mut Attrs)) {
    let mut attrs = Attrs::default();
    f(&mut attrs);
    eprintln!("{{\"log\":\"{stream}\",\"event\":\"{log_event}\"{}}}", attrs.buf);
    if enabled() {
        let buf = attrs.buf;
        let parent = current_span_id();
        emit(|seq, ts_ns, out| {
            let _ = write!(
                out,
                "{{\"seq\":{seq},\"ts_ns\":{ts_ns},\"kind\":\"event\",\
                 \"name\":\"{stream}.{log_event}\",\"parent\":{parent}{buf}}}"
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; unit tests here and integration
    // tests elsewhere each take this lock (or their own) around install/
    // uninstall. Poisoning is irrelevant — the state is reset on entry.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn escaping_produces_valid_json_strings() {
        let _guard = locked();
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn disabled_spans_and_events_emit_nothing() {
        let _guard = locked();
        uninstall();
        {
            let _span = span("quiet");
            event("nothing", |a| {
                a.num("x", 1);
            });
        }
        install_memory();
        assert!(drain().is_empty(), "lines emitted while disabled must not appear");
        uninstall();
    }

    #[test]
    fn spans_nest_and_parent_through_the_thread_stack() {
        let _guard = locked();
        install_memory();
        {
            let outer = span("outer");
            assert_eq!(current_span_id(), outer.id());
            {
                let _inner = span("inner");
                event("mark", |a| {
                    a.str("note", "inside");
                });
            }
            assert_eq!(current_span_id(), outer.id());
        }
        assert_eq!(current_span_id(), 0);
        let lines = drain();
        uninstall();
        assert_eq!(lines.len(), 3);
        // Drop order: mark event, inner span, outer span.
        let parsed: Vec<serde_json::Value> =
            lines.iter().map(|l| serde_json::from_str(l).expect("valid JSON")).collect();
        let outer = parsed[2].get("id").and_then(serde_json::Value::as_u64).unwrap();
        let inner = parsed[1].get("id").and_then(serde_json::Value::as_u64).unwrap();
        assert_eq!(parsed[1].get("parent").and_then(serde_json::Value::as_u64), Some(outer));
        assert_eq!(parsed[0].get("parent").and_then(serde_json::Value::as_u64), Some(inner));
        assert_eq!(parsed[0].get("note").and_then(serde_json::Value::as_str), Some("inside"));
    }

    #[test]
    fn flush_writes_the_file_atomically_and_cumulatively() {
        let _guard = locked();
        let dir = std::env::temp_dir().join(format!("bittrans_trace_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        install_file(&path);
        event("first", |_| {});
        flush().unwrap();
        event("second", |_| {});
        flush().unwrap();
        uninstall();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"first\""));
        assert!(lines[1].contains("\"second\""));
        // No temp droppings.
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn stamps_are_monotone_under_contention() {
        let _guard = locked();
        install_memory();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..50u64 {
                        event("tick", |a| {
                            a.num("i", i);
                        });
                    }
                });
            }
        });
        let lines = drain();
        uninstall();
        assert_eq!(lines.len(), 200);
        let mut last_seq = 0;
        let mut last_ts = 0;
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
            let seq = v.get("seq").and_then(serde_json::Value::as_u64).unwrap();
            let ts = v.get("ts_ns").and_then(serde_json::Value::as_u64).unwrap();
            assert!(seq > last_seq, "seq must strictly increase: {line}");
            assert!(ts >= last_ts, "ts_ns must be monotone: {line}");
            last_seq = seq;
            last_ts = ts;
        }
    }
}
