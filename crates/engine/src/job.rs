//! The unit of work: one specification at one latency under one
//! configuration, plus the outcome type a batch hands back.
//!
//! Jobs are what both front ends bottom out in: [`crate::Engine::run`]
//! takes them directly, and a [`crate::Study`] grid expands each axis
//! coordinate into one job before deduplicating by [`JobKey`].

use crate::key::JobKey;
use bittrans_core::{CompareOptions, Comparison, PipelineError};
use bittrans_ir::Spec;
use std::sync::Arc;

/// What one job produces: the baseline-vs-optimized [`Comparison`], or the
/// pipeline error that stopped it (e.g. an infeasible latency).
pub type JobResult = Result<Comparison, PipelineError>;

/// One unit of batch work: run both flows on `spec` at `latency` under
/// `options` (the same work as [`bittrans_core::compare`]).
#[derive(Clone, Debug)]
pub struct Job {
    /// The specification to optimize.
    pub spec: Spec,
    /// The latency constraint λ in cycles.
    pub latency: u32,
    /// Pipeline configuration (adder architecture, timing model, …).
    pub options: CompareOptions,
}

impl Job {
    /// A job with default [`CompareOptions`].
    pub fn new(spec: Spec, latency: u32) -> Self {
        Job { spec, latency, options: CompareOptions::default() }
    }

    /// A job with explicit options.
    pub fn with_options(spec: Spec, latency: u32, options: CompareOptions) -> Self {
        Job { spec, latency, options }
    }

    /// The job's content-addressed cache key: a stable hash of the
    /// canonicalized specification text, the latency and the options.
    ///
    /// Two jobs built from different `Spec` values have equal keys exactly
    /// when their canonical forms agree — e.g. the same source parsed
    /// twice, or re-read from disk with different whitespace.
    pub fn key(&self) -> JobKey {
        JobKey::of(&self.spec, self.latency, &self.options)
    }
}

/// The result of one job within a batch, in submission order.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Specification name (for reporting).
    pub name: String,
    /// The latency the job ran at.
    pub latency: u32,
    /// The job's content-addressed key.
    pub key: JobKey,
    /// Whether this outcome did no fresh pipeline work: the result came
    /// from the cache, or from an identical job earlier in the same batch.
    pub from_cache: bool,
    /// The comparison, shared with the cache.
    pub result: Arc<JobResult>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: &str) -> Spec {
        Spec::parse(src).unwrap()
    }

    #[test]
    fn key_ignores_source_formatting() {
        let a = Job::new(spec("spec s { input a: u8; input b: u8; output o = a + b; }"), 3);
        let b =
            Job::new(spec("spec s {\n  input a: u8;\n  input b: u8;\n  output o = a + b;\n}"), 3);
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn key_separates_latency_options_and_content() {
        let s = spec("spec s { input a: u8; input b: u8; output o = a + b; }");
        let base = Job::new(s.clone(), 3);
        assert_ne!(base.key(), Job::new(s.clone(), 4).key());
        let options = CompareOptions { balance: false, ..Default::default() };
        assert_ne!(base.key(), Job::with_options(s, 3, options).key());
        let other = spec("spec s { input a: u8; input b: u8; output o = a - b; }");
        assert_ne!(base.key(), Job::new(other, 3).key());
    }
}
