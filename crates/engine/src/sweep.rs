//! Parallel latency sweeps: the Fig. 4 experiment as a one-axis [`Study`].
//!
//! `bittrans_core::latency_sweep` walks the latency range serially; this
//! module spans the same range as a [`Study`] latency axis, so the points
//! run on the engine's worker pool and land in the content-addressed
//! cache. Overlapping sweeps — shared endpoints, a re-run after editing
//! one spec in a suite — skip the latencies they have already paid for.

use crate::{Engine, Study};
use bittrans_core::{CompareOptions, SweepPoint};
use bittrans_ir::Spec;

/// Runs `compare` at every latency in parallel and keeps the feasible
/// points, exactly like the serial `bittrans_core::latency_sweep`.
pub fn sweep(
    engine: &Engine,
    spec: &Spec,
    latencies: impl IntoIterator<Item = u32>,
    options: &CompareOptions,
) -> Vec<SweepPoint> {
    Study::single(spec.clone())
        .latencies(latencies)
        .base_options(*options)
        .run(engine)
        .sweep_points()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_core::latency_sweep;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn matches_serial_latency_sweep() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let serial = latency_sweep(&spec, 2..=8, &options).expect("serial sweep");
        let engine = Engine::default();
        let parallel = engine.sweep(&spec, 2..=8, &options);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.latency, p.latency);
            assert_eq!(s.original_ns, p.original_ns);
            assert_eq!(s.optimized_ns, p.optimized_ns);
        }
    }

    #[test]
    fn overlapping_sweeps_reuse_cached_points() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let engine = Engine::default();
        engine.sweep(&spec, 3..=6, &options);
        let before = engine.stats();
        engine.sweep(&spec, 4..=8, &options);
        let after = engine.stats();
        // λ = 4, 5, 6 came from the cache; only 7 and 8 were new work.
        assert_eq!(after.cache_hits - before.cache_hits, 3);
        assert_eq!(after.cache_misses - before.cache_misses, 2);
    }
}
