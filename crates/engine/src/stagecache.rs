//! Incremental stage-level caching: memoized pipeline stages keyed by
//! their exact inputs.
//!
//! The job cache ([`crate::cache`]) works at whole-job granularity
//! (`spec × latency × options`), so a latency sweep over one spec
//! re-runs kernel extraction at every point and a one-operation spec
//! edit is a 100 % cold start. This module decomposes a cache-miss job
//! into the stage functions `bittrans-core` exposes
//! ([`bittrans_core::stage_extract`] and friends) and memoizes each
//! stage under a content key derived from *that stage's inputs alone*:
//!
//! ```text
//! stage        key material (joined with \x1f, then FNV-128 hashed)
//! ─────        ──────────────────────────────────────────────────────
//! extract      "extract", canonical spec text
//! fragment     "fragment", canonical kernel text, λ
//! verify       "verify", spec text, fragmented spec text, vectors
//! sched_base   "sched_base", spec text, λ, chaining, balance
//! sched_frag   "sched_frag", kernel text, λ, balance
//! alloc_*      producing-schedule material + adder architecture
//! time_*       producing-allocation material + timing-model bits
//! ```
//!
//! Parsing/canonicalization is the degenerate zeroth stage: its
//! "artifact" is the canonical spec text itself, computed once per
//! [`StageCache::compare_staged`] call and embedded in every downstream
//! key (it is not separately cached — producing the key would cost as
//! much as producing the artifact).
//!
//! Because keys chain through *artifact content* (the fragment key hashes
//! the extracted kernel's text, not the original spec's), an edit that
//! does not change a stage's inputs does not invalidate anything
//! downstream of it, and two different specs with the same kernel share
//! every post-extraction stage. Concretely:
//!
//! * a latency sweep over one spec shares the latency-invariant prefix
//!   (one `extract`) across all points;
//! * an options axis (adder architecture, timing model) shares
//!   `extract`, `fragment` and `verify` — the expensive stages — and
//!   recomputes only allocation and timing;
//! * a spec edit recomputes only its downstream suffix.
//!
//! # Storage
//!
//! Stage outputs live in memory as [`Arc`]-shared artifacts behind
//! [`OnceLock`] slots: concurrent workers that need the same stage block
//! on one initializer instead of computing it twice, so hit/miss counts
//! are deterministic for a given job set. Errors are cached too —
//! stages are pure functions of their keys, so a failure is as
//! reproducible as a success (this mirrors the job cache, which also
//! serves errors from memory).
//!
//! The disk tier under `<cache-dir>/stages/` holds **verify stages
//! only**, as `{"schema":1,"stage":"verify","ok":true}` success tokens
//! named `<key>.json`. Verification is the one stage that is both
//! expensive (thousands of co-simulated vectors) and trivially
//! serializable (its artifact is the fact that it passed). The other
//! artifacts are `Spec`-shaped, and the spec dump format is explicitly
//! *not* re-parseable (see `Spec`'s `Display` docs), so persisting them
//! would need a real codec — a noted follow-on, not a quick win. Tokens
//! are written via the same hidden-temp-file + atomic-rename idiom as
//! the job store; a corrupt token is deleted and recomputed, and the
//! filesystem itself is the index (no manifest to rebuild). The
//! `stages/` subdirectory is invisible to the job store's directory
//! scan, which only considers `*.json` files.
//!
//! Every resolution emits one `stage` trace event whose `provenance`
//! (`memory` / `disk` / `computed`) reconciles exactly with the
//! [`StageTally`] counters surfaced as `stage_hits` / `stage_misses` in
//! [`crate::EngineStats`].

use crate::key::JobKey;
use crate::trace;
use bittrans_core::{
    stage_allocate, stage_extract, stage_fragment, stage_schedule_conventional,
    stage_schedule_fragments, stage_time, stage_verify, Chaining, CompareOptions, Comparison,
    Datapath, Fragmented, Implementation, PipelineError, Schedule,
};
use bittrans_ir::Spec;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One memoized stage output (or the error that producing it raised).
#[derive(Clone, Debug)]
enum StageValue {
    /// `extract`: the additive-form kernel.
    Kernel(Arc<Spec>),
    /// `fragment`: the fragmented kernel with metadata.
    Fragmented(Arc<Fragmented>),
    /// `verify`: the fact that equivalence checking passed.
    Verified,
    /// `sched_base` / `sched_frag`: a schedule.
    Schedule(Arc<Schedule>),
    /// `alloc_base` / `alloc_frag`: an allocated datapath.
    Datapath(Arc<Datapath>),
    /// `time_base` / `time_frag`: the measured implementation.
    Timed(Arc<Implementation>),
}

impl StageValue {
    // The `unreachable!`s below guard against two different stages
    // sharing a key; keys are prefix-tagged with the stage name, so a
    // mismatch means a 128-bit hash collision across tags.
    fn into_kernel(self) -> Arc<Spec> {
        match self {
            StageValue::Kernel(v) => v,
            _ => unreachable!("stage key resolved to a non-kernel artifact"),
        }
    }
    fn into_fragmented(self) -> Arc<Fragmented> {
        match self {
            StageValue::Fragmented(v) => v,
            _ => unreachable!("stage key resolved to a non-fragment artifact"),
        }
    }
    fn into_schedule(self) -> Arc<Schedule> {
        match self {
            StageValue::Schedule(v) => v,
            _ => unreachable!("stage key resolved to a non-schedule artifact"),
        }
    }
    fn into_datapath(self) -> Arc<Datapath> {
        match self {
            StageValue::Datapath(v) => v,
            _ => unreachable!("stage key resolved to a non-datapath artifact"),
        }
    }
    fn into_timed(self) -> Arc<Implementation> {
        match self {
            StageValue::Timed(v) => v,
            _ => unreachable!("stage key resolved to a non-implementation artifact"),
        }
    }
}

type Slot = Arc<OnceLock<Result<StageValue, PipelineError>>>;

/// Where a stage resolution was answered from; mirrors the `provenance`
/// attribute of the emitted `stage` trace event.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Provenance {
    /// Another caller already materialized the slot (or is doing so now;
    /// `OnceLock` blocks us until it lands).
    Memory,
    /// Loaded from a `<cache-dir>/stages/` token.
    Disk,
    /// Ran the stage function.
    Computed,
}

/// Per-batch (or per-request) stage hit/miss counters, `Arc`-shared into
/// worker closures and folded into that batch's [`crate::EngineStats`].
#[derive(Debug, Default)]
pub struct StageTally {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StageTally {
    /// Stages served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Stages computed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The engine's stage memo: in-memory `OnceLock` slots for every stage
/// artifact, an optional disk tier for verify tokens, and lifetime
/// counters. One per [`crate::Engine`], shared by every batch and serve
/// request run through it.
#[derive(Debug, Default)]
pub struct StageCache {
    slots: Mutex<HashMap<JobKey, Slot>>,
    /// `<cache-dir>/stages`, when a cache directory is attached.
    disk_dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StageCache {
    /// Attaches the stage token directory (`<cache-dir>/stages`). The
    /// directory is created lazily, on first spill.
    pub(crate) fn attach_disk(&mut self, dir: PathBuf) {
        self.disk_dir = Some(dir);
    }

    /// Lifetime stage hits across every batch.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime stage misses across every batch.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resolves one stage: serves the memoized artifact, or probes the
    /// disk tier (verify tokens only), or runs `compute` — exactly once
    /// per key, even under concurrency, because every caller funnels
    /// through the slot's `OnceLock`.
    fn resolve(
        &self,
        key: JobKey,
        stage: &'static str,
        tally: &StageTally,
        disk_token: bool,
        compute: impl FnOnce() -> Result<StageValue, PipelineError>,
    ) -> Result<StageValue, PipelineError> {
        let slot: Slot = {
            let mut slots = self.slots.lock().expect("stage cache lock");
            Arc::clone(slots.entry(key).or_default())
        };
        let mut provenance = Provenance::Memory;
        let result = slot
            .get_or_init(|| {
                if disk_token && self.load_token(key) {
                    provenance = Provenance::Disk;
                    return Ok(StageValue::Verified);
                }
                provenance = Provenance::Computed;
                let value = compute();
                if disk_token && value.is_ok() {
                    self.spill_token(key);
                }
                value
            })
            .clone();
        match provenance {
            Provenance::Computed => {
                tally.misses.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            Provenance::Memory | Provenance::Disk => {
                tally.hits.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        trace::event("stage", |a| {
            a.str("stage", stage)
                .str("key", &key.to_string())
                .str(
                    "provenance",
                    match provenance {
                        Provenance::Memory => "memory",
                        Provenance::Disk => "disk",
                        Provenance::Computed => "computed",
                    },
                )
                .flag("ok", result.is_ok());
        });
        result
    }

    /// Loads a verify token for `key` from the disk tier. A token that
    /// exists but does not parse to the expected shape is corrupt: it is
    /// deleted so the recompute's respill repairs it.
    fn load_token(&self, key: JobKey) -> bool {
        let Some(dir) = &self.disk_dir else { return false };
        let path = dir.join(format!("{key}.json"));
        let Ok(body) = std::fs::read_to_string(&path) else { return false };
        let parsed: Result<serde_json::Value, _> = serde_json::from_str(&body);
        let valid = parsed.is_ok_and(|v| {
            v.get("schema").and_then(serde_json::Value::as_u64) == Some(TOKEN_SCHEMA)
                && v.get("stage").and_then(serde_json::Value::as_str) == Some("verify")
                && v.get("ok").and_then(serde_json::Value::as_bool) == Some(true)
        });
        if !valid {
            let _ = std::fs::remove_file(&path);
        }
        valid
    }

    /// Best-effort spill of a verify success token: hidden temp file in
    /// the same directory, then atomic rename, so a reader never sees a
    /// torn token. A failed write costs a re-verification in some later
    /// process, never this result.
    fn spill_token(&self, key: JobKey) {
        let Some(dir) = &self.disk_dir else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let body = format!("{{\"schema\":{TOKEN_SCHEMA},\"stage\":\"verify\",\"ok\":true}}\n");
        let tmp = dir.join(format!(".{key}.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, body).is_ok()
            && std::fs::rename(&tmp, dir.join(format!("{key}.json"))).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Runs one comparison through the memoized stages. Composes the
    /// very same `bittrans-core` stage functions in the very same order
    /// as the monolithic [`bittrans_core::compare`] — baseline flow
    /// fully first, then the optimized flow — so results (including
    /// which error surfaces when both flows would fail) are
    /// bit-identical to the uncached path.
    pub(crate) fn compare_staged(
        &self,
        spec: &Spec,
        latency: u32,
        options: &CompareOptions,
        tally: &StageTally,
    ) -> Result<Comparison, PipelineError> {
        // The parse/canonicalize "stage": one canonical rendering per
        // call, embedded in every downstream key.
        let spec_text = spec.to_string();
        let balance = u8::from(options.balance);
        let adder = options.adder_arch.code();
        let timing_bits = format!(
            "{:016x};{:016x}",
            options.timing.delta_ns.to_bits(),
            options.timing.overhead_ns.to_bits()
        );
        let lat = latency.to_string();

        // Baseline flow (conventional schedule of the original spec).
        let base_sched = self
            .resolve(
                stage_key(&["sched_base", &spec_text, &lat, "component_sum", &balance.to_string()]),
                "sched_base",
                tally,
                false,
                || {
                    stage_schedule_conventional(
                        spec,
                        latency,
                        Chaining::ComponentSum,
                        options.balance,
                    )
                    .map(|s| StageValue::Schedule(Arc::new(s)))
                },
            )?
            .into_schedule();
        let base_alloc_material =
            ["alloc_base", &spec_text, &lat, "component_sum", &balance.to_string(), adder]
                .join("\x1f");
        let base_dp = self
            .resolve(
                JobKey::of_bytes(base_alloc_material.as_bytes()),
                "alloc_base",
                tally,
                false,
                || {
                    Ok(StageValue::Datapath(Arc::new(stage_allocate(
                        spec,
                        &base_sched,
                        options.adder_arch,
                    ))))
                },
            )?
            .into_datapath();
        let original = self
            .resolve(
                stage_key(&["time_base", &base_alloc_material, &timing_bits]),
                "time_base",
                tally,
                false,
                || {
                    Ok(StageValue::Timed(Arc::new(stage_time(
                        spec.name(),
                        spec,
                        &base_sched,
                        &base_dp,
                        &options.timing,
                    ))))
                },
            )?
            .into_timed();

        // Optimized flow. `extract` is the latency-invariant prefix: one
        // per spec, shared by every point of a sweep. Everything after
        // it keys on the *kernel's* content, so specs that extract to
        // the same kernel share the whole suffix.
        let kernel = self
            .resolve(stage_key(&["extract", &spec_text]), "extract", tally, false, || {
                stage_extract(spec).map(|k| StageValue::Kernel(Arc::new(k)))
            })?
            .into_kernel();
        let kernel_text = kernel.to_string();
        let fragmented = self
            .resolve(
                stage_key(&["fragment", &kernel_text, &lat]),
                "fragment",
                tally,
                false,
                || stage_fragment(&kernel, latency).map(|f| StageValue::Fragmented(Arc::new(f))),
            )?
            .into_fragmented();
        if options.verify_vectors > 0 {
            // Keyed on the *fragmented* spec's content: two latencies
            // that fragment identically share one verification — and
            // verify is the only stage worth a disk token.
            let frag_text = fragmented.spec.to_string();
            self.resolve(
                stage_key(&["verify", &spec_text, &frag_text, &options.verify_vectors.to_string()]),
                "verify",
                tally,
                true,
                || {
                    stage_verify(spec, &fragmented.spec, options.verify_vectors)
                        .map(|()| StageValue::Verified)
                },
            )?;
        }
        let frag_sched = self
            .resolve(
                stage_key(&["sched_frag", &kernel_text, &lat, &balance.to_string()]),
                "sched_frag",
                tally,
                false,
                || {
                    stage_schedule_fragments(&fragmented, options.balance)
                        .map(|s| StageValue::Schedule(Arc::new(s)))
                },
            )?
            .into_schedule();
        let frag_alloc_material =
            ["alloc_frag", &kernel_text, &lat, &balance.to_string(), adder].join("\x1f");
        let frag_dp = self
            .resolve(
                JobKey::of_bytes(frag_alloc_material.as_bytes()),
                "alloc_frag",
                tally,
                false,
                || {
                    Ok(StageValue::Datapath(Arc::new(stage_allocate(
                        &fragmented.spec,
                        &frag_sched,
                        options.adder_arch,
                    ))))
                },
            )?
            .into_datapath();
        let optimized = self
            .resolve(
                // `Implementation.name` is the original spec's name, so
                // the timing key must carry it: two specs sharing a
                // kernel share everything up to here, but not the label.
                stage_key(&["time_frag", spec.name(), &frag_alloc_material, &timing_bits]),
                "time_frag",
                tally,
                false,
                || {
                    Ok(StageValue::Timed(Arc::new(stage_time(
                        spec.name(),
                        &fragmented.spec,
                        &frag_sched,
                        &frag_dp,
                        &options.timing,
                    ))))
                },
            )?
            .into_timed();

        Ok(Comparison { original: (*original).clone(), optimized: (*optimized).clone() })
    }
}

/// Schema of the on-disk verify tokens.
const TOKEN_SCHEMA: u64 = 1;

/// A stage key: the stage-name-tagged parts joined with the same `\x1f`
/// separator [`crate::key`] uses, FNV-128 hashed.
fn stage_key(parts: &[&str]) -> JobKey {
    JobKey::of_bytes(parts.join("\x1f").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_core::compare;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn staged_result_is_bit_identical_to_monolithic() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let cache = StageCache::default();
        let tally = StageTally::default();
        for latency in 2..=5 {
            let staged = cache.compare_staged(&spec, latency, &options, &tally).unwrap();
            let mono = compare(&spec, latency, &options).unwrap();
            assert_eq!(
                serde_json::to_string(&staged).unwrap(),
                serde_json::to_string(&mono).unwrap(),
                "λ={latency}"
            );
        }
    }

    #[test]
    fn latency_sweep_shares_the_extract_prefix() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let cache = StageCache::default();
        let tally = StageTally::default();
        cache.compare_staged(&spec, 3, &options, &tally).unwrap();
        let cold_misses = tally.misses();
        assert_eq!(tally.hits(), 0, "cold point computes every stage");

        // Each further latency point reuses `extract` (λ-invariant) and
        // computes its per-latency suffix.
        for latency in 4..=6 {
            let before = tally.hits();
            cache.compare_staged(&spec, latency, &options, &tally).unwrap();
            assert!(tally.hits() > before, "λ={latency} must hit the extract stage");
        }
        // Re-running a point recomputes nothing at all.
        let misses_before = tally.misses();
        cache.compare_staged(&spec, 3, &options, &tally).unwrap();
        assert_eq!(tally.misses(), misses_before, "warm point is all hits");
        assert!(tally.misses() >= cold_misses);
    }

    #[test]
    fn adder_axis_shares_extract_fragment_and_verify() {
        let spec = three_adds();
        let cache = StageCache::default();
        let tally = StageTally::default();
        let rca = CompareOptions::default();
        cache.compare_staged(&spec, 3, &rca, &tally).unwrap();

        let csel = CompareOptions {
            adder_arch: bittrans_rtl::AdderArch::CarrySelect,
            ..CompareOptions::default()
        };
        let (h0, m0) = (tally.hits(), tally.misses());
        cache.compare_staged(&spec, 3, &csel, &tally).unwrap();
        // Shared: extract, fragment, verify, and both schedules (the
        // adder only enters at allocation). Recomputed: both alloc and
        // both time stages.
        assert_eq!(tally.hits() - h0, 5, "extract+fragment+verify+2×sched shared");
        assert_eq!(tally.misses() - m0, 4, "2×alloc + 2×time recomputed");
    }

    #[test]
    fn stage_errors_are_cached_and_stable() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let cache = StageCache::default();
        let tally = StageTally::default();
        let first = cache.compare_staged(&spec, 0, &options, &tally).unwrap_err();
        let misses = tally.misses();
        let second = cache.compare_staged(&spec, 0, &options, &tally).unwrap_err();
        assert_eq!(tally.misses(), misses, "failed stage is served from cache");
        assert_eq!(first.to_string(), second.to_string());
        assert!(first.is_infeasible());
    }

    #[test]
    fn verify_tokens_round_trip_through_the_disk_tier() {
        let dir = tempdir("stage-tokens");
        let spec = three_adds();
        let options = CompareOptions { verify_vectors: 64, ..CompareOptions::default() };

        let mut warm = StageCache::default();
        warm.attach_disk(dir.clone());
        let tally = StageTally::default();
        warm.compare_staged(&spec, 3, &options, &tally).unwrap();
        let tokens: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(tokens.len(), 1, "one verify token spilled: {tokens:?}");
        assert!(tokens[0].ends_with(".json"));

        // A fresh cache (fresh process) over the same directory loads
        // the token instead of re-verifying; its only hit is `verify`.
        let mut fresh = StageCache::default();
        fresh.attach_disk(dir.clone());
        let fresh_tally = StageTally::default();
        fresh.compare_staged(&spec, 3, &options, &fresh_tally).unwrap();
        assert_eq!(fresh_tally.hits(), 1, "verify served from disk");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_verify_token_is_deleted_and_recomputed() {
        let dir = tempdir("stage-corrupt");
        let spec = three_adds();
        let options = CompareOptions { verify_vectors: 64, ..CompareOptions::default() };

        let mut seed = StageCache::default();
        seed.attach_disk(dir.clone());
        seed.compare_staged(&spec, 3, &options, &StageTally::default()).unwrap();
        let token = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();

        for corruption in ["", "{\"schema\":999}", "not json at all", "{\"stage\":\"verify\"}"] {
            std::fs::write(&token, corruption).unwrap();
            let mut fresh = StageCache::default();
            fresh.attach_disk(dir.clone());
            let tally = StageTally::default();
            fresh.compare_staged(&spec, 3, &options, &tally).unwrap();
            assert_eq!(tally.hits(), 0, "corrupt token {corruption:?} must not hit");
            // The recompute respilled a valid token.
            let body = std::fs::read_to_string(&token).unwrap();
            assert!(body.contains("\"ok\":true"), "respill repaired the token: {body}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bittrans-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::SystemTime::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
