//! Incremental stage-level caching: memoized pipeline stages keyed by
//! their exact inputs.
//!
//! The job cache ([`crate::cache`]) works at whole-job granularity
//! (`spec × latency × options`), so a latency sweep over one spec
//! re-runs kernel extraction at every point and a one-operation spec
//! edit is a 100 % cold start. This module decomposes a cache-miss job
//! into the stage functions `bittrans-core` exposes
//! ([`bittrans_core::stage_extract`] and friends) and memoizes each
//! stage under a content key derived from *that stage's inputs alone*:
//!
//! ```text
//! stage        key material (joined with \x1f, then FNV-128 hashed)
//! ─────        ──────────────────────────────────────────────────────
//! extract      "extract", canonical spec text
//! fragment     "fragment", canonical kernel text, λ
//! verify       "verify", spec text, fragmented spec text, vectors
//! sched_base   "sched_base", spec text, λ, chaining, balance
//! sched_frag   "sched_frag", kernel text, λ, balance
//! alloc_*      producing-schedule material + adder architecture
//! time_*       producing-allocation material + timing-model bits
//! ```
//!
//! Parsing/canonicalization is the degenerate zeroth stage: its
//! "artifact" is the canonical spec text itself, computed once per
//! [`StageCache::compare_staged`] call and embedded in every downstream
//! key (it is not separately cached — producing the key would cost as
//! much as producing the artifact).
//!
//! Because keys chain through *artifact content* (the fragment key hashes
//! the extracted kernel's text, not the original spec's), an edit that
//! does not change a stage's inputs does not invalidate anything
//! downstream of it, and two different specs with the same kernel share
//! every post-extraction stage. Concretely:
//!
//! * a latency sweep over one spec shares the latency-invariant prefix
//!   (one `extract`) across all points;
//! * an options axis (adder architecture, timing model) shares
//!   `extract`, `fragment` and `verify` — the expensive stages — and
//!   recomputes only allocation and timing;
//! * a spec edit recomputes only its downstream suffix.
//!
//! # Storage
//!
//! Stage outputs live in memory as [`Arc`]-shared artifacts behind
//! [`OnceLock`] slots: concurrent workers that need the same stage block
//! on one initializer instead of computing it twice, so hit/miss counts
//! are deterministic for a given job set. Errors are cached too —
//! stages are pure functions of their keys, so a failure is as
//! reproducible as a success (this mirrors the job cache, which also
//! serves errors from memory). The memo is bounded: at most
//! [`STAGE_MEMO_CAPACITY`] slots are resident, evicted oldest-first, so
//! a long-lived serve process stops growing without limit (an evicted
//! stage costs at worst one disk load or recompute later).
//!
//! The disk tier under `<cache-dir>/stages/` persists **every** stage,
//! as `<key>.stage` files: a one-line `bittrans-stage 2 <stage> ok`
//! envelope followed by the artifact's canonical text (the
//! `to_canonical` / `from_canonical` codec each artifact type carries in
//! its home crate — `Display` remains the human-oriented, *non*-parseable
//! dump). A fresh process over a warm directory therefore recomputes
//! zero stages for an unchanged grid. Files are written via the same
//! hidden-temp-file + atomic-rename idiom as the job store; a file whose
//! envelope or body fails to decode — including one written by a *newer*
//! schema — is deleted and recomputed, never misparsed, and the
//! recompute's respill repairs it. The filesystem itself is the index
//! (no manifest to rebuild); the `stages/` subdirectory is invisible to
//! the job store's directory scan, which only considers top-level
//! `*.json` files, and is swept by `cache prune` alongside the job
//! entries (resident stages are pinned). Legacy schema-1 verify tokens
//! (`<key>.json`, from builds predating the codec) are simply ignored
//! until pruned.
//!
//! Every resolution emits one `stage` trace event whose `provenance`
//! (`memory` / `disk` / `computed`) reconciles exactly with the
//! [`StageTally`] counters surfaced as `stage_hits` / `stage_misses` in
//! [`crate::EngineStats`].

use crate::key::JobKey;
use crate::trace;
use bittrans_core::{
    stage_allocate, stage_extract, stage_fragment, stage_schedule_conventional,
    stage_schedule_fragments, stage_time, stage_verify, Chaining, CompareOptions, Comparison,
    Datapath, Fragmented, Implementation, PipelineError, Schedule,
};
use bittrans_ir::Spec;
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default bound on resident in-memory stage slots. At roughly a few
/// kilobytes per artifact this caps the memo in the tens of megabytes;
/// a serve process that outgrows it falls back to the disk tier.
pub(crate) const STAGE_MEMO_CAPACITY: usize = 4096;

/// Schema version of the `<key>.stage` disk envelope. Bumping it makes
/// old files decode-fail (delete → recompute → respill), never misparse.
const STAGE_FILE_SCHEMA: u32 = 2;

/// One memoized stage output (or the error that producing it raised).
#[derive(Clone, Debug)]
enum StageValue {
    /// `extract`: the additive-form kernel.
    Kernel(Arc<Spec>),
    /// `fragment`: the fragmented kernel with metadata.
    Fragmented(Arc<Fragmented>),
    /// `verify`: the fact that equivalence checking passed.
    Verified,
    /// `sched_base` / `sched_frag`: a schedule.
    Schedule(Arc<Schedule>),
    /// `alloc_base` / `alloc_frag`: an allocated datapath.
    Datapath(Arc<Datapath>),
    /// `time_base` / `time_frag`: the measured implementation.
    Timed(Arc<Implementation>),
}

impl StageValue {
    // The `unreachable!`s below guard against two different stages
    // sharing a key; keys are prefix-tagged with the stage name, so a
    // mismatch means a 128-bit hash collision across tags.
    fn into_kernel(self) -> Arc<Spec> {
        match self {
            StageValue::Kernel(v) => v,
            _ => unreachable!("stage key resolved to a non-kernel artifact"),
        }
    }
    fn into_fragmented(self) -> Arc<Fragmented> {
        match self {
            StageValue::Fragmented(v) => v,
            _ => unreachable!("stage key resolved to a non-fragment artifact"),
        }
    }
    fn into_schedule(self) -> Arc<Schedule> {
        match self {
            StageValue::Schedule(v) => v,
            _ => unreachable!("stage key resolved to a non-schedule artifact"),
        }
    }
    fn into_datapath(self) -> Arc<Datapath> {
        match self {
            StageValue::Datapath(v) => v,
            _ => unreachable!("stage key resolved to a non-datapath artifact"),
        }
    }
    fn into_timed(self) -> Arc<Implementation> {
        match self {
            StageValue::Timed(v) => v,
            _ => unreachable!("stage key resolved to a non-implementation artifact"),
        }
    }

    /// The canonical text spilled as the `<key>.stage` body (empty for
    /// `Verified`, whose artifact is the fact that it passed).
    fn to_canonical(&self) -> String {
        match self {
            StageValue::Kernel(v) => v.to_canonical(),
            StageValue::Fragmented(v) => v.to_canonical(),
            StageValue::Verified => String::new(),
            StageValue::Schedule(v) => v.to_canonical(),
            StageValue::Datapath(v) => v.to_canonical(),
            StageValue::Timed(v) => v.to_canonical(),
        }
    }
}

/// The artifact shape a stage resolves to — what the disk tier must
/// decode a `<key>.stage` body back into.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StageKind {
    /// Body is a canonical `Spec`.
    Kernel,
    /// Body is a canonical `Fragmented`.
    Fragmented,
    /// Body is empty.
    Verified,
    /// Body is a canonical `Schedule`.
    Schedule,
    /// Body is a canonical `Datapath`.
    Datapath,
    /// Body is a canonical `Implementation`.
    Timed,
}

impl StageKind {
    /// Decodes a `<key>.stage` body into the artifact; `None` marks the
    /// file corrupt (delete → recompute → respill).
    fn decode(self, body: &str) -> Option<StageValue> {
        match self {
            StageKind::Kernel => {
                Spec::from_canonical(body).ok().map(|v| StageValue::Kernel(Arc::new(v)))
            }
            StageKind::Fragmented => {
                Fragmented::from_canonical(body).ok().map(|v| StageValue::Fragmented(Arc::new(v)))
            }
            StageKind::Verified => body.is_empty().then_some(StageValue::Verified),
            StageKind::Schedule => {
                Schedule::from_canonical(body).ok().map(|v| StageValue::Schedule(Arc::new(v)))
            }
            StageKind::Datapath => {
                Datapath::from_canonical(body).ok().map(|v| StageValue::Datapath(Arc::new(v)))
            }
            StageKind::Timed => {
                Implementation::from_canonical(body).ok().map(|v| StageValue::Timed(Arc::new(v)))
            }
        }
    }
}

type Slot = Arc<OnceLock<Result<StageValue, PipelineError>>>;

/// Where a stage resolution was answered from; mirrors the `provenance`
/// attribute of the emitted `stage` trace event.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Provenance {
    /// Another caller already materialized the slot (or is doing so now;
    /// `OnceLock` blocks us until it lands).
    Memory,
    /// Loaded from a `<cache-dir>/stages/` artifact file.
    Disk,
    /// Ran the stage function.
    Computed,
}

/// Per-batch (or per-request) stage hit/miss counters, `Arc`-shared into
/// worker closures and folded into that batch's [`crate::EngineStats`].
#[derive(Debug, Default)]
pub struct StageTally {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StageTally {
    /// Stages served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Stages computed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The bounded slot memo: insertion-ordered, evicted oldest-first once
/// `capacity` is reached. Eviction only drops the memo's reference —
/// in-flight resolutions hold their own `Arc` and complete normally; a
/// later request for an evicted key re-resolves through disk or compute.
#[derive(Debug)]
struct Memo {
    map: HashMap<JobKey, Slot>,
    order: VecDeque<JobKey>,
    capacity: usize,
}

impl Default for Memo {
    fn default() -> Self {
        Memo { map: HashMap::new(), order: VecDeque::new(), capacity: STAGE_MEMO_CAPACITY }
    }
}

impl Memo {
    fn slot(&mut self, key: JobKey) -> Slot {
        if let Some(slot) = self.map.get(&key) {
            return Arc::clone(slot);
        }
        while self.map.len() >= self.capacity.max(1) {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.map.remove(&oldest);
                }
                None => break,
            }
        }
        let slot = Slot::default();
        self.map.insert(key, Arc::clone(&slot));
        self.order.push_back(key);
        slot
    }
}

/// The engine's stage memo: bounded in-memory `OnceLock` slots for stage
/// artifacts, an optional disk tier persisting every stage through the
/// canonical codec, and lifetime counters. One per [`crate::Engine`],
/// shared by every batch and serve request run through it.
#[derive(Debug, Default)]
pub struct StageCache {
    memo: Mutex<Memo>,
    /// `<cache-dir>/stages`, when a cache directory is attached.
    disk_dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StageCache {
    /// Attaches the stage artifact directory (`<cache-dir>/stages`). The
    /// directory is created lazily, on first spill.
    pub(crate) fn attach_disk(&mut self, dir: PathBuf) {
        self.disk_dir = Some(dir);
    }

    /// Caps the resident slot count (tests exercise small bounds; the
    /// default is [`STAGE_MEMO_CAPACITY`]).
    #[cfg(test)]
    fn set_memo_capacity(&self, capacity: usize) {
        self.memo.lock().expect("stage cache lock").capacity = capacity;
    }

    /// Keys currently resident in the memo — `cache prune` pins these so
    /// an artifact the process is actively sharing is never evicted from
    /// disk out from under a concurrent reader's repair path.
    pub(crate) fn resident_keys(&self) -> HashSet<JobKey> {
        self.memo.lock().expect("stage cache lock").map.keys().copied().collect()
    }

    /// Lifetime stage hits across every batch.
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime stage misses across every batch.
    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resolves one stage: serves the memoized artifact, or probes the
    /// disk tier, or runs `compute` — exactly once per key, even under
    /// concurrency, because every caller funnels through the slot's
    /// `OnceLock`.
    fn resolve(
        &self,
        key: JobKey,
        stage: &'static str,
        kind: StageKind,
        tally: &StageTally,
        compute: impl FnOnce() -> Result<StageValue, PipelineError>,
    ) -> Result<StageValue, PipelineError> {
        let slot: Slot = self.memo.lock().expect("stage cache lock").slot(key);
        let mut provenance = Provenance::Memory;
        let result = slot
            .get_or_init(|| {
                if let Some(value) = self.load_artifact(key, stage, kind) {
                    provenance = Provenance::Disk;
                    return Ok(value);
                }
                provenance = Provenance::Computed;
                let value = compute();
                if let Ok(value) = &value {
                    self.spill_artifact(key, stage, value);
                }
                value
            })
            .clone();
        match provenance {
            Provenance::Computed => {
                tally.misses.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            Provenance::Memory | Provenance::Disk => {
                tally.hits.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        trace::event("stage", |a| {
            a.str("stage", stage)
                .str("key", &key.to_string())
                .str(
                    "provenance",
                    match provenance {
                        Provenance::Memory => "memory",
                        Provenance::Disk => "disk",
                        Provenance::Computed => "computed",
                    },
                )
                .flag("ok", result.is_ok());
        });
        result
    }

    /// Loads the artifact for `key` from the disk tier. A file that
    /// exists but whose envelope or body fails to decode — wrong schema
    /// (older *or* newer), wrong stage, corrupt canonical text — is
    /// deleted so the recompute's respill repairs it.
    fn load_artifact(&self, key: JobKey, stage: &str, kind: StageKind) -> Option<StageValue> {
        let dir = self.disk_dir.as_ref()?;
        let path = dir.join(format!("{key}.stage"));
        let text = std::fs::read_to_string(&path).ok()?;
        let (envelope, body) = text.split_once('\n').unwrap_or((text.as_str(), ""));
        let expected = format!("bittrans-stage {STAGE_FILE_SCHEMA} {stage} ok");
        let value = if envelope == expected { kind.decode(body) } else { None };
        if value.is_none() {
            let _ = std::fs::remove_file(&path);
        }
        value
    }

    /// Best-effort spill of a successful stage artifact: hidden temp
    /// file in the same directory, then atomic rename, so a reader never
    /// sees a torn file. A failed write costs a recompute in some later
    /// process, never this result. Errors are not spilled — they are
    /// cheap to reproduce and a schema-visible failure marker would risk
    /// pinning a transient environment problem.
    fn spill_artifact(&self, key: JobKey, stage: &str, value: &StageValue) {
        let Some(dir) = &self.disk_dir else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let body =
            format!("bittrans-stage {STAGE_FILE_SCHEMA} {stage} ok\n{}", value.to_canonical());
        let tmp = dir.join(format!(".{key}.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, body).is_ok()
            && std::fs::rename(&tmp, dir.join(format!("{key}.stage"))).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Runs one comparison through the memoized stages. Composes the
    /// very same `bittrans-core` stage functions in the very same order
    /// as the monolithic [`bittrans_core::compare`] — baseline flow
    /// fully first, then the optimized flow — so results (including
    /// which error surfaces when both flows would fail) are
    /// bit-identical to the uncached path.
    pub(crate) fn compare_staged(
        &self,
        spec: &Spec,
        latency: u32,
        options: &CompareOptions,
        tally: &StageTally,
    ) -> Result<Comparison, PipelineError> {
        // The parse/canonicalize "stage": one canonical rendering per
        // call, embedded in every downstream key.
        let spec_text = spec.to_string();
        let balance = u8::from(options.balance);
        let adder = options.adder_arch.code();
        let chaining = Chaining::ComponentSum.code();
        let timing_bits = format!(
            "{:016x};{:016x}",
            options.timing.delta_ns.to_bits(),
            options.timing.overhead_ns.to_bits()
        );
        let lat = latency.to_string();

        // Baseline flow (conventional schedule of the original spec).
        let base_sched = self
            .resolve(
                stage_key(&["sched_base", &spec_text, &lat, chaining, &balance.to_string()]),
                "sched_base",
                StageKind::Schedule,
                tally,
                || {
                    stage_schedule_conventional(
                        spec,
                        latency,
                        Chaining::ComponentSum,
                        options.balance,
                    )
                    .map(|s| StageValue::Schedule(Arc::new(s)))
                },
            )?
            .into_schedule();
        let base_alloc_material =
            ["alloc_base", &spec_text, &lat, chaining, &balance.to_string(), adder].join("\x1f");
        let base_dp = self
            .resolve(
                JobKey::of_bytes(base_alloc_material.as_bytes()),
                "alloc_base",
                StageKind::Datapath,
                tally,
                || {
                    Ok(StageValue::Datapath(Arc::new(stage_allocate(
                        spec,
                        &base_sched,
                        options.adder_arch,
                    ))))
                },
            )?
            .into_datapath();
        let original = self
            .resolve(
                stage_key(&["time_base", &base_alloc_material, &timing_bits]),
                "time_base",
                StageKind::Timed,
                tally,
                || {
                    Ok(StageValue::Timed(Arc::new(stage_time(
                        spec.name(),
                        spec,
                        &base_sched,
                        &base_dp,
                        &options.timing,
                    ))))
                },
            )?
            .into_timed();

        // Optimized flow. `extract` is the latency-invariant prefix: one
        // per spec, shared by every point of a sweep. Everything after
        // it keys on the *kernel's* content, so specs that extract to
        // the same kernel share the whole suffix.
        let kernel = self
            .resolve(
                stage_key(&["extract", &spec_text]),
                "extract",
                StageKind::Kernel,
                tally,
                || stage_extract(spec).map(|k| StageValue::Kernel(Arc::new(k))),
            )?
            .into_kernel();
        let kernel_text = kernel.to_string();
        let fragmented = self
            .resolve(
                stage_key(&["fragment", &kernel_text, &lat]),
                "fragment",
                StageKind::Fragmented,
                tally,
                || stage_fragment(&kernel, latency).map(|f| StageValue::Fragmented(Arc::new(f))),
            )?
            .into_fragmented();
        if options.verify_vectors > 0 {
            // Keyed on the *fragmented* spec's content: two latencies
            // that fragment identically share one verification.
            let frag_text = fragmented.spec.to_string();
            self.resolve(
                stage_key(&["verify", &spec_text, &frag_text, &options.verify_vectors.to_string()]),
                "verify",
                StageKind::Verified,
                tally,
                || {
                    stage_verify(spec, &fragmented.spec, options.verify_vectors)
                        .map(|()| StageValue::Verified)
                },
            )?;
        }
        let frag_sched = self
            .resolve(
                stage_key(&["sched_frag", &kernel_text, &lat, &balance.to_string()]),
                "sched_frag",
                StageKind::Schedule,
                tally,
                || {
                    stage_schedule_fragments(&fragmented, options.balance)
                        .map(|s| StageValue::Schedule(Arc::new(s)))
                },
            )?
            .into_schedule();
        let frag_alloc_material =
            ["alloc_frag", &kernel_text, &lat, &balance.to_string(), adder].join("\x1f");
        let frag_dp = self
            .resolve(
                JobKey::of_bytes(frag_alloc_material.as_bytes()),
                "alloc_frag",
                StageKind::Datapath,
                tally,
                || {
                    Ok(StageValue::Datapath(Arc::new(stage_allocate(
                        &fragmented.spec,
                        &frag_sched,
                        options.adder_arch,
                    ))))
                },
            )?
            .into_datapath();
        let optimized = self
            .resolve(
                // `Implementation.name` is the original spec's name, so
                // the timing key must carry it: two specs sharing a
                // kernel share everything up to here, but not the label.
                stage_key(&["time_frag", spec.name(), &frag_alloc_material, &timing_bits]),
                "time_frag",
                StageKind::Timed,
                tally,
                || {
                    Ok(StageValue::Timed(Arc::new(stage_time(
                        spec.name(),
                        &fragmented.spec,
                        &frag_sched,
                        &frag_dp,
                        &options.timing,
                    ))))
                },
            )?
            .into_timed();

        Ok(Comparison { original: (*original).clone(), optimized: (*optimized).clone() })
    }
}

/// A stage key: the stage-name-tagged parts joined with the same `\x1f`
/// separator [`crate::key`] uses, FNV-128 hashed.
fn stage_key(parts: &[&str]) -> JobKey {
    JobKey::of_bytes(parts.join("\x1f").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_core::compare;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn staged_result_is_bit_identical_to_monolithic() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let cache = StageCache::default();
        let tally = StageTally::default();
        for latency in 2..=5 {
            let staged = cache.compare_staged(&spec, latency, &options, &tally).unwrap();
            let mono = compare(&spec, latency, &options).unwrap();
            assert_eq!(
                serde_json::to_string(&staged).unwrap(),
                serde_json::to_string(&mono).unwrap(),
                "λ={latency}"
            );
        }
    }

    #[test]
    fn latency_sweep_shares_the_extract_prefix() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let cache = StageCache::default();
        let tally = StageTally::default();
        cache.compare_staged(&spec, 3, &options, &tally).unwrap();
        let cold_misses = tally.misses();
        assert_eq!(tally.hits(), 0, "cold point computes every stage");

        // Each further latency point reuses `extract` (λ-invariant) and
        // computes its per-latency suffix.
        for latency in 4..=6 {
            let before = tally.hits();
            cache.compare_staged(&spec, latency, &options, &tally).unwrap();
            assert!(tally.hits() > before, "λ={latency} must hit the extract stage");
        }
        // Re-running a point recomputes nothing at all.
        let misses_before = tally.misses();
        cache.compare_staged(&spec, 3, &options, &tally).unwrap();
        assert_eq!(tally.misses(), misses_before, "warm point is all hits");
        assert!(tally.misses() >= cold_misses);
    }

    #[test]
    fn adder_axis_shares_extract_fragment_and_verify() {
        let spec = three_adds();
        let cache = StageCache::default();
        let tally = StageTally::default();
        let rca = CompareOptions::default();
        cache.compare_staged(&spec, 3, &rca, &tally).unwrap();

        let csel = CompareOptions {
            adder_arch: bittrans_rtl::AdderArch::CarrySelect,
            ..CompareOptions::default()
        };
        let (h0, m0) = (tally.hits(), tally.misses());
        cache.compare_staged(&spec, 3, &csel, &tally).unwrap();
        // Shared: extract, fragment, verify, and both schedules (the
        // adder only enters at allocation). Recomputed: both alloc and
        // both time stages.
        assert_eq!(tally.hits() - h0, 5, "extract+fragment+verify+2×sched shared");
        assert_eq!(tally.misses() - m0, 4, "2×alloc + 2×time recomputed");
    }

    #[test]
    fn stage_errors_are_cached_and_stable() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let cache = StageCache::default();
        let tally = StageTally::default();
        let first = cache.compare_staged(&spec, 0, &options, &tally).unwrap_err();
        let misses = tally.misses();
        let second = cache.compare_staged(&spec, 0, &options, &tally).unwrap_err();
        assert_eq!(tally.misses(), misses, "failed stage is served from cache");
        assert_eq!(first.to_string(), second.to_string());
        assert!(first.is_infeasible());
    }

    #[test]
    fn all_stage_artifacts_round_trip_through_the_disk_tier() {
        let dir = tempdir("stage-artifacts");
        let spec = three_adds();
        let options = CompareOptions { verify_vectors: 64, ..CompareOptions::default() };

        let mut warm = StageCache::default();
        warm.attach_disk(dir.clone());
        let tally = StageTally::default();
        let first = warm.compare_staged(&spec, 3, &options, &tally).unwrap();
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len(), 9, "all nine stages spilled: {files:?}");
        assert!(files.iter().all(|f| f.ends_with(".stage")), "{files:?}");

        // A fresh cache (fresh process) over the same directory loads
        // every artifact instead of recomputing: zero misses, and the
        // assembled comparison is byte-identical.
        let mut fresh = StageCache::default();
        fresh.attach_disk(dir.clone());
        let fresh_tally = StageTally::default();
        let second = fresh.compare_staged(&spec, 3, &options, &fresh_tally).unwrap();
        assert_eq!(fresh_tally.misses(), 0, "warm directory recomputes zero stages");
        assert_eq!(fresh_tally.hits(), 9, "all nine stages served from disk");
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap(),
            "disk round trip preserves the result byte-for-byte"
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_stage_files_are_deleted_and_recomputed() {
        let dir = tempdir("stage-corrupt");
        let spec = three_adds();
        let options = CompareOptions { verify_vectors: 64, ..CompareOptions::default() };

        let mut seed = StageCache::default();
        seed.attach_disk(dir.clone());
        seed.compare_staged(&spec, 3, &options, &StageTally::default()).unwrap();
        let paths: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(paths.len(), 9);

        // Each corruption is invalid for *every* stage: empty, future
        // schema, junk, and a truncated envelope.
        for corruption in
            ["", "bittrans-stage 999 verify ok\n", "not a stage file", "bittrans-stage 2\n"]
        {
            for path in &paths {
                std::fs::write(path, corruption).unwrap();
            }
            let mut fresh = StageCache::default();
            fresh.attach_disk(dir.clone());
            let tally = StageTally::default();
            fresh.compare_staged(&spec, 3, &options, &tally).unwrap();
            assert_eq!(tally.hits(), 0, "corruption {corruption:?} must not hit");
            // The recompute respilled valid artifacts.
            for path in &paths {
                let body = std::fs::read_to_string(path).unwrap();
                assert!(
                    body.starts_with("bittrans-stage 2 "),
                    "respill repaired {path:?}: {body:.40}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_body_under_valid_envelope_is_recomputed() {
        let dir = tempdir("stage-corrupt-body");
        let spec = three_adds();
        let options = CompareOptions { verify_vectors: 64, ..CompareOptions::default() };

        let mut seed = StageCache::default();
        seed.attach_disk(dir.clone());
        seed.compare_staged(&spec, 3, &options, &StageTally::default()).unwrap();

        // Keep each file's own (valid) envelope but garble the body.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let text = std::fs::read_to_string(&path).unwrap();
            let envelope = text.lines().next().unwrap().to_string();
            std::fs::write(&path, format!("{envelope}\ngarbage body\n")).unwrap();
        }
        let mut fresh = StageCache::default();
        fresh.attach_disk(dir.clone());
        let tally = StageTally::default();
        let result = fresh.compare_staged(&spec, 3, &options, &tally).unwrap();
        // The verify file's body should have been empty, so a garbled
        // body invalidates it too: everything recomputes.
        assert_eq!(tally.hits(), 0, "garbled bodies must not hit");
        assert_eq!(
            serde_json::to_string(&result).unwrap(),
            serde_json::to_string(&compare(&spec, 3, &options).unwrap()).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memo_is_bounded_by_the_eviction_policy() {
        let spec = three_adds();
        let options = CompareOptions::default();
        let cache = StageCache::default();
        cache.set_memo_capacity(4);
        let tally = StageTally::default();
        cache.compare_staged(&spec, 3, &options, &tally).unwrap();
        assert!(
            cache.resident_keys().len() <= 4,
            "memo exceeded its bound: {} slots",
            cache.resident_keys().len()
        );
        // Results stay correct under eviction; the evicted prefix simply
        // recomputes.
        let again = cache.compare_staged(&spec, 3, &options, &tally).unwrap();
        assert_eq!(
            serde_json::to_string(&again).unwrap(),
            serde_json::to_string(&compare(&spec, 3, &options).unwrap()).unwrap()
        );
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bittrans-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::SystemTime::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
