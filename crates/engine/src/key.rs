//! Content-addressed job keys: a stable 128-bit hash over the canonical
//! form of a job.
//!
//! The key must be identical for identical *content* across processes and
//! batches, so it cannot use `std::collections`' randomly seeded hasher.
//! It is built from FNV-1a over a canonical byte string:
//!
//! ```text
//! canonical(spec) \x1f latency \x1f canonical(options)
//! ```
//!
//! where `canonical(spec)` is the specification pretty-printed from its
//! parsed form — so formatting, comments and whitespace in the original
//! source never affect the key — and `canonical(options)` is an **explicit
//! field-by-field encoding** of [`bittrans_core::CompareOptions`] (see
//! [`canonical_options`]). The options must never be keyed through their
//! `Debug` output: a rename or reorder of a struct field would then change
//! every key and silently invalidate every persisted cache entry. The
//! explicit encoding is pinned by a golden-key test
//! (`tests/keys.rs::golden_key_pins_canonical_encoding`), so any drift
//! becomes a test failure instead of a cold cache.

use bittrans_core::CompareOptions;
use bittrans_ir::Spec;
use std::fmt;

/// A stable 128-bit content hash identifying a job's full input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub [u64; 2]);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The canonical byte encoding of a [`CompareOptions`] value used as key
/// material: every field spelled out by a stable name, floats rendered as
/// their exact IEEE-754 bit patterns so the encoding is never subject to
/// formatting drift. Appending a *new* field changes keys exactly once —
/// that is unavoidable and correct, since the new field is new content —
/// but renaming or reordering the struct's fields must not.
///
/// The exhaustive destructuring is load-bearing: when `CompareOptions`
/// grows a field, this function must stop compiling until the field is
/// keyed. Silently omitting it would make two different jobs share a key
/// and serve each other's cached results — strictly worse than the cold
/// cache this encoding exists to prevent.
pub fn canonical_options(options: &CompareOptions) -> String {
    let CompareOptions {
        adder_arch,
        timing: bittrans_timing::TimingModel { delta_ns, overhead_ns },
        balance,
        verify_vectors,
    } = *options;
    format!(
        "adder={};delta_ns={:016x};overhead_ns={:016x};balance={};verify={}",
        adder_arch.code(),
        delta_ns.to_bits(),
        overhead_ns.to_bits(),
        u8::from(balance),
        verify_vectors,
    )
}

impl JobKey {
    /// The key of `(spec, latency, options)`.
    pub fn of(spec: &Spec, latency: u32, options: &CompareOptions) -> Self {
        let canonical = format!("{spec}\x1f{latency}\x1f{}", canonical_options(options));
        Self::of_bytes(canonical.as_bytes())
    }

    /// The key of an already-canonicalized byte string.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        // Two independent FNV-1a lanes (different offset bases) give a
        // 128-bit key; collisions are out of reach for cache-sized sets.
        let lo = fnv1a(bytes, FNV_OFFSET);
        let hi = fnv1a(bytes, FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        JobKey([lo, hi])
    }

    /// Parses the 32-hex-digit form produced by [`JobKey`]'s `Display`
    /// (used as the file stem of persisted cache entries). Returns `None`
    /// for anything else — including sign characters, which
    /// `u64::from_str_radix` would otherwise accept, and **uppercase hex
    /// digits**: `Display` only ever emits lowercase, so an
    /// uppercase-stemmed cache file would be accepted into the index under
    /// a key whose canonical filename it can never match, leaving a
    /// phantom entry that fails every lookup.
    pub fn from_hex(text: &str) -> Option<Self> {
        if text.len() != 32 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        let hi = u64::from_str_radix(&text[..16], 16).ok()?;
        let lo = u64::from_str_radix(&text[16..], 16).ok()?;
        Some(JobKey([lo, hi]))
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[1], self.0[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        let a = JobKey::of_bytes(b"hello");
        let b = JobKey::of_bytes(b"hello");
        assert_eq!(a, b);
        assert_ne!(a, JobKey::of_bytes(b"hellp"));
    }

    #[test]
    fn lanes_are_independent() {
        let k = JobKey::of_bytes(b"x");
        assert_ne!(k.0[0], k.0[1]);
    }

    #[test]
    fn displays_as_32_hex_chars() {
        assert_eq!(JobKey::of_bytes(b"abc").to_string().len(), 32);
    }

    #[test]
    fn hex_roundtrips() {
        let key = JobKey::of_bytes(b"roundtrip");
        assert_eq!(JobKey::from_hex(&key.to_string()), Some(key));
        assert_eq!(JobKey::from_hex("short"), None);
        assert_eq!(JobKey::from_hex("zz".repeat(16).as_str()), None);
        assert_eq!(JobKey::from_hex(&"0".repeat(33)), None);
        // Sign characters are not canonical hex even though from_str_radix
        // would take them.
        assert_eq!(JobKey::from_hex(&format!("+{}", "0".repeat(31))), None);
        assert_eq!(JobKey::from_hex(&format!("{}+{}", "0".repeat(16), "0".repeat(15))), None);
    }

    #[test]
    fn uppercase_hex_is_rejected() {
        // Display emits lowercase only; accepting uppercase would index a
        // file under a key whose canonical filename never matches it.
        let key = JobKey::of_bytes(b"case");
        let lower = key.to_string();
        let upper = lower.to_uppercase();
        assert_ne!(lower, upper, "hash with no letters — pick another probe");
        assert_eq!(JobKey::from_hex(&lower), Some(key));
        assert_eq!(JobKey::from_hex(&upper), None);
        // Mixed case is equally non-canonical.
        let mixed = format!("A{}", &lower[1..]);
        assert_eq!(JobKey::from_hex(&mixed), None);
    }

    #[test]
    fn canonical_options_encoding_is_explicit() {
        // The key material names every field: no Debug formatting, no
        // dependence on struct field order.
        let options = CompareOptions::default();
        let encoded = canonical_options(&options);
        assert_eq!(
            encoded,
            format!(
                "adder=rca;delta_ns={:016x};overhead_ns={:016x};balance=1;verify=50",
                0.585f64.to_bits(),
                0.04f64.to_bits()
            )
        );
        // Every field moves the encoding.
        let flip = CompareOptions { balance: false, ..options };
        assert_ne!(canonical_options(&flip), encoded);
        let vectors = CompareOptions { verify_vectors: 0, ..options };
        assert_ne!(canonical_options(&vectors), encoded);
    }

    #[test]
    fn spec_keys_are_canonical() {
        let a = Spec::parse("spec k { input a: u4;   output o = a; }").unwrap();
        let b = Spec::parse("spec k {\ninput a: u4;\noutput o = a;\n}").unwrap();
        let options = CompareOptions::default();
        assert_eq!(JobKey::of(&a, 2, &options), JobKey::of(&b, 2, &options));
        assert_ne!(JobKey::of(&a, 2, &options), JobKey::of(&a, 3, &options));
    }
}
