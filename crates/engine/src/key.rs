//! Content-addressed job keys: a stable 128-bit hash over the canonical
//! form of a job.
//!
//! The key must be identical for identical *content* across processes and
//! batches, so it cannot use `std::collections`' randomly seeded hasher.
//! It is built from FNV-1a over a canonical byte string:
//!
//! ```text
//! canonical(spec) \x1f latency \x1f debug(options)
//! ```
//!
//! where `canonical(spec)` is the specification pretty-printed from its
//! parsed form — so formatting, comments and whitespace in the original
//! source never affect the key — and `debug(options)` covers every
//! [`bittrans_core::CompareOptions`] field (adder architecture, timing
//! model, balancing, verification vectors).

use bittrans_core::CompareOptions;
use bittrans_ir::Spec;
use std::fmt;

/// A stable 128-bit content hash identifying a job's full input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub [u64; 2]);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

impl JobKey {
    /// The key of `(spec, latency, options)`.
    pub fn of(spec: &Spec, latency: u32, options: &CompareOptions) -> Self {
        let canonical = format!("{spec}\x1f{latency}\x1f{options:?}");
        Self::of_bytes(canonical.as_bytes())
    }

    /// The key of an already-canonicalized byte string.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        // Two independent FNV-1a lanes (different offset bases) give a
        // 128-bit key; collisions are out of reach for cache-sized sets.
        let lo = fnv1a(bytes, FNV_OFFSET);
        let hi = fnv1a(bytes, FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        JobKey([lo, hi])
    }

    /// Parses the 32-hex-digit form produced by [`JobKey`]'s `Display`
    /// (used as the file stem of persisted cache entries). Returns `None`
    /// for anything else — including sign characters, which
    /// `u64::from_str_radix` would otherwise accept.
    pub fn from_hex(text: &str) -> Option<Self> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&text[..16], 16).ok()?;
        let lo = u64::from_str_radix(&text[16..], 16).ok()?;
        Some(JobKey([lo, hi]))
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[1], self.0[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls() {
        let a = JobKey::of_bytes(b"hello");
        let b = JobKey::of_bytes(b"hello");
        assert_eq!(a, b);
        assert_ne!(a, JobKey::of_bytes(b"hellp"));
    }

    #[test]
    fn lanes_are_independent() {
        let k = JobKey::of_bytes(b"x");
        assert_ne!(k.0[0], k.0[1]);
    }

    #[test]
    fn displays_as_32_hex_chars() {
        assert_eq!(JobKey::of_bytes(b"abc").to_string().len(), 32);
    }

    #[test]
    fn hex_roundtrips() {
        let key = JobKey::of_bytes(b"roundtrip");
        assert_eq!(JobKey::from_hex(&key.to_string()), Some(key));
        assert_eq!(JobKey::from_hex("short"), None);
        assert_eq!(JobKey::from_hex("zz".repeat(16).as_str()), None);
        assert_eq!(JobKey::from_hex(&"0".repeat(33)), None);
        // Sign characters are not canonical hex even though from_str_radix
        // would take them.
        assert_eq!(JobKey::from_hex(&format!("+{}", "0".repeat(31))), None);
        assert_eq!(JobKey::from_hex(&format!("{}+{}", "0".repeat(16), "0".repeat(15))), None);
    }

    #[test]
    fn spec_keys_are_canonical() {
        let a = Spec::parse("spec k { input a: u4;   output o = a; }").unwrap();
        let b = Spec::parse("spec k {\ninput a: u4;\noutput o = a;\n}").unwrap();
        let options = CompareOptions::default();
        assert_eq!(JobKey::of(&a, 2, &options), JobKey::of(&b, 2, &options));
        assert_ne!(JobKey::of(&a, 2, &options), JobKey::of(&a, 3, &options));
    }
}
