//! The in-memory, content-addressed result cache shared by every batch an
//! [`crate::Engine`] runs.
//!
//! Values are `Arc`-shared [`JobResult`]s, so a cache hit costs one clone
//! of a pointer, and the same computed comparison can back many outcomes
//! at once. Hit/miss counters are atomic: workers record without taking
//! the map lock.

use crate::job::JobResult;
use crate::key::JobKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A thread-safe map from [`JobKey`] to computed results, with cumulative
/// hit/miss accounting.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: Mutex<HashMap<JobKey, Arc<JobResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks a key up without touching the hit/miss counters.
    pub fn peek(&self, key: &JobKey) -> Option<Arc<JobResult>> {
        self.map.lock().expect("cache lock").get(key).cloned()
    }

    /// Stores a result. Last writer wins; since keys are content hashes of
    /// the full job input, concurrent writers always carry equal values.
    pub fn insert(&self, key: JobKey, value: Arc<JobResult>) {
        self.map.lock().expect("cache lock").insert(key, value);
    }

    /// Adds to the cumulative hit/miss counters.
    pub fn record(&self, hits: u64, misses: u64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// The resident keys, in no particular order.
    pub fn keys(&self) -> Vec<JobKey> {
        self.map.lock().expect("cache lock").keys().copied().collect()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative lookups that required fresh work.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached result (counters are kept).
    pub fn clear(&self) {
        self.map.lock().expect("cache lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_core::PipelineError;
    use bittrans_frag::FragError;

    fn err_result() -> Arc<JobResult> {
        Arc::new(Err(PipelineError::Frag(FragError::ZeroLatency)))
    }

    #[test]
    fn peek_insert_roundtrip() {
        let cache = ResultCache::new();
        let key = JobKey::of_bytes(b"k");
        assert!(cache.peek(&key).is_none());
        cache.insert(key, err_result());
        assert!(cache.peek(&key).is_some());
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn counters_accumulate() {
        let cache = ResultCache::new();
        cache.record(2, 1);
        cache.record(3, 0);
        assert_eq!(cache.hits(), 5);
        assert_eq!(cache.misses(), 1);
    }
}
