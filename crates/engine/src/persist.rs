//! On-disk spill of the content-addressed result cache: one JSON file per
//! [`JobKey`] plus an `index.json` manifest, so repeated CLI/CI invocations
//! reuse results across processes without re-parsing every entry up front.
//!
//! Layout: `<dir>/<32-hex-digit key>.json`, each file holding one
//! serialized [`Comparison`]. Writes go to a hidden temp file in the same
//! directory followed by an atomic rename, so concurrent processes never
//! observe a half-written entry — and because keys are content hashes of
//! the full job input, racing writers always carry identical values.
//!
//! `index.json` records `key → file, size, mtime` under a schema version.
//! Opening a directory ([`DirIndex::open`]) reads the index and checks its
//! key set against a plain directory listing: when they agree, the index's
//! metadata is trusted and **no entry file is parsed** — entries load
//! lazily, on first lookup. When they disagree (a stale index from a
//! crashed or racing process), or the index is corrupt or from another
//! schema, it is rebuilt from the directory contents and rewritten. The
//! index is therefore an optimization and a metadata store, never a
//! correctness dependency.
//!
//! Only successful comparisons are persisted. Pipeline errors (infeasible
//! latencies, mostly) are cheap to rediscover and their textual form is
//! not stable enough to be worth a schema.

use crate::key::JobKey;
use bittrans_core::{Comparison, Implementation};
use bittrans_rtl::AreaReport;
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// The manifest file name inside a cache directory.
pub(crate) const INDEX_FILE: &str = "index.json";

/// Version of the `index.json` layout; any other value forces a rebuild.
pub(crate) const INDEX_SCHEMA: u64 = 1;

/// The file a key persists to.
pub(crate) fn entry_path(dir: &Path, key: JobKey) -> PathBuf {
    dir.join(format!("{key}.json"))
}

/// Writes one comparison under its key, atomically (temp file + rename).
pub(crate) fn save(dir: &Path, key: JobKey, comparison: &Comparison) -> io::Result<()> {
    let json = serde_json::to_string(comparison)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    // The temp name carries pid + a process-wide counter: two threads (or
    // two engines sharing one directory in one process) spilling the same
    // key must never interleave writes into one temp file.
    static SPILL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = SPILL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!(".{key}.{}-{serial}.tmp", std::process::id()));
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, entry_path(dir, key))
}

/// Parses one entry file's comparison. `None` for unreadable or corrupt
/// files — a damaged entry costs one recomputation, not the run.
pub(crate) fn load_entry(dir: &Path, key: JobKey) -> Option<Comparison> {
    let text = std::fs::read_to_string(entry_path(dir, key)).ok()?;
    parse_comparison(&text)
}

fn parse_comparison(text: &str) -> Option<Comparison> {
    let value = serde_json::from_str(text).ok()?;
    Some(Comparison {
        original: parse_implementation(value.get("original")?)?,
        optimized: parse_implementation(value.get("optimized")?)?,
    })
}

fn parse_implementation(value: &Value) -> Option<Implementation> {
    let area = value.get("area")?;
    Some(Implementation {
        name: value.get("name")?.as_str()?.to_string(),
        latency: u32::try_from(value.get("latency")?.as_u64()?).ok()?,
        cycle_delta: u32::try_from(value.get("cycle_delta")?.as_u64()?).ok()?,
        cycle_ns: value.get("cycle_ns")?.as_f64()?,
        execution_ns: value.get("execution_ns")?.as_f64()?,
        area: AreaReport {
            fu: area.get("fu")?.as_f64()?,
            registers: area.get("registers")?.as_f64()?,
            routing: area.get("routing")?.as_f64()?,
            controller: area.get("controller")?.as_f64()?,
        },
        op_count: usize::try_from(value.get("op_count")?.as_u64()?).ok()?,
        stored_bits: u32::try_from(value.get("stored_bits")?.as_u64()?).ok()?,
    })
}

/// Size and age of one persisted entry, as recorded in the index.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EntryMeta {
    /// File size in bytes.
    pub bytes: u64,
    /// Modification time, seconds since the Unix epoch (0 if unknown).
    pub mtime: u64,
}

/// The in-memory view of a cache directory's `index.json`: which keys are
/// resident on disk and how big/old their files are, without having parsed
/// any entry body.
#[derive(Debug)]
pub(crate) struct DirIndex {
    dir: PathBuf,
    entries: HashMap<JobKey, EntryMeta>,
    dirty: bool,
}

impl DirIndex {
    /// Opens (or rebuilds) the index of `dir`. The directory must exist.
    pub fn open(dir: &Path) -> io::Result<Self> {
        let on_disk = scan_keys(dir)?;
        if let Some(entries) = read_index(dir) {
            let indexed: HashSet<JobKey> = entries.keys().copied().collect();
            if indexed == on_disk {
                return Ok(DirIndex { dir: dir.to_path_buf(), entries, dirty: false });
            }
        }
        // Stale, corrupt or absent index: rebuild from directory contents.
        let mut entries = HashMap::with_capacity(on_disk.len());
        for key in on_disk {
            entries.insert(key, stat_entry(dir, key));
        }
        let mut index = DirIndex { dir: dir.to_path_buf(), entries, dirty: true };
        // Persist the rebuild now (best effort), but never create an index
        // in a directory that holds no entries — an engine with caching
        // disabled, or a mere scan, must not leave droppings behind.
        if !index.entries.is_empty() {
            index.write_if_dirty();
        }
        Ok(index)
    }

    /// Number of entries on disk.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether `key` has a persisted entry.
    pub fn contains(&self, key: &JobKey) -> bool {
        self.entries.contains_key(key)
    }

    /// The resident keys, in no particular order.
    pub fn keys(&self) -> impl Iterator<Item = JobKey> + '_ {
        self.entries.keys().copied()
    }

    /// Entries with their metadata, in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (JobKey, EntryMeta)> + '_ {
        self.entries.iter().map(|(&k, &m)| (k, m))
    }

    /// Parses `key`'s entry file. `None` means the file is missing or
    /// corrupt; the caller should [`DirIndex::forget`] it.
    pub fn load(&self, key: JobKey) -> Option<Comparison> {
        if !self.contains(&key) {
            return None;
        }
        load_entry(&self.dir, key)
    }

    /// Writes one comparison under its key (atomic temp file + rename) and
    /// records it in the index.
    pub fn save(&mut self, key: JobKey, comparison: &Comparison) -> io::Result<()> {
        save(&self.dir, key, comparison)?;
        self.note_saved(key);
        Ok(())
    }

    /// Records that `key` was just spilled to its entry file.
    pub fn note_saved(&mut self, key: JobKey) {
        let meta = stat_entry(&self.dir, key);
        self.entries.insert(key, meta);
        self.dirty = true;
    }

    /// Drops `key` from the index without touching its file (used when the
    /// entry turned out to be corrupt and will be rewritten by a respill).
    pub fn forget(&mut self, key: JobKey) {
        if self.entries.remove(&key).is_some() {
            self.dirty = true;
        }
    }

    /// Deletes `key`'s entry file and index record, returning the bytes
    /// freed. A file already gone still clears the record.
    pub fn remove_entry(&mut self, key: JobKey) -> io::Result<u64> {
        let freed = self.entries.get(&key).map_or(0, |m| m.bytes);
        match std::fs::remove_file(entry_path(&self.dir, key)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        self.forget(key);
        Ok(freed)
    }

    /// Rewrites `index.json` if anything changed since the last write.
    /// Best effort: a failed write costs a rebuild in some later process.
    pub fn write_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        if self.write().is_ok() {
            self.dirty = false;
        }
    }

    fn write(&self) -> io::Result<()> {
        let mut rows: Vec<(JobKey, EntryMeta)> = self.iter().collect();
        rows.sort_by_key(|&(key, _)| key);
        let mut json = format!("{{\"schema\": {INDEX_SCHEMA}, \"entries\": [");
        for (i, (key, meta)) in rows.iter().enumerate() {
            if i > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!(
                "{{\"key\": \"{key}\", \"file\": \"{key}.json\", \
                 \"bytes\": {}, \"mtime\": {}}}",
                meta.bytes, meta.mtime
            ));
        }
        json.push_str("]}");
        let tmp = self.dir.join(format!(".index.{}.tmp", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, self.dir.join(INDEX_FILE))
    }
}

/// Lists the keys that have an entry file in `dir` — by file name only,
/// without opening anything. Files that are not cache entries (wrong name
/// shape, subdirectories, the index itself) are ignored.
fn scan_keys(dir: &Path) -> io::Result<HashSet<JobKey>> {
    let mut keys = HashSet::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() || path.extension().is_none_or(|ext| ext != "json") {
            continue;
        }
        if let Some(key) = path.file_stem().and_then(|s| s.to_str()).and_then(JobKey::from_hex) {
            keys.insert(key);
        }
    }
    Ok(keys)
}

fn stat_entry(dir: &Path, key: JobKey) -> EntryMeta {
    let meta = std::fs::metadata(entry_path(dir, key)).ok();
    EntryMeta {
        bytes: meta.as_ref().map_or(0, std::fs::Metadata::len),
        mtime: meta
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_secs()),
    }
}

/// Parses `index.json`. `None` for a missing, corrupt or wrong-schema
/// index (the caller rebuilds).
fn read_index(dir: &Path) -> Option<HashMap<JobKey, EntryMeta>> {
    let text = std::fs::read_to_string(dir.join(INDEX_FILE)).ok()?;
    let value = serde_json::from_str(&text).ok()?;
    if value.get("schema")?.as_u64()? != INDEX_SCHEMA {
        return None;
    }
    let mut entries = HashMap::new();
    for row in value.get("entries")?.as_array()? {
        let key = JobKey::from_hex(row.get("key")?.as_str()?)?;
        let meta =
            EntryMeta { bytes: row.get("bytes")?.as_u64()?, mtime: row.get("mtime")?.as_u64()? };
        entries.insert(key, meta);
    }
    Some(entries)
}

/// What [`crate::Engine::prune_cache`] may evict: entries above a total
/// size budget and/or older than an age bound. Unset limits prune nothing,
/// so the default policy is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrunePolicy {
    /// Keep total entry bytes at or under this budget, evicting the oldest
    /// entries first.
    pub max_bytes: Option<u64>,
    /// Evict entries whose file is older than this.
    pub max_age: Option<Duration>,
}

/// What an eviction sweep did. The `scanned`/`removed`/`kept` family
/// counts top-level job entries only; the `stage_*` family counts files
/// in the `stages/` artifact tier, which the same sweep walks under the
/// same policy (one combined `max_bytes` budget across both tiers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruneReport {
    /// Entries in the directory before the sweep.
    pub scanned: usize,
    /// Entries deleted.
    pub removed: usize,
    /// Bytes those entries occupied.
    pub freed_bytes: u64,
    /// Entries left after the sweep.
    pub kept: usize,
    /// Bytes the remaining entries occupy.
    pub kept_bytes: u64,
    /// Entries that were over budget but skipped because a live run pinned
    /// them.
    pub pinned: usize,
    /// Stage artifact files in `stages/` before the sweep.
    pub stage_scanned: usize,
    /// Stage files deleted.
    pub stage_removed: usize,
    /// Bytes those stage files occupied.
    pub stage_freed_bytes: u64,
    /// Stage files left after the sweep.
    pub stage_kept: usize,
    /// Bytes the remaining stage files occupy.
    pub stage_kept_bytes: u64,
    /// Stage files that were over budget but skipped because they are
    /// resident in a live engine's stage memo.
    pub stage_pinned: usize,
}

impl serde::Serialize for PruneReport {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("PruneReport", 12)?;
        st.serialize_field("scanned", &self.scanned)?;
        st.serialize_field("removed", &self.removed)?;
        st.serialize_field("freed_bytes", &self.freed_bytes)?;
        st.serialize_field("kept", &self.kept)?;
        st.serialize_field("kept_bytes", &self.kept_bytes)?;
        st.serialize_field("pinned", &self.pinned)?;
        st.serialize_field("stage_scanned", &self.stage_scanned)?;
        st.serialize_field("stage_removed", &self.stage_removed)?;
        st.serialize_field("stage_freed_bytes", &self.stage_freed_bytes)?;
        st.serialize_field("stage_kept", &self.stage_kept)?;
        st.serialize_field("stage_kept_bytes", &self.stage_kept_bytes)?;
        st.serialize_field("stage_pinned", &self.stage_pinned)?;
        st.end()
    }
}

impl fmt::Display for PruneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pruned {} of {} entries ({} bytes freed), {} kept ({} bytes)",
            self.removed, self.scanned, self.freed_bytes, self.kept, self.kept_bytes
        )?;
        if self.pinned > 0 {
            write!(f, ", {} pinned by the live run", self.pinned)?;
        }
        write!(
            f,
            "; stages: pruned {} of {} ({} bytes freed), {} kept ({} bytes)",
            self.stage_removed,
            self.stage_scanned,
            self.stage_freed_bytes,
            self.stage_kept,
            self.stage_kept_bytes
        )?;
        if self.stage_pinned > 0 {
            write!(f, ", {} pinned by the stage memo", self.stage_pinned)?;
        }
        Ok(())
    }
}

/// One stage artifact file found under `<dir>/stages/`, as seen by the
/// prune walk (names only; bodies are never parsed here).
struct StageRow {
    path: PathBuf,
    /// The key parsed from the file stem; `None` for foreign files, which
    /// can never be pinned and age out like anything else.
    key: Option<JobKey>,
    bytes: u64,
    mtime: u64,
}

/// Lists the stage artifact files of `dir`'s `stages/` subdirectory:
/// every regular, non-hidden file — current `<key>.stage` artifacts and
/// legacy `<key>.json` verify tokens alike — so stale generations age
/// out instead of accreting. Hidden (dot-prefixed) names are in-flight
/// spill temp files and stay untouched.
fn scan_stage_rows(dir: &Path) -> Vec<StageRow> {
    let stage_dir = dir.join(STAGE_SUBDIR);
    let Ok(entries) = std::fs::read_dir(&stage_dir) else { return Vec::new() };
    let mut rows = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with('.') || path.is_dir() {
            continue;
        }
        let meta = std::fs::metadata(&path).ok();
        rows.push(StageRow {
            key: path.file_stem().and_then(|s| s.to_str()).and_then(JobKey::from_hex),
            bytes: meta.as_ref().map_or(0, std::fs::Metadata::len),
            mtime: meta
                .and_then(|m| m.modified().ok())
                .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
                .map_or(0, |d| d.as_secs()),
            path,
        });
    }
    // Oldest first; name order breaks mtime ties so sweeps are
    // deterministic.
    rows.sort_by(|a, b| (a.mtime, &a.path).cmp(&(b.mtime, &b.path)));
    rows
}

/// The stage artifact subdirectory of a cache directory.
pub(crate) const STAGE_SUBDIR: &str = "stages";

/// Runs one eviction sweep over `index` *and* its `stages/` artifact
/// tier: first drops files older than `max_age`, then evicts
/// oldest-first — across both tiers combined — until the remainder fits
/// in `max_bytes`. Job entries in `pinned` and stage files whose key is
/// in `pinned_stages` are never touched — they belong to a live run. The
/// index file is rewritten afterwards (stage files carry no manifest;
/// the filesystem is their index).
pub(crate) fn prune(
    index: &mut DirIndex,
    policy: &PrunePolicy,
    pinned: &HashSet<JobKey>,
    pinned_stages: &HashSet<JobKey>,
    now_secs: u64,
) -> io::Result<PruneReport> {
    let mut rows: Vec<(JobKey, EntryMeta)> = index.iter().collect();
    // Oldest first; key order breaks mtime ties so sweeps are deterministic.
    rows.sort_by_key(|&(key, meta)| (meta.mtime, key));
    let scanned = rows.len();
    let stage_rows = scan_stage_rows(&index.dir);
    let stage_scanned = stage_rows.len();
    let stage_pinned_row = |row: &StageRow| row.key.is_some_and(|key| pinned_stages.contains(&key));

    let mut evict: Vec<JobKey> = Vec::new();
    let mut stage_evict: Vec<usize> = Vec::new();
    let mut pinned_over_budget: HashSet<JobKey> = HashSet::new();
    let mut stage_pinned_over_budget: usize = 0;
    if let Some(max_age) = policy.max_age {
        for &(key, meta) in &rows {
            if now_secs.saturating_sub(meta.mtime) > max_age.as_secs() {
                if pinned.contains(&key) {
                    pinned_over_budget.insert(key);
                } else {
                    evict.push(key);
                }
            }
        }
        for (i, row) in stage_rows.iter().enumerate() {
            if now_secs.saturating_sub(row.mtime) > max_age.as_secs() {
                if stage_pinned_row(row) {
                    stage_pinned_over_budget += 1;
                } else {
                    stage_evict.push(i);
                }
            }
        }
    }
    if let Some(max_bytes) = policy.max_bytes {
        let evicted: HashSet<JobKey> = evict.iter().copied().collect();
        let stage_evicted: HashSet<usize> = stage_evict.iter().copied().collect();
        let mut total: u64 =
            rows.iter().filter(|(k, _)| !evicted.contains(k)).map(|(_, m)| m.bytes).sum();
        total += stage_rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !stage_evicted.contains(i))
            .map(|(_, r)| r.bytes)
            .sum::<u64>();
        // One oldest-first walk across both tiers: merge the two sorted
        // row lists by (mtime, tier, tiebreak).
        let mut merged: Vec<(u64, bool, usize)> = rows
            .iter()
            .enumerate()
            .map(|(i, (_, meta))| (meta.mtime, false, i))
            .chain(stage_rows.iter().enumerate().map(|(i, row)| (row.mtime, true, i)))
            .collect();
        merged.sort_by_key(|&(mtime, is_stage, i)| (mtime, is_stage, i));
        for (_, is_stage, i) in merged {
            if total <= max_bytes {
                break;
            }
            if is_stage {
                if stage_evicted.contains(&i) {
                    continue;
                }
                let row = &stage_rows[i];
                if stage_pinned_row(row) {
                    stage_pinned_over_budget += 1;
                    continue;
                }
                stage_evict.push(i);
                total -= row.bytes;
            } else {
                let (key, meta) = rows[i];
                if evicted.contains(&key) {
                    continue;
                }
                if pinned.contains(&key) {
                    pinned_over_budget.insert(key);
                    continue;
                }
                evict.push(key);
                total -= meta.bytes;
            }
        }
    }

    let mut freed_bytes = 0;
    for &key in &evict {
        freed_bytes += index.remove_entry(key)?;
    }
    let mut stage_freed_bytes = 0;
    for &i in &stage_evict {
        let row = &stage_rows[i];
        match std::fs::remove_file(&row.path) {
            Ok(()) => stage_freed_bytes += row.bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    index.write_if_dirty();
    let stage_kept = stage_scanned - stage_evict.len();
    let stage_kept_bytes = stage_rows
        .iter()
        .enumerate()
        .filter(|(i, _)| !stage_evict.contains(i))
        .map(|(_, r)| r.bytes)
        .sum();
    Ok(PruneReport {
        scanned,
        removed: evict.len(),
        freed_bytes,
        kept: index.len(),
        kept_bytes: index.iter().map(|(_, m)| m.bytes).sum(),
        pinned: pinned_over_budget.len(),
        stage_scanned,
        stage_removed: stage_evict.len(),
        stage_freed_bytes,
        stage_kept,
        stage_kept_bytes,
        stage_pinned: stage_pinned_over_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_core::{compare, CompareOptions};
    use bittrans_ir::Spec;

    fn comparison() -> Comparison {
        let spec = Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap();
        compare(&spec, 3, &CompareOptions { verify_vectors: 0, ..Default::default() }).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bittrans_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_then_load_roundtrips_exactly() {
        let dir = temp_dir("roundtrip");
        let cmp = comparison();
        let key = JobKey::of_bytes(b"entry");
        save(&dir, key, &cmp).unwrap();
        let back = load_entry(&dir, key).expect("entry loads");
        assert_eq!(back.original.name, cmp.original.name);
        assert_eq!(back.optimized.cycle_ns.to_bits(), cmp.optimized.cycle_ns.to_bits());
        assert_eq!(back.original.cycle_ns.to_bits(), cmp.original.cycle_ns.to_bits());
        assert_eq!(back.optimized.area.total(), cmp.optimized.area.total());
        assert_eq!(back.optimized.stored_bits, cmp.optimized.stored_bits);
        // No temp file left behind.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![format!("{key}.json")]);
    }

    #[test]
    fn uppercase_stems_are_not_indexed() {
        // `Display` writes lowercase stems only. A file named with
        // uppercase hex can never be the target of `entry_path`, so
        // indexing it would create a phantom entry that fails every
        // lookup; the scan must skip it entirely.
        let dir = temp_dir("case");
        let cmp = comparison();
        let key = JobKey::of_bytes(b"lower");
        save(&dir, key, &cmp).unwrap();
        let upper = dir.join(format!("{key}.json").to_uppercase());
        std::fs::write(&upper, std::fs::read(entry_path(&dir, key)).unwrap()).unwrap();
        let index = DirIndex::open(&dir).unwrap();
        assert_eq!(index.len(), 1);
        assert!(index.contains(&key));
        assert!(index.load(key).is_some());
    }

    #[test]
    fn corrupt_and_foreign_files_are_invisible() {
        let dir = temp_dir("corrupt");
        let cmp = comparison();
        let good = JobKey::of_bytes(b"good");
        save(&dir, good, &cmp).unwrap();
        let bad = JobKey::of_bytes(b"bad");
        std::fs::write(entry_path(&dir, bad), "{ not json").unwrap();
        std::fs::write(dir.join("README.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "hello").unwrap();
        // The index lists both hex-named files (it never parses bodies)...
        let index = DirIndex::open(&dir).unwrap();
        assert_eq!(index.len(), 2);
        // ...but only the good one loads.
        assert!(index.load(good).is_some());
        assert!(index.load(bad).is_none());
        assert!(index.load(JobKey::of_bytes(b"absent")).is_none());
    }

    #[test]
    fn index_survives_reopen_and_tracks_membership() {
        let dir = temp_dir("index");
        let cmp = comparison();
        let (a, b) = (JobKey::of_bytes(b"a"), JobKey::of_bytes(b"b"));
        save(&dir, a, &cmp).unwrap();
        let mut index = DirIndex::open(&dir).unwrap();
        assert!(index.contains(&a) && index.len() == 1);
        save(&dir, b, &cmp).unwrap();
        index.note_saved(b);
        index.write_if_dirty();
        // A fresh open trusts the written index (sets agree).
        let reopened = DirIndex::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert!(reopened.contains(&b));
        let (_, meta) = reopened.iter().find(|(k, _)| *k == b).unwrap();
        assert!(meta.bytes > 0);
    }

    #[test]
    fn stale_and_corrupt_indexes_are_rebuilt() {
        let dir = temp_dir("stale");
        let cmp = comparison();
        let key = JobKey::of_bytes(b"k");
        save(&dir, key, &cmp).unwrap();
        // Corrupt: garbage index.
        std::fs::write(dir.join(INDEX_FILE), "not json at all").unwrap();
        let index = DirIndex::open(&dir).unwrap();
        assert_eq!(index.len(), 1);
        // The rebuild rewrote a valid index.
        assert!(read_index(&dir).is_some());
        // Stale: an entry appears behind the index's back.
        let other = JobKey::of_bytes(b"other");
        save(&dir, other, &cmp).unwrap();
        let index = DirIndex::open(&dir).unwrap();
        assert_eq!(index.len(), 2);
        // Wrong schema forces a rebuild too.
        std::fs::write(dir.join(INDEX_FILE), "{\"schema\": 999, \"entries\": []}").unwrap();
        let index = DirIndex::open(&dir).unwrap();
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn prune_evicts_oldest_first_and_respects_pins() {
        let dir = temp_dir("prune");
        let cmp = comparison();
        let keys: Vec<JobKey> = (0u8..4).map(|i| JobKey::of_bytes(&[b'p', i])).collect();
        for &key in &keys {
            save(&dir, key, &cmp).unwrap();
        }
        let mut index = DirIndex::open(&dir).unwrap();
        let entry_bytes = index.iter().next().unwrap().1.bytes;
        // Craft deterministic ages: keys[0] oldest … keys[3] newest.
        for (age, &key) in [400u64, 300, 200, 100].iter().zip(&keys) {
            index.entries.get_mut(&key).unwrap().mtime = 1000 - age;
        }
        // Age bound removes the two entries older than 250 s; the oldest
        // of them is pinned and must survive.
        let pinned: HashSet<JobKey> = [keys[0]].into_iter().collect();
        let policy = PrunePolicy { max_age: Some(Duration::from_secs(250)), max_bytes: None };
        let report = prune(&mut index, &policy, &pinned, &HashSet::new(), 1000).unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.removed, 1);
        assert_eq!(report.pinned, 1);
        assert_eq!(report.freed_bytes, entry_bytes);
        assert!(!index.contains(&keys[1]) && index.contains(&keys[0]));
        assert!(!entry_path(&dir, keys[1]).exists());
        // Size bound: budget for one entry evicts oldest-first among the
        // unpinned (keys[2] before keys[3]).
        let policy = PrunePolicy { max_bytes: Some(2 * entry_bytes), max_age: None };
        let report = prune(&mut index, &policy, &pinned, &HashSet::new(), 1000).unwrap();
        assert_eq!(report.removed, 1);
        assert!(!index.contains(&keys[2]) && index.contains(&keys[3]));
        assert_eq!(report.kept, 2);
        assert_eq!(report.kept_bytes, 2 * entry_bytes);
        // The rewritten index agrees with the directory.
        let reopened = DirIndex::open(&dir).unwrap();
        let on_disk: HashSet<JobKey> = reopened.keys().collect();
        let expected: HashSet<JobKey> = [keys[0], keys[3]].into_iter().collect();
        assert_eq!(on_disk, expected);
    }

    fn set_mtime(path: &Path, secs: u64) {
        let file = std::fs::File::options().write(true).open(path).unwrap();
        let time = SystemTime::UNIX_EPOCH + Duration::from_secs(secs);
        file.set_times(std::fs::FileTimes::new().set_modified(time)).unwrap();
    }

    #[test]
    fn prune_sweeps_the_stage_tier_with_the_same_policy() {
        let dir = temp_dir("stage_prune");
        let cmp = comparison();
        let job = JobKey::of_bytes(b"job");
        save(&dir, job, &cmp).unwrap();
        let stage_dir = dir.join(STAGE_SUBDIR);
        std::fs::create_dir_all(&stage_dir).unwrap();
        let (old_key, new_key) = (JobKey::of_bytes(b"old"), JobKey::of_bytes(b"new"));
        let old_stage = stage_dir.join(format!("{old_key}.stage"));
        let new_stage = stage_dir.join(format!("{new_key}.stage"));
        let legacy = stage_dir.join(format!("{}.json", JobKey::of_bytes(b"legacy")));
        let temp = stage_dir.join(".deadbeef.tmp");
        for path in [&old_stage, &new_stage, &legacy, &temp] {
            std::fs::write(path, "bittrans-stage 2 verify ok\n").unwrap();
        }
        set_mtime(&old_stage, 100);
        set_mtime(&legacy, 150);
        set_mtime(&new_stage, 900);

        // Age pass: the old artifact and the legacy token age out; the
        // fresh artifact, the job entry, and the dot temp file survive.
        let mut index = DirIndex::open(&dir).unwrap();
        let policy = PrunePolicy { max_age: Some(Duration::from_secs(500)), max_bytes: None };
        let report = prune(&mut index, &policy, &HashSet::new(), &HashSet::new(), 1000).unwrap();
        assert_eq!(report.removed, 0);
        assert_eq!(report.stage_scanned, 3, "temp files are not scanned");
        assert_eq!(report.stage_removed, 2);
        assert_eq!(report.stage_kept, 1);
        assert!(report.stage_freed_bytes > 0);
        assert!(!old_stage.exists() && !legacy.exists());
        assert!(new_stage.exists() && temp.exists());

        // Size pass with a zero budget: a resident (pinned) stage key
        // survives; the job entry — older than the pinned stage — goes.
        set_mtime(&entry_path(&dir, job), 200);
        let mut index = DirIndex::open(&dir).unwrap();
        index.entries.get_mut(&job).unwrap().mtime = 200;
        let pinned_stages: HashSet<JobKey> = [new_key].into_iter().collect();
        let policy = PrunePolicy { max_bytes: Some(0), max_age: None };
        let report = prune(&mut index, &policy, &HashSet::new(), &pinned_stages, 1000).unwrap();
        assert_eq!(report.removed, 1, "job entry evicted by the combined budget");
        assert_eq!(report.stage_removed, 0);
        assert_eq!(report.stage_pinned, 1, "resident stage file is pinned");
        assert!(new_stage.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_policy_is_a_no_op() {
        let dir = temp_dir("noop");
        let key = JobKey::of_bytes(b"keep");
        save(&dir, key, &comparison()).unwrap();
        let mut index = DirIndex::open(&dir).unwrap();
        let report =
            prune(&mut index, &PrunePolicy::default(), &HashSet::new(), &HashSet::new(), 1_000_000)
                .unwrap();
        assert_eq!(report.removed, 0);
        assert_eq!(report.kept, 1);
        assert!(entry_path(&dir, key).exists());
    }
}
