//! On-disk spill of the content-addressed result cache: one JSON file per
//! [`JobKey`], so repeated CLI/CI invocations reuse results across
//! processes.
//!
//! Layout: `<dir>/<32-hex-digit key>.json`, each file holding one
//! serialized [`Comparison`]. Writes go to a hidden temp file in the same
//! directory followed by an atomic rename, so concurrent processes never
//! observe a half-written entry — and because keys are content hashes of
//! the full job input, racing writers always carry identical values.
//!
//! Only successful comparisons are persisted. Pipeline errors (infeasible
//! latencies, mostly) are cheap to rediscover and their textual form is
//! not stable enough to be worth a schema.

use crate::key::JobKey;
use bittrans_core::{Comparison, Implementation};
use bittrans_rtl::AreaReport;
use serde_json::Value;
use std::io;
use std::path::{Path, PathBuf};

/// The file a key persists to.
pub(crate) fn entry_path(dir: &Path, key: JobKey) -> PathBuf {
    dir.join(format!("{key}.json"))
}

/// Writes one comparison under its key, atomically (temp file + rename).
pub(crate) fn save(dir: &Path, key: JobKey, comparison: &Comparison) -> io::Result<()> {
    let json = serde_json::to_string(comparison)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    // The temp name carries pid + a process-wide counter: two threads (or
    // two engines sharing one directory in one process) spilling the same
    // key must never interleave writes into one temp file.
    static SPILL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let serial = SPILL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!(".{key}.{}-{serial}.tmp", std::process::id()));
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, entry_path(dir, key))
}

/// Reads every parseable `<key>.json` entry in `dir`. Files that are not
/// cache entries — wrong name shape, unreadable, or corrupt JSON — are
/// skipped: a damaged entry costs one recomputation, not the run.
pub(crate) fn load_dir(dir: &Path) -> io::Result<Vec<(JobKey, Comparison)>> {
    let mut entries = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_none_or(|ext| ext != "json") {
            continue;
        }
        let Some(key) = path.file_stem().and_then(|s| s.to_str()).and_then(JobKey::from_hex) else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if let Some(comparison) = parse_comparison(&text) {
            entries.push((key, comparison));
        }
    }
    Ok(entries)
}

fn parse_comparison(text: &str) -> Option<Comparison> {
    let value = serde_json::from_str(text).ok()?;
    Some(Comparison {
        original: parse_implementation(value.get("original")?)?,
        optimized: parse_implementation(value.get("optimized")?)?,
    })
}

fn parse_implementation(value: &Value) -> Option<Implementation> {
    let area = value.get("area")?;
    Some(Implementation {
        name: value.get("name")?.as_str()?.to_string(),
        latency: u32::try_from(value.get("latency")?.as_u64()?).ok()?,
        cycle_delta: u32::try_from(value.get("cycle_delta")?.as_u64()?).ok()?,
        cycle_ns: value.get("cycle_ns")?.as_f64()?,
        execution_ns: value.get("execution_ns")?.as_f64()?,
        area: AreaReport {
            fu: area.get("fu")?.as_f64()?,
            registers: area.get("registers")?.as_f64()?,
            routing: area.get("routing")?.as_f64()?,
            controller: area.get("controller")?.as_f64()?,
        },
        op_count: usize::try_from(value.get("op_count")?.as_u64()?).ok()?,
        stored_bits: u32::try_from(value.get("stored_bits")?.as_u64()?).ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bittrans_core::{compare, CompareOptions};
    use bittrans_ir::Spec;

    fn comparison() -> Comparison {
        let spec = Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap();
        compare(&spec, 3, &CompareOptions { verify_vectors: 0, ..Default::default() }).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bittrans_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_then_load_roundtrips_exactly() {
        let dir = temp_dir("roundtrip");
        let cmp = comparison();
        let key = JobKey::of_bytes(b"entry");
        save(&dir, key, &cmp).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, key);
        let back = &loaded[0].1;
        assert_eq!(back.original.name, cmp.original.name);
        assert_eq!(back.optimized.cycle_ns.to_bits(), cmp.optimized.cycle_ns.to_bits());
        assert_eq!(back.original.cycle_ns.to_bits(), cmp.original.cycle_ns.to_bits());
        assert_eq!(back.optimized.area.total(), cmp.optimized.area.total());
        assert_eq!(back.optimized.stored_bits, cmp.optimized.stored_bits);
        // No temp file left behind.
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec![format!("{key}.json")]);
    }

    #[test]
    fn corrupt_and_foreign_files_are_skipped() {
        let dir = temp_dir("corrupt");
        let cmp = comparison();
        save(&dir, JobKey::of_bytes(b"good"), &cmp).unwrap();
        let bad_key = JobKey::of_bytes(b"bad");
        std::fs::write(entry_path(&dir, bad_key), "{ not json").unwrap();
        std::fs::write(dir.join("README.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "hello").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, JobKey::of_bytes(b"good"));
    }
}
