//! # bittrans-engine
//!
//! A job-oriented, multi-threaded batch engine over the `bittrans-core`
//! presynthesis pipeline.
//!
//! Every entry point in `bittrans-core` runs one specification at one
//! latency on one thread. Real workloads — benchmark suites, latency
//! sweeps, design-space exploration over transformation options — run the
//! pipeline hundreds of times, and most of those runs repeat earlier ones
//! exactly (a sweep re-run with one changed spec, overlapping latency
//! ranges, the same spec under several reporting front ends). This crate
//! adds the three missing layers:
//!
//! * **parallelism** — a [`Job`] is a `spec × latency × options` triple;
//!   [`Engine::run`] fans a batch of jobs out across a pool of worker
//!   threads ([`executor`]) and returns results in submission order, so
//!   batch output is deterministic regardless of worker count;
//! * **content-addressed caching** — every job is keyed by a stable hash
//!   of its canonicalized specification text, latency and options
//!   ([`key`]); results live in an in-memory [`cache`] shared by all
//!   batches run on one engine, with hit/miss counters surfaced through
//!   [`EngineStats`], and optionally spill to an indexed directory
//!   ([`Engine::with_cache_dir`]) that later processes read lazily and
//!   prune by size or age ([`Engine::prune_cache`]);
//! * **design-space exploration** — a [`Study`] spans a typed axis grid
//!   (specs × latencies × adder architectures × balancing × verification)
//!   and returns a [`StudyReport`] of labelled cells, replacing every
//!   hand-rolled sweep loop in the benches, examples and CLI;
//! * **sharded multi-process execution** — [`shard::run_sharded`]
//!   partitions a study's deduplicated job list by [`JobKey`] range across
//!   workers that share one cache directory — local worker processes or a
//!   fleet of remote `serve` endpoints, a per-run [`shard::Transport`]
//!   choice — then merges their statistics and reassembles the exact
//!   single-process [`StudyReport`];
//! * **a long-running service** — [`serve::Server`] answers
//!   newline-delimited JSON study requests over TCP from one warm engine,
//!   so many clients share a single in-memory cache (backed by the cache
//!   directory) instead of each paying a cold start.
//!
//! ```
//! use bittrans_engine::{Engine, Job};
//! use bittrans_ir::Spec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = Spec::parse(
//!     "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
//!       C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
//! )?;
//! let engine = Engine::default();
//! let jobs: Vec<Job> = (2..=5).map(|lat| Job::new(spec.clone(), lat)).collect();
//!
//! let first = engine.run(jobs.clone());
//! assert_eq!(first.outcomes.len(), 4);
//! assert_eq!(first.stats.cache_hits, 0);
//!
//! // The same batch again: served entirely from the content-addressed
//! // cache, no pipeline work at all.
//! let again = engine.run(jobs);
//! assert_eq!(again.stats.cache_hits, 4);
//! assert_eq!(again.stats.hit_rate(), 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod executor;
pub mod fuzz;
pub mod job;
pub mod key;
mod persist;
pub mod proto;
pub mod report;
pub mod sched;
pub mod serve;
pub mod shard;
pub mod stagecache;
pub mod stats;
pub mod study;
pub mod sweep;
pub mod trace;

pub use cache::ResultCache;
pub use job::{Job, JobOutcome, JobResult};
pub use key::JobKey;
pub use persist::{PrunePolicy, PruneReport};
pub use report::{StudyCell, StudyReport};
pub use serve::{ServeOptions, Server, DEFAULT_MAX_INFLIGHT};
pub use stats::{BatchReport, EndpointStats, EngineStats, SchedStats, ServiceStats};
pub use study::Study;

use bittrans_core::{compare, SweepPoint};
use bittrans_ir::Spec;
use persist::DirIndex;
use stagecache::{StageCache, StageTally};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration of an [`Engine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Worker threads. `None` uses [`std::thread::available_parallelism`].
    pub workers: Option<usize>,
    /// Whether results are cached across jobs and batches.
    pub cache: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions { workers: None, cache: true }
    }
}

/// Which cache tier answered a [`Engine::lookup`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HitTier {
    /// Resident in the in-memory cache.
    Memory,
    /// Lazily loaded (and promoted) from the cache directory.
    Disk,
}

/// The batch-optimization engine: a worker pool plus a content-addressed
/// result cache shared by every batch run through it, optionally spilled
/// to disk ([`Engine::with_cache_dir`]) so separate processes share it too.
#[derive(Debug, Default)]
pub struct Engine {
    options: EngineOptions,
    cache: ResultCache,
    disk: Option<Mutex<DirIndex>>,
    /// Incremental sub-job memo: pipeline stages keyed by their inputs,
    /// shared by every batch and serve request ([`stagecache`]).
    stages: StageCache,
}

impl Engine {
    /// An engine with the given options and an empty cache.
    pub fn new(options: EngineOptions) -> Self {
        Engine { options, cache: ResultCache::new(), disk: None, stages: StageCache::default() }
    }

    /// Attaches a persistent cache directory: one JSON file per [`JobKey`],
    /// written by any earlier process, indexed by an `index.json` manifest.
    /// Opening reads (or rebuilds) the index only — entry bodies are parsed
    /// lazily, on first lookup — and every comparison this engine computes
    /// from here on is spilled back with an atomic rename. A repeated CLI
    /// or CI invocation over the same inputs is therefore served entirely
    /// from disk and reports a 100 % hit rate, without having paid an
    /// upfront parse of the whole directory.
    ///
    /// A corrupt entry is invisible: its job recomputes (a miss) and the
    /// respill repairs the file. A stale or damaged `index.json` is rebuilt
    /// from the directory contents. A failed spill leaves the entry in
    /// memory only — the cache is an optimization, never a correctness
    /// dependency. Only successful comparisons are persisted; pipeline
    /// errors are recomputed. Persistence is inert when
    /// [`EngineOptions::cache`] is false.
    ///
    /// # Errors
    ///
    /// I/O errors creating or scanning the directory.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if self.options.cache {
            self.disk = Some(Mutex::new(DirIndex::open(&dir)?));
            // Verify-stage tokens live in a subdirectory the job-entry
            // scan ignores (it only considers top-level `*.json` files).
            self.stages.attach_disk(dir.join(persist::STAGE_SUBDIR));
        }
        Ok(self)
    }

    /// Whether a persistent cache directory is attached (and caching
    /// enabled) — i.e. whether this engine's results are visible to other
    /// processes sharing the store. The `serve` front end uses this to
    /// reject shard requests on a store-less server, whose work could
    /// never reach the dispatching coordinator.
    pub fn has_cache_dir(&self) -> bool {
        self.disk.is_some()
    }

    /// Serves `key` from the in-memory cache or, failing that, lazily from
    /// the attached cache directory (promoting the entry into memory).
    /// Corrupt disk entries are dropped from the index so the caller
    /// recomputes and respills them. The returned provenance says which
    /// tier answered — the trace collector attributes every hit with it.
    fn lookup(&self, key: &JobKey) -> Option<HitTier> {
        if self.cache.peek(key).is_some() {
            return Some(HitTier::Memory);
        }
        let mut disk = self.disk.as_ref()?.lock().expect("cache index lock");
        match disk.load(*key) {
            Some(comparison) => {
                self.cache.insert(*key, Arc::new(Ok(comparison)));
                Some(HitTier::Disk)
            }
            None => {
                disk.forget(*key);
                None
            }
        }
    }

    /// Results resident in memory plus on-disk entries not yet promoted.
    fn resident_entries(&self) -> usize {
        let in_memory = self.cache.len();
        match &self.disk {
            None => in_memory,
            Some(disk) => {
                let disk = disk.lock().expect("cache index lock");
                in_memory + disk.keys().filter(|key| self.cache.peek(key).is_none()).count()
            }
        }
    }

    /// Admits one computed result: inserts it into the in-memory cache and
    /// spills it to the attached directory (best-effort, same policy as
    /// [`Engine::run`]'s batch spill). The scheduled `serve` path computes
    /// jobs outside `Engine::run` and admits them one by one as they
    /// finish, so concurrent requests see each other's results as early as
    /// possible. A no-op with caching disabled.
    pub(crate) fn admit(&self, key: JobKey, result: &Arc<JobResult>) {
        if !self.options.cache {
            return;
        }
        self.cache.insert(key, Arc::clone(result));
        if let (Some(disk), Ok(comparison)) = (&self.disk, result.as_ref()) {
            let _ = disk.lock().expect("cache index lock").save(key, comparison);
        }
    }

    /// Flushes the cache directory's index manifest if admissions dirtied
    /// it — the end-of-batch counterpart of [`Engine::admit`].
    pub(crate) fn flush_disk(&self) {
        if let Some(disk) = &self.disk {
            disk.lock().expect("cache index lock").write_if_dirty();
        }
    }

    /// Folds one request's hit/miss classification into the engine's
    /// lifetime counters (inert with caching disabled), mirroring what
    /// [`Engine::run`] records for a batch.
    pub(crate) fn record_lifetime(&self, hits: u64, misses: u64) {
        if self.options.cache {
            self.cache.record(hits, misses);
        }
    }

    /// Runs one eviction sweep over the attached cache directory: entries
    /// older than [`PrunePolicy::max_age`] go first, then oldest-first
    /// until the directory fits in [`PrunePolicy::max_bytes`]. Entries
    /// whose result is resident in this engine's in-memory cache are
    /// pinned — a live run never loses the files backing it. The
    /// `index.json` manifest is rewritten to match.
    ///
    /// # Errors
    ///
    /// If no cache directory is attached ([`Engine::with_cache_dir`]), or
    /// deleting an entry fails.
    pub fn prune_cache(&self, policy: PrunePolicy) -> std::io::Result<PruneReport> {
        let disk = self.disk.as_ref().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "no cache directory attached")
        })?;
        let mut disk = disk.lock().expect("cache index lock");
        let pinned = self.cache.keys().into_iter().collect();
        let pinned_stages = self.stages.resident_keys();
        let now = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        persist::prune(&mut disk, &policy, &pinned, &pinned_stages, now)
    }

    /// Computes one comparison: through the memoized stage path
    /// ([`stagecache::StageCache::compare_staged`]) when caching is
    /// enabled — recording stage hits/misses into `tally` — or the
    /// monolithic pipeline when it is not. Both paths compose the same
    /// `bittrans-core` stage functions in the same order, so their
    /// results are bit-identical.
    pub(crate) fn compute(&self, job: &Job, tally: &StageTally) -> JobResult {
        if self.options.cache {
            self.stages.compare_staged(&job.spec, job.latency, &job.options, tally)
        } else {
            compare(&job.spec, job.latency, &job.options)
        }
    }

    /// The number of worker threads a batch will use.
    pub fn worker_count(&self) -> usize {
        self.options
            .workers
            .filter(|&w| w > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    }

    /// Runs a batch of jobs and returns one [`JobOutcome`] per job, in
    /// submission order (independent of worker count and scheduling).
    ///
    /// Jobs whose [`JobKey`] is already cached are served from the cache.
    /// Duplicate keys within the batch are computed once: the first
    /// occurrence counts as a miss, the rest as hits (their outcomes carry
    /// `from_cache = true` — they did no pipeline work). Everything else
    /// fans out across [`Engine::worker_count`] threads.
    pub fn run(&self, jobs: Vec<Job>) -> BatchReport {
        let _batch = trace::span_attrs("engine.run", |a| {
            a.num("jobs", jobs.len() as u64);
        });
        let started = Instant::now();
        let keys: Vec<JobKey> = jobs.iter().map(Job::key).collect();

        // Classify each job: cached, duplicate-of-earlier, or to-compute.
        // `fresh[i]` marks the one job per key that actually runs. Each
        // classification is one `job` trace event whose provenance
        // (memory / disk / duplicate, plus `computed` in the pool below)
        // reconciles exactly with the hit/miss counters.
        let mut hits = 0u64;
        let mut to_compute: Vec<(usize, JobKey)> = Vec::new();
        let mut fresh = vec![false; jobs.len()];
        let mut scheduled: std::collections::HashSet<JobKey> = std::collections::HashSet::new();
        for (i, key) in keys.iter().enumerate() {
            let tier = if self.options.cache { self.lookup(key) } else { None };
            if let Some(tier) = tier {
                hits += 1;
                trace::event("job", |a| {
                    a.str("key", &key.to_string()).str(
                        "provenance",
                        match tier {
                            HitTier::Memory => "memory",
                            HitTier::Disk => "disk",
                        },
                    );
                });
            } else if scheduled.insert(*key) {
                fresh[i] = true;
                to_compute.push((i, *key));
            } else {
                // Duplicate of a job already scheduled in this batch: its
                // outcome shares the first occurrence's computation, so it
                // counts as a hit.
                hits += 1;
                trace::event("job", |a| {
                    a.str("key", &key.to_string()).str("provenance", "duplicate");
                });
            }
        }
        let misses = to_compute.len() as u64;

        // Fan the uncached jobs out across the worker pool. Workers
        // share the engine's stage memo, so jobs that differ only in
        // latency (or only in options) share their common stage prefix
        // even within one cold batch — the `OnceLock` slots make the
        // first worker to need a stage compute it while the rest block
        // and reuse it.
        let workers = self.worker_count().min(to_compute.len().max(1));
        let tally = StageTally::default();
        let computed: Vec<(JobKey, Arc<JobResult>)> = executor::map_ordered(
            to_compute.iter().map(|&(i, key)| (key, &jobs[i])).collect(),
            workers,
            |(key, job): (JobKey, &Job)| {
                let result = Arc::new(self.compute(job, &tally));
                trace::event("job", |a| {
                    a.str("key", &key.to_string())
                        .str("provenance", "computed")
                        .flag("ok", result.is_ok());
                });
                (key, result)
            },
        );
        if self.options.cache {
            for (key, result) in &computed {
                self.cache.insert(*key, Arc::clone(result));
                // Best-effort spill: a failed write costs a recomputation
                // in some later process, never this batch's result.
                if let (Some(disk), Ok(comparison)) = (&self.disk, result.as_ref()) {
                    let _ = disk.lock().expect("cache index lock").save(*key, comparison);
                }
            }
            if let Some(disk) = &self.disk {
                disk.lock().expect("cache index lock").write_if_dirty();
            }
            self.cache.record(hits, misses);
        }

        // Assemble outcomes in submission order. Every key is now either
        // in the cache or (with caching disabled) in the computed list.
        let computed: std::collections::HashMap<JobKey, Arc<JobResult>> =
            computed.into_iter().collect();
        let outcomes: Vec<JobOutcome> = jobs
            .iter()
            .zip(&keys)
            .enumerate()
            .map(|(i, (job, key))| {
                let result = match computed.get(key) {
                    Some(result) => Arc::clone(result),
                    None => self.cache.peek(key).expect("batch result neither computed nor cached"),
                };
                JobOutcome {
                    name: job.spec.name().to_string(),
                    latency: job.latency,
                    key: *key,
                    from_cache: !fresh[i],
                    result,
                }
            })
            .collect();

        let stats = EngineStats {
            jobs: jobs.len() as u64,
            cache_hits: hits,
            cache_misses: misses,
            cache_entries: self.resident_entries(),
            workers,
            elapsed: started.elapsed(),
            stage_hits: tally.hits(),
            stage_misses: tally.misses(),
        };
        trace::event("engine.batch", |a| {
            a.num("jobs", stats.jobs)
                .num("cache_hits", stats.cache_hits)
                .num("cache_misses", stats.cache_misses)
                .num("workers", stats.workers as u64)
                .num("stage_hits", stats.stage_hits)
                .num("stage_misses", stats.stage_misses);
        });
        BatchReport { outcomes, stats }
    }

    /// Regenerates the Fig. 4 experiment — cycle length of both flows
    /// across a latency range — with the latencies spread over the worker
    /// pool instead of `bittrans_core::latency_sweep`'s serial loop.
    ///
    /// A thin wrapper over a single-axis [`Study`]: latencies where either
    /// flow is infeasible are skipped, and points come back in input order,
    /// exactly like the serial version. Sweeps over overlapping ranges (or
    /// re-runs) hit the cache.
    pub fn sweep(
        &self,
        spec: &Spec,
        latencies: impl IntoIterator<Item = u32>,
        options: &bittrans_core::CompareOptions,
    ) -> Vec<SweepPoint> {
        sweep::sweep(self, spec, latencies, options)
    }

    /// Cumulative statistics across every batch run on this engine.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            jobs: self.cache.hits() + self.cache.misses(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_entries: self.resident_entries(),
            workers: self.worker_count(),
            elapsed: std::time::Duration::ZERO,
            stage_hits: self.stages.hits(),
            stage_misses: self.stages.misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_adds() -> Spec {
        Spec::parse(
            "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
              C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
        )
        .unwrap()
    }

    #[test]
    fn batch_results_match_direct_compare() {
        let spec = three_adds();
        let engine = Engine::default();
        let report = engine.run(vec![Job::new(spec.clone(), 3)]);
        let direct = compare(&spec, 3, &Default::default()).unwrap();
        let got = report.outcomes[0].result.as_ref().as_ref().unwrap();
        assert_eq!(got.optimized.cycle_delta, direct.optimized.cycle_delta);
        assert_eq!(got.original.cycle_delta, direct.original.cycle_delta);
    }

    #[test]
    fn second_batch_is_all_hits() {
        let spec = three_adds();
        let engine = Engine::default();
        let jobs: Vec<Job> = (2..=4).map(|l| Job::new(spec.clone(), l)).collect();
        let first = engine.run(jobs.clone());
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(first.stats.cache_misses, 3);
        let second = engine.run(jobs);
        assert_eq!(second.stats.cache_hits, 3);
        assert_eq!(second.stats.hit_rate(), 100.0);
        assert!(second.outcomes.iter().all(|o| o.from_cache));
    }

    #[test]
    fn duplicate_jobs_in_one_batch_compute_once() {
        let spec = three_adds();
        let engine = Engine::default();
        let report = engine.run(vec![Job::new(spec.clone(), 3), Job::new(spec, 3)]);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.stats.cache_entries, 1);
        // One computation, one dedup: the duplicate counts as a hit and is
        // marked from_cache.
        assert_eq!(report.stats.cache_misses, 1);
        assert_eq!(report.stats.cache_hits, 1);
        assert!(!report.outcomes[0].from_cache);
        assert!(report.outcomes[1].from_cache);
        // Both outcomes share one computed result.
        assert!(Arc::ptr_eq(&report.outcomes[0].result, &report.outcomes[1].result));
    }

    #[test]
    fn infeasible_jobs_report_errors_in_place() {
        let spec = three_adds();
        let engine = Engine::default();
        let report = engine.run(vec![Job::new(spec.clone(), 0), Job::new(spec, 3)]);
        assert!(report.outcomes[0].result.is_err());
        assert!(report.outcomes[1].result.is_ok());
    }

    #[test]
    fn caching_can_be_disabled() {
        let spec = three_adds();
        let engine = Engine::new(EngineOptions { cache: false, ..Default::default() });
        let jobs = vec![Job::new(spec, 3)];
        engine.run(jobs.clone());
        let second = engine.run(jobs);
        assert_eq!(second.stats.cache_hits, 0);
        // A disabled cache bypasses the stage memo entirely (monolithic
        // pipeline) and never accrues lifetime counters either.
        assert_eq!(second.stats.stage_hits + second.stats.stage_misses, 0);
        assert_eq!(engine.stats().jobs, 0);
        assert_eq!(engine.stats().stage_misses, 0);
    }

    #[test]
    fn latency_sweep_batch_shares_the_extract_stage() {
        let spec = three_adds();
        let engine = Engine::default();
        let jobs: Vec<Job> = (2..=5).map(|l| Job::new(spec.clone(), l)).collect();
        let cold = engine.run(jobs.clone());
        // `extract` is λ-invariant: the stage memo computes it once and
        // the other three points hit it — even in one cold batch, where
        // the OnceLock slot serializes concurrent workers.
        assert!(cold.stats.stage_hits >= 3, "{:?}", cold.stats);
        assert!(cold.stats.stage_misses > 0);
        // A warm re-run is served at job granularity: zero stages run,
        // so zero parse/extract/fragment recomputes — and zero hits,
        // because nothing even consulted the stage memo.
        let warm = engine.run(jobs);
        assert_eq!(warm.stats.cache_hits, 4);
        assert_eq!(warm.stats.stage_hits + warm.stats.stage_misses, 0, "{:?}", warm.stats);
        // Lifetime stage counters survive on the engine.
        assert!(engine.stats().stage_misses > 0);
    }
}
