//! A long-running [`Study`] service over one warm [`Engine`]: newline-
//! delimited JSON over TCP, so many clients share a single in-memory
//! cache (backed by the indexed cache directory) instead of each paying a
//! cold start.
//!
//! # Protocol
//!
//! One request per line, one response line per request, connections may
//! carry any number of requests. A request is a **study body** — the same
//! shape the shard [`Manifest`] embeds, read back by
//! [`ShardedStudy::from_value`]:
//!
//! ```text
//! {"sources": ["spec ex { ... }"], "latencies": [3, 4],
//!  "adder_archs": ["rca", "cla"], "balance": [true, false],
//!  "verify_vectors": [50], "base": {...}}
//! ```
//!
//! Only `sources` is required; absent axes collapse exactly as they do in
//! [`Study`]. Unknown top-level fields are rejected — a typo'd axis name
//! must fail loudly, not silently run the default grid. The special
//! request `{"shutdown": true}` asks the server to stop accepting, finish
//! in-flight requests and exit.
//!
//! A study body carrying `shard_index`/`shard_count`
//! ([`crate::shard::SHARD_COORD_FIELDS`]) is a **shard request**: the
//! server executes only that range of the study's key-sorted distinct
//! jobs ([`crate::shard::shard_slice`]) and answers
//! `{"ok":true,"shard_index":…,"shard_count":…,"service":{…},"stats":{…}}`
//! — the batch's [`EngineStats`] instead of a report, mirroring the
//! stats line a local `shard-worker` process prints on stdout. The
//! results travel through the server's `--cache-dir` (which must be the
//! store the dispatching coordinator reads), so shard requests are
//! rejected on a server started without one.
//!
//! A successful response is `{"ok":true,"service":{...},"report":{...}}`
//! with the **report field last**: its value is byte-for-byte the
//! [`StudyReport`] JSON that a single-process [`Study::run`] serializes,
//! so clients can slice it out of the line without re-serializing. The
//! `service` field carries process-lifetime [`ServiceStats`]. A rejected
//! request gets `{"ok":false,"error":"..."}` and — except after an
//! oversized body, whose line framing is unrecoverable — the connection
//! stays usable.
//!
//! # Execution model
//!
//! Connections are handled by one thread each, but **studies execute one
//! at a time** over the shared engine (a run lock): the worker pool
//! already saturates the machine, so interleaving two grids would only
//! thrash it — and serial execution makes each response a deterministic
//! function of the request and the engine's resident key set, which is
//! what lets the integration suite demand byte-identical reports. Cache
//! hits earned by one client's request are visible to every later request
//! from any client: that is the point of the service.
//!
//! # Shutdown
//!
//! The `shutdown` request is the graceful path: stop accepting, drain
//! in-flight work, return the final [`ServiceStats`]. Abrupt termination
//! (SIGTERM/SIGKILL — std offers no signal hooks and this workspace
//! vendors no libc) is *safe by design*: every cache write is an atomic
//! temp-file + rename, so a killed server never leaves a half-written
//! entry, and the next server warms straight back up from the directory.

use crate::report::StudyReport;
use crate::shard::{self, ShardedStudy};
use crate::stats::{EngineStats, ServiceStats};
use crate::study::Study;
use crate::{trace, Engine, EngineOptions, Job};
use serde_json::Value;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default cap on one request line. A study body is source text plus axis
/// lists — far below this — so anything larger is a runaway or hostile
/// client, and reading it unbounded would let one connection exhaust the
/// server's memory.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 4 * 1024 * 1024;

/// Upper bound on a shard request's `shard_count`. Real fleets are a
/// handful of machines; anything bigger is a typo or abuse, and a hard
/// cap keeps hostile coordinates from costing the service anything —
/// the request is one error response, like every other rejection.
pub const MAX_SHARD_COUNT: usize = 1 << 16;

/// How long a handler blocks on an idle connection before re-checking the
/// shutdown flag, so graceful shutdown never waits on a silent client.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Upper bound on one blocked response write. A client that requests a
/// study and then never drains its socket would otherwise pin its handler
/// in `write_all` forever — and [`Server::run`] joins every handler at
/// shutdown, so one such client could hang the whole drain.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to bind, `host:port` (port 0 picks a free one — read the
    /// real address back from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads of the shared engine (`None`: all cores).
    pub workers: Option<usize>,
    /// Persistent cache directory backing the warm in-memory cache
    /// (`None`: memory only, the cache dies with the process).
    pub cache_dir: Option<PathBuf>,
    /// Reject request lines longer than this many bytes.
    pub max_request_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: None,
            cache_dir: None,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
        }
    }
}

/// The bound service: one listener, one warm [`Engine`]. Created by
/// [`Server::bind`], driven by [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// Everything handler threads share.
struct ServerState {
    engine: Engine,
    /// Serializes study execution; see the module docs.
    run_lock: Mutex<()>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Request-id allocator for the structured per-request logs; counts
    /// every received line, unlike `requests` (answered studies only).
    next_request: AtomicU64,
    /// Per-class answer counters for `{"stats":true}` introspection:
    /// study reports, shard ranges, stats snapshots.
    class_study: AtomicU64,
    class_shard: AtomicU64,
    class_stats: AtomicU64,
    started: Instant,
    max_request_bytes: usize,
    local_addr: SocketAddr,
}

impl ServerState {
    fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            uptime: self.started.elapsed(),
            engine: self.engine.stats(),
        }
    }
}

impl Server {
    /// Binds the listener and opens the engine (and its cache directory,
    /// when configured). No request is served until [`Server::run`].
    ///
    /// # Errors
    ///
    /// Binding the address or opening the cache directory.
    pub fn bind(options: &ServeOptions) -> io::Result<Server> {
        let engine = Engine::new(EngineOptions { workers: options.workers, cache: true });
        let engine = match &options.cache_dir {
            Some(dir) => engine.with_cache_dir(dir)?,
            None => engine,
        };
        let listener = TcpListener::bind(options.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            engine,
            run_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
            class_study: AtomicU64::new(0),
            class_shard: AtomicU64::new(0),
            class_stats: AtomicU64::new(0),
            started: Instant::now(),
            max_request_bytes: options.max_request_bytes,
            local_addr,
        });
        Ok(Server { listener, state })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Accepts connections until a `shutdown` request arrives, then joins
    /// every handler (in-flight requests finish and are answered) and
    /// returns the final process-lifetime statistics.
    ///
    /// # Errors
    ///
    /// Never on per-connection trouble — a bad client costs one handler
    /// thread, not the service. The `Result` exists for future fatal
    /// accept-loop conditions and keeps the CLI's `?` shape.
    pub fn run(self) -> io::Result<ServiceStats> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    // A long-lived process must not hoard finished handles.
                    handlers.retain(|h| !h.is_finished());
                    let state = Arc::clone(&self.state);
                    handlers.push(std::thread::spawn(move || handle_connection(stream, &state)));
                }
                Err(e) => {
                    // Transient accept failures (EMFILE under load) must
                    // not kill the service; back off briefly so a
                    // persistent condition cannot spin the loop.
                    trace::stderr_log("serve", "accept_error", |a| {
                        a.str("error", &e.to_string());
                    });
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(self.state.service_stats())
    }
}

/// What one request line resolved to.
enum Outcome {
    /// A response line to send; the connection keeps serving.
    Reply(String),
    /// A rejection to send; the connection keeps serving.
    Error(String),
    /// Acknowledge, then stop the whole service.
    Shutdown,
}

/// Serves one connection: bounded line reads, one response per request.
/// Returns (closing the connection) on EOF, I/O trouble, oversized
/// requests, or service shutdown.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let peer = stream.peer_addr().map_or_else(|_| "?".to_string(), |a| a.to_string());
    // Idle reads wake periodically so shutdown can drain this thread, and
    // writes are bounded so a client that never reads its response cannot
    // pin the handler (both options are socket-wide, shared by the clone).
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_request_line(&mut reader, state) {
            LineRead::Line(line) => line,
            LineRead::Closed => return,
            LineRead::Oversized => {
                state.errors.fetch_add(1, Ordering::SeqCst);
                let message = format!(
                    "request exceeds the {} byte limit; closing connection",
                    state.max_request_bytes
                );
                trace::stderr_log("serve", "rejected", |a| {
                    a.str("peer", &peer).str("error", &message);
                });
                let _ = respond_error(&mut writer, &message);
                // Drain the rest of the oversized line before closing:
                // dropping the socket with unread input queued makes the
                // close an RST, which can destroy the error reply in
                // transit before the client reads it.
                drain_line(&mut reader);
                return;
            }
        };
        if line.is_empty() {
            continue; // blank keep-alive line
        }
        // Every received request line gets a process-unique id; it ties
        // the structured log lines below to the request's trace span.
        let req = state.next_request.fetch_add(1, Ordering::SeqCst) + 1;
        let _span = trace::span_attrs("serve.request", |a| {
            a.num("req", req).str("peer", &peer);
        });
        match process_request(&line, state, &peer, req) {
            Outcome::Reply(response) => {
                if write_line(&mut writer, &response).is_err() {
                    // The client vanished mid-run. Its study already ran
                    // (and warmed the cache for everyone else); only the
                    // reply is lost.
                    trace::stderr_log("serve", "client_gone", |a| {
                        a.num("req", req).str("peer", &peer);
                    });
                    return;
                }
            }
            Outcome::Error(message) => {
                state.errors.fetch_add(1, Ordering::SeqCst);
                trace::stderr_log("serve", "rejected", |a| {
                    a.num("req", req).str("peer", &peer).str("error", &message);
                });
                if respond_error(&mut writer, &message).is_err() {
                    return;
                }
            }
            Outcome::Shutdown => {
                trace::stderr_log("serve", "shutdown", |a| {
                    a.num("req", req).str("peer", &peer);
                });
                let _ = write_line(&mut writer, "{\"ok\":true,\"shutdown\":true}");
                state.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag. A wildcard
                // bind (0.0.0.0 / ::) is not connectable on every
                // platform, so aim the wake-up at loopback on the bound
                // port instead.
                let mut wake = state.local_addr;
                if wake.ip().is_unspecified() {
                    wake.set_ip(match wake {
                        SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                        SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                    });
                }
                let _ = TcpStream::connect(wake);
                return;
            }
        }
    }
}

/// One bounded line read.
enum LineRead {
    /// A complete, trimmed request line.
    Line(String),
    /// EOF, an unrecoverable read error, or shutdown while idle.
    Closed,
    /// The line outgrew the configured limit before its newline arrived.
    Oversized,
}

/// Reads up to a newline, never buffering more than the configured limit,
/// and re-checking the shutdown flag whenever the idle timeout fires with
/// nothing accumulated. A final unterminated line (client sent a request
/// and shut down its write side) is still served.
fn read_request_line(reader: &mut BufReader<TcpStream>, state: &ServerState) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return LineRead::Closed;
        }
        // +1 beyond the cap: the newline delimiter is framing, not body,
        // so a body of exactly `max_request_bytes` plus its newline must
        // still fit — only a strictly longer *body* trips the cap.
        let budget = (state.max_request_bytes + 1).saturating_sub(line.len());
        let mut limited = reader.by_ref().take(budget as u64);
        match limited.read_until(b'\n', &mut line) {
            Ok(0) if line.is_empty() => return LineRead::Closed, // clean EOF
            Ok(_) if line.ends_with(b"\n") => {
                line.pop(); // strip the delimiter before judging the body
                if line.len() > state.max_request_bytes {
                    return LineRead::Oversized;
                }
                return finish_line(line);
            }
            Ok(0) | Ok(_) if line.len() > state.max_request_bytes => return LineRead::Oversized,
            Ok(0) => {
                // EOF (or exhausted budget — excluded above) mid-line:
                // serve the trailing request.
                return finish_line(line);
            }
            Ok(_) => continue, // partial read before the timeout hit
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Closed,
        }
    }
}

/// How much of an oversized line is read-and-discarded before the hard
/// close: a client still streaming one request beyond this is hostile,
/// and at that point an RST is the right answer.
const DRAIN_LIMIT: u64 = 64 * 1024 * 1024;

/// Discards input until the end of the current line (or EOF, the idle
/// timeout, or [`DRAIN_LIMIT`]), so closing after an oversized-request
/// rejection sends a clean FIN and the error reply survives transit.
fn drain_line(reader: &mut BufReader<TcpStream>) {
    let mut chunk = [0u8; 8192];
    let mut discarded: u64 = 0;
    while discarded < DRAIN_LIMIT {
        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if chunk[..n].contains(&b'\n') {
                    return;
                }
                discarded += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Timeout included: a client that stopped sending has nothing
            // left to drain.
            Err(_) => return,
        }
    }
}

fn finish_line(line: Vec<u8>) -> LineRead {
    match String::from_utf8(line) {
        Ok(text) => LineRead::Line(text.trim().to_string()),
        // Not UTF-8, so certainly not JSON: hand the parser a line that
        // cannot parse, producing a normal (recoverable) rejection.
        Err(_) => LineRead::Line("\u{fffd}".to_string()),
    }
}

/// Parses, validates and runs one request line.
fn process_request(line: &str, state: &ServerState, peer: &str, req: u64) -> Outcome {
    let value = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(e) => return Outcome::Error(format!("bad request: {e}")),
    };
    let Value::Object(fields) = &value else {
        return Outcome::Error("bad request: body must be a JSON object".to_string());
    };
    match value.get("shutdown") {
        Some(Value::Bool(true)) => return Outcome::Shutdown,
        Some(_) => return Outcome::Error("bad request: `shutdown` must be `true`".to_string()),
        None => {}
    }
    // `{"stats":true}` is pure introspection: answer the lifetime
    // counters without running anything — and without disturbing them,
    // so interleaved stats probes never change what study clients see.
    match value.get("stats") {
        Some(Value::Bool(true)) => {
            if fields.len() > 1 {
                return Outcome::Error("bad request: `stats` must be the only field".to_string());
            }
            state.class_stats.fetch_add(1, Ordering::SeqCst);
            trace::stderr_log("serve", "stats", |a| {
                a.num("req", req).str("peer", peer);
            });
            let service =
                serde_json::to_string(&state.service_stats()).expect("service stats serialize");
            return Outcome::Reply(format!(
                "{{\"ok\":true,\"stats\":true,\"service\":{service},\
                 \"classes\":{{\"study\":{},\"shard\":{},\"stats\":{}}}}}",
                state.class_study.load(Ordering::SeqCst),
                state.class_shard.load(Ordering::SeqCst),
                state.class_stats.load(Ordering::SeqCst),
            ));
        }
        Some(_) => return Outcome::Error("bad request: `stats` must be `true`".to_string()),
        None => {}
    }
    // Strict field check: a typo'd axis must not silently collapse to the
    // default grid.
    for (key, _) in fields {
        let known = ShardedStudy::FIELDS.contains(&key.as_str())
            || shard::SHARD_COORD_FIELDS.contains(&key.as_str());
        if !known {
            return Outcome::Error(format!(
                "unknown field `{key}` (expected {}, {}, or shutdown)",
                ShardedStudy::FIELDS.join(", "),
                shard::SHARD_COORD_FIELDS.join(", "),
            ));
        }
    }
    let coords = match shard_coords(&value) {
        Ok(coords) => coords,
        Err(why) => return Outcome::Error(format!("bad request: {why}")),
    };
    let sharded = match ShardedStudy::from_value(&value) {
        Ok(sharded) => sharded,
        Err(e) => return Outcome::Error(format!("bad request: {e}")),
    };
    let study = match sharded.study() {
        Ok(study) => study,
        Err(e) => return Outcome::Error(format!("bad request: {e}")),
    };
    // Pre-validate axis ranges: Study::run panics on them (programmer
    // error in code-built grids), and a client's bad request must never
    // bring a worker thread down.
    if let Err(e) = study.check() {
        return Outcome::Error(format!("bad request: {e}"));
    }
    if let Some((index, count)) = coords {
        // A shard request: run the range, answer with the batch stats.
        // The results travel through the shared store, so a server
        // without one cannot usefully serve shards — reject loudly
        // instead of letting the coordinator recompute everything.
        if !state.engine.has_cache_dir() {
            return Outcome::Error(
                "shard requests need a server started with --cache-dir \
                 (the shared result store the coordinator reads)"
                    .to_string(),
            );
        }
        let stats = run_shard(shard::shard_slice(&study, index, count), state);
        state.requests.fetch_add(1, Ordering::SeqCst);
        state.class_shard.fetch_add(1, Ordering::SeqCst);
        trace::stderr_log("serve", "shard", |a| {
            a.num("req", req)
                .str("peer", peer)
                .num("shard_index", index as u64)
                .num("shard_count", count as u64)
                .num("jobs", stats.jobs)
                .num("cache_hits", stats.cache_hits)
                .num("cache_misses", stats.cache_misses);
        });
        let service =
            serde_json::to_string(&state.service_stats()).expect("service stats serialize");
        let stats = serde_json::to_string(&stats).expect("engine stats serialize");
        return Outcome::Reply(format!(
            "{{\"ok\":true,\"shard_index\":{index},\"shard_count\":{count},\
             \"service\":{service},\"stats\":{stats}}}"
        ));
    }
    let report = run_study(&study, state);
    state.requests.fetch_add(1, Ordering::SeqCst);
    state.class_study.fetch_add(1, Ordering::SeqCst);
    trace::stderr_log("serve", "report", |a| {
        a.num("req", req)
            .str("peer", peer)
            .num("cells", report.cells.len() as u64)
            .num("ok", report.successes().count() as u64)
            .num("failed", report.failures().count() as u64)
            .num("cache_hits", report.stats.cache_hits)
            .num("cache_misses", report.stats.cache_misses)
            .str("summary", &report.summary());
    });
    let service = serde_json::to_string(&state.service_stats()).expect("service stats serialize");
    // `report` goes last so clients can slice the exact single-process
    // StudyReport bytes out of the line; see the module docs.
    Outcome::Reply(format!("{{\"ok\":true,\"service\":{service},\"report\":{}}}", report.to_json()))
}

/// Reads the optional shard coordinates off a request: both fields or
/// neither, well-typed and in range.
fn shard_coords(value: &Value) -> Result<Option<(usize, usize)>, String> {
    let read = |key: &str| {
        value
            .get(key)
            .map(|v| {
                v.as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| format!("`{key}` is not an unsigned integer"))
            })
            .transpose()
    };
    match (read("shard_index")?, read("shard_count")?) {
        (None, None) => Ok(None),
        (Some(index), Some(count)) => {
            if count == 0 || index >= count {
                return Err(format!("shard {index} of {count} is out of range"));
            }
            if count > MAX_SHARD_COUNT {
                return Err(format!("shard_count {count} exceeds the {MAX_SHARD_COUNT} limit"));
            }
            Ok(Some((index, count)))
        }
        _ => Err("`shard_index` and `shard_count` must be given together".to_string()),
    }
}

/// Runs one study under the run lock. A poisoned lock (a panic in a
/// previous run — "never happens", but a service must outlive it) is
/// recovered: the engine's state is a content-addressed cache, valid at
/// every step, so continuing is safe.
fn run_study(study: &Study, state: &ServerState) -> StudyReport {
    let _guard = match state.run_lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    study.run(&state.engine)
}

/// Runs one shard request's job range under the run lock (same poisoning
/// recovery as [`run_study`]); every success spills into the shared
/// store, and the batch statistics are the whole reply.
fn run_shard(jobs: Vec<Job>, state: &ServerState) -> EngineStats {
    let _guard = match state.run_lock.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    state.engine.run(jobs).stats
}

fn write_line(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn respond_error(writer: &mut TcpStream, message: &str) -> io::Result<()> {
    let escaped = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_line(writer, &format!("{{\"ok\":false,\"error\":{escaped}}}"))
}
