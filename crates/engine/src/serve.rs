//! A long-running [`Study`] service over one warm [`Engine`]: newline-
//! delimited JSON over TCP, so many clients share a single in-memory
//! cache (backed by the indexed cache directory) instead of each paying a
//! cold start.
//!
//! # Protocol
//!
//! One request per line, connections may carry any number of requests. A
//! request is a **study body** — the same shape the shard [`Manifest`]
//! embeds, read back by [`ShardedStudy::from_value`]:
//!
//! ```text
//! {"sources": ["spec ex { ... }"], "latencies": [3, 4],
//!  "adder_archs": ["rca", "cla"], "balance": [true, false],
//!  "verify_vectors": [50], "base": {...}}
//! ```
//!
//! Only `sources` is required; absent axes collapse exactly as they do in
//! [`Study`]. Unknown top-level fields are rejected — a typo'd axis name
//! must fail loudly, not silently run the default grid. The special
//! request `{"shutdown": true}` asks the server to stop accepting, finish
//! in-flight requests and exit.
//!
//! A study body carrying `shard_index`/`shard_count`
//! ([`crate::shard::SHARD_COORD_FIELDS`]) is a **shard request**: the
//! server executes only that range of the study's key-sorted distinct
//! jobs ([`crate::shard::shard_slice`]) and answers
//! `{"ok":true,"shard_index":…,"shard_count":…,"service":{…},"stats":{…}}`
//! — the batch's [`EngineStats`] instead of a report, mirroring the
//! stats line a local `shard-worker` process prints on stdout. The
//! results travel through the server's `--cache-dir` (which must be the
//! store the dispatching coordinator reads), so shard requests are
//! rejected on a server started without one.
//!
//! A successful response is `{"ok":true,"service":{...},"report":{...}}`
//! with the **report field last**: its value is byte-for-byte the
//! [`StudyReport`] JSON that a single-process [`Study::run`] serializes,
//! so clients can slice it out of the line without re-serializing. The
//! `service` field carries process-lifetime [`ServiceStats`]. A rejected
//! request gets `{"ok":false,"error":"..."}` and — except after an
//! oversized body, whose line framing is unrecoverable — the connection
//! stays usable.
//!
//! ## Streaming
//!
//! A study body carrying `"stream": true` asks for **progressive
//! results**: as each grid cell's job resolves, the server writes one
//! frame line
//!
//! ```text
//! {"cell": {…StudyCell…}, "index": G}
//! ```
//!
//! where `index` is the cell's grid position, before the normal final
//! response line. Frames lead with `"cell"` and the final line with
//! `"ok"`, so a reader classifies each line by prefix
//! ([`crate::proto::is_frame`]); the final line's bytes are identical to
//! the batch response for the same request over the same cache state, so
//! streaming costs nothing in comparability. Cache hits stream first (in
//! grid order); computed cells follow in completion order. `stream` is
//! rejected on shard requests (their reply carries no cells).
//!
//! # Execution model
//!
//! Requests from all connections share one [`Scheduler`]: a persistent
//! worker pool — as wide as the engine's worker count — fed by a fair
//! per-request round-robin queue ([`crate::sched`]). Each study expands
//! its grid, registers its distinct uncached jobs and enqueues them as
//! one scheduling unit; workers grant every active request one task per
//! pass, so a 2-cell study admitted behind a 10,000-cell one finishes
//! after a handful of grants instead of waiting for the whole backlog
//! (the old global run lock serialized entire studies). Determinism
//! survives the interleaving because results slot back by index and
//! reports assemble from keyed cells: each response is a function of the
//! request and the cache state it observed, never of scheduling order.
//!
//! Concurrent requests wanting the **same** job never compute it twice:
//! the first to classify a key registers it in a shared in-flight table,
//! and later requests subscribe to that computation (counted as a cache
//! hit — they do no pipeline work, exactly like a resident entry).
//!
//! Connections are **pipelined**: a client may send further requests
//! before reading responses, up to [`ServeOptions::max_inflight`]
//! concurrently executing studies per connection (beyond that, requests
//! are rejected with a protocol error, never stalled). Responses are
//! written in completion order, so a pipelining client must correlate
//! them itself (or use one connection per outstanding request); a client
//! that awaits each response before the next request observes exactly
//! the old strictly-ordered protocol.
//!
//! # Shutdown
//!
//! The `shutdown` request is the graceful path: stop accepting, drain
//! in-flight work, return the final [`ServiceStats`]. Abrupt termination
//! (SIGTERM/SIGKILL — std offers no signal hooks and this workspace
//! vendors no libc) is *safe by design*: every cache write is an atomic
//! temp-file + rename, so a killed server never leaves a half-written
//! entry, and the next server warms straight back up from the directory.

use crate::key::JobKey;
use crate::report::{StudyCell, StudyReport};
use crate::sched::Scheduler;
use crate::shard::{self, ShardedStudy};
use crate::stats::{EngineStats, ServiceStats};
use crate::study::Study;
use crate::{trace, Engine, EngineOptions, HitTier, Job, JobResult};
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default cap on one request line. A study body is source text plus axis
/// lists — far below this — so anything larger is a runaway or hostile
/// client, and reading it unbounded would let one connection exhaust the
/// server's memory.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 4 * 1024 * 1024;

/// Default cap on concurrently executing studies per connection. One
/// warm client legitimately pipelines a few requests; dozens in flight
/// on a single connection is a runaway loop or abuse, and admitting them
/// unbounded would let one socket monopolize the fair queue.
pub const DEFAULT_MAX_INFLIGHT: usize = 8;

/// Upper bound on a shard request's `shard_count`. Real fleets are a
/// handful of machines; anything bigger is a typo or abuse, and a hard
/// cap keeps hostile coordinates from costing the service anything —
/// the request is one error response, like every other rejection.
pub const MAX_SHARD_COUNT: usize = 1 << 16;

/// How long a handler blocks on an idle connection before re-checking the
/// shutdown flag, so graceful shutdown never waits on a silent client.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// Upper bound on one blocked response write. A client that requests a
/// study and then never drains its socket would otherwise pin its handler
/// in `write_all` forever — and [`Server::run`] joins every handler at
/// shutdown, so one such client could hang the whole drain.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to bind, `host:port` (port 0 picks a free one — read the
    /// real address back from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads of the shared engine (`None`: all cores).
    pub workers: Option<usize>,
    /// Persistent cache directory backing the warm in-memory cache
    /// (`None`: memory only, the cache dies with the process).
    pub cache_dir: Option<PathBuf>,
    /// Reject request lines longer than this many bytes.
    pub max_request_bytes: usize,
    /// Reject a connection's study/shard requests beyond this many
    /// concurrently executing ones (a protocol error, never a stall).
    pub max_inflight: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: None,
            cache_dir: None,
            max_request_bytes: DEFAULT_MAX_REQUEST_BYTES,
            max_inflight: DEFAULT_MAX_INFLIGHT,
        }
    }
}

/// The bound service: one listener, one warm [`Engine`]. Created by
/// [`Server::bind`], driven by [`Server::run`].
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

/// One request's subscription to a job another request is computing: the
/// subscriber's slot index and the sender of its collection channel.
struct Waiter {
    slot: usize,
    tx: mpsc::Sender<(usize, Arc<JobResult>)>,
}

/// Everything handler threads share.
struct ServerState {
    engine: Engine,
    /// The shared fair worker pool; see the module docs.
    sched: Scheduler,
    /// Jobs currently computing, by key: the first request to want a key
    /// registers it here; later requests subscribe instead of recomputing.
    /// The computing task admits its result to the cache **before**
    /// removing the entry, so a request that misses the cache while
    /// holding this lock always finds a live registration to join.
    in_flight: Mutex<HashMap<JobKey, Vec<Waiter>>>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Request-id allocator for the structured per-request logs; counts
    /// every received line, unlike `requests` (answered studies only).
    next_request: AtomicU64,
    /// Per-class answer counters for `{"stats":true}` introspection:
    /// study reports, shard ranges, stats snapshots.
    class_study: AtomicU64,
    class_shard: AtomicU64,
    class_stats: AtomicU64,
    started: Instant,
    max_request_bytes: usize,
    max_inflight: usize,
    local_addr: SocketAddr,
}

impl ServerState {
    fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            uptime: self.started.elapsed(),
            engine: self.engine.stats(),
        }
    }

    fn lock_in_flight(&self) -> std::sync::MutexGuard<'_, HashMap<JobKey, Vec<Waiter>>> {
        // The table is a plain registry, valid at every step; recover a
        // poisoned guard rather than letting one panic wedge the service.
        self.in_flight.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Server {
    /// Binds the listener and opens the engine (and its cache directory,
    /// when configured). No request is served until [`Server::run`].
    ///
    /// # Errors
    ///
    /// Binding the address or opening the cache directory.
    pub fn bind(options: &ServeOptions) -> io::Result<Server> {
        let engine = Engine::new(EngineOptions { workers: options.workers, cache: true });
        let engine = match &options.cache_dir {
            Some(dir) => engine.with_cache_dir(dir)?,
            None => engine,
        };
        let listener = TcpListener::bind(options.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        let sched = Scheduler::new(engine.worker_count());
        let state = Arc::new(ServerState {
            engine,
            sched,
            in_flight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
            class_study: AtomicU64::new(0),
            class_shard: AtomicU64::new(0),
            class_stats: AtomicU64::new(0),
            started: Instant::now(),
            max_request_bytes: options.max_request_bytes,
            max_inflight: options.max_inflight.max(1),
            local_addr,
        });
        Ok(Server { listener, state })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Accepts connections until a `shutdown` request arrives, then joins
    /// every handler (in-flight requests finish and are answered) and
    /// returns the final process-lifetime statistics.
    ///
    /// # Errors
    ///
    /// Never on per-connection trouble — a bad client costs one handler
    /// thread, not the service. The `Result` exists for future fatal
    /// accept-loop conditions and keeps the CLI's `?` shape.
    pub fn run(self) -> io::Result<ServiceStats> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    // A long-lived process must not hoard finished handles.
                    handlers.retain(|h| !h.is_finished());
                    let state = Arc::clone(&self.state);
                    handlers.push(std::thread::spawn(move || handle_connection(stream, state)));
                }
                Err(e) => {
                    // Transient accept failures (EMFILE under load) must
                    // not kill the service; back off briefly so a
                    // persistent condition cannot spin the loop.
                    trace::stderr_log("serve", "accept_error", |a| {
                        a.str("error", &e.to_string());
                    });
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(self.state.service_stats())
    }
}

/// What one request line parsed to.
enum Classified {
    /// A rejection to send; the connection keeps serving.
    Error(String),
    /// Acknowledge, then stop the whole service.
    Shutdown,
    /// Pure introspection: answer the lifetime counters inline.
    Stats,
    /// A validated study (`coords` set for a shard request), to execute
    /// on the shared scheduler.
    Run { study: Study, coords: Option<(usize, usize)>, stream: bool },
}

/// Serves one connection: bounded line reads, one response per request,
/// study/shard execution on per-request runner threads so requests from
/// one connection pipeline (up to the in-flight cap). Returns — after
/// joining the runners, so every admitted request is answered — on EOF,
/// I/O trouble, oversized requests, or service shutdown.
fn handle_connection(stream: TcpStream, state: Arc<ServerState>) {
    let peer = stream.peer_addr().map_or_else(|_| "?".to_string(), |a| a.to_string());
    // Idle reads wake periodically so shutdown can drain this thread, and
    // writes are bounded so a client that never reads its response cannot
    // pin the handler (both options are socket-wide, shared by the clone).
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Studies this connection has admitted and not yet answered. The
    // reader loop is the only incrementer, so load-then-add is race-free.
    let inflight = Arc::new(AtomicUsize::new(0));
    let mut runners: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let line = match read_request_line(&mut reader, &state) {
            LineRead::Line(line) => line,
            LineRead::Closed => break,
            LineRead::Oversized => {
                state.errors.fetch_add(1, Ordering::SeqCst);
                let message = format!(
                    "request exceeds the {} byte limit; closing connection",
                    state.max_request_bytes
                );
                trace::stderr_log("serve", "rejected", |a| {
                    a.str("peer", &peer).str("error", &message);
                });
                let _ = respond_error(&writer, &message);
                // Drain the rest of the oversized line before closing:
                // dropping the socket with unread input queued makes the
                // close an RST, which can destroy the error reply in
                // transit before the client reads it.
                drain_line(&mut reader);
                break;
            }
        };
        if line.is_empty() {
            continue; // blank keep-alive line
        }
        runners.retain(|h| !h.is_finished());
        // Every received request line gets a process-unique id; it ties
        // the structured log lines below to the request's trace span.
        let req = state.next_request.fetch_add(1, Ordering::SeqCst) + 1;
        match classify_request(&line, &state) {
            Classified::Error(message) => {
                let _span = trace::span_attrs("serve.request", |a| {
                    a.num("req", req).str("peer", &peer);
                });
                state.errors.fetch_add(1, Ordering::SeqCst);
                trace::stderr_log("serve", "rejected", |a| {
                    a.num("req", req).str("peer", &peer).str("error", &message);
                });
                if respond_error(&writer, &message).is_err() {
                    break;
                }
            }
            Classified::Stats => {
                let _span = trace::span_attrs("serve.request", |a| {
                    a.num("req", req).str("peer", &peer);
                });
                state.class_stats.fetch_add(1, Ordering::SeqCst);
                trace::stderr_log("serve", "stats", |a| {
                    a.num("req", req).str("peer", &peer);
                });
                if write_line(&writer, &stats_reply(&state)).is_err() {
                    break;
                }
            }
            Classified::Shutdown => {
                trace::stderr_log("serve", "shutdown", |a| {
                    a.num("req", req).str("peer", &peer);
                });
                let _ = write_line(&writer, "{\"ok\":true,\"shutdown\":true}");
                state.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag. A wildcard
                // bind (0.0.0.0 / ::) is not connectable on every
                // platform, so aim the wake-up at loopback on the bound
                // port instead.
                let mut wake = state.local_addr;
                if wake.ip().is_unspecified() {
                    wake.set_ip(match wake {
                        SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                        SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                    });
                }
                let _ = TcpStream::connect(wake);
                break;
            }
            Classified::Run { study, coords, stream } => {
                if inflight.load(Ordering::SeqCst) >= state.max_inflight {
                    let message = format!(
                        "too many in-flight studies on this connection (limit {}); \
                         read a response before sending the next request",
                        state.max_inflight
                    );
                    state.errors.fetch_add(1, Ordering::SeqCst);
                    trace::stderr_log("serve", "rejected", |a| {
                        a.num("req", req).str("peer", &peer).str("error", &message);
                    });
                    if respond_error(&writer, &message).is_err() {
                        break;
                    }
                    continue;
                }
                inflight.fetch_add(1, Ordering::SeqCst);
                let state = Arc::clone(&state);
                let writer = Arc::clone(&writer);
                let inflight = Arc::clone(&inflight);
                let peer = peer.clone();
                runners.push(std::thread::spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let _span = trace::span_attrs("serve.request", |a| {
                            a.num("req", req).str("peer", &peer);
                        });
                        match coords {
                            Some((index, count)) => {
                                run_shard_request(
                                    &state, &study, index, count, req, &peer, &writer,
                                );
                            }
                            None => run_study_request(&state, &study, stream, req, &peer, &writer),
                        }
                    }));
                    if outcome.is_err() {
                        // "Never happens" on validated studies, but a
                        // service must outlive it: answer with an error
                        // instead of silently dropping the request.
                        state.errors.fetch_add(1, Ordering::SeqCst);
                        trace::stderr_log("serve", "request_panicked", |a| {
                            a.num("req", req).str("peer", &peer);
                        });
                        let _ =
                            respond_error(&writer, "internal error: request execution panicked");
                    }
                    inflight.fetch_sub(1, Ordering::SeqCst);
                }));
            }
        }
    }
    for runner in runners {
        let _ = runner.join();
    }
}

/// One bounded line read.
enum LineRead {
    /// A complete, trimmed request line.
    Line(String),
    /// EOF, an unrecoverable read error, or shutdown while idle.
    Closed,
    /// The line outgrew the configured limit before its newline arrived.
    Oversized,
}

/// Reads up to a newline, never buffering more than the configured limit,
/// and re-checking the shutdown flag whenever the idle timeout fires with
/// nothing accumulated. A final unterminated line (client sent a request
/// and shut down its write side) is still served.
fn read_request_line(reader: &mut BufReader<TcpStream>, state: &ServerState) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return LineRead::Closed;
        }
        // +1 beyond the cap: the newline delimiter is framing, not body,
        // so a body of exactly `max_request_bytes` plus its newline must
        // still fit — only a strictly longer *body* trips the cap.
        let budget = (state.max_request_bytes + 1).saturating_sub(line.len());
        let mut limited = reader.by_ref().take(budget as u64);
        match limited.read_until(b'\n', &mut line) {
            Ok(0) if line.is_empty() => return LineRead::Closed, // clean EOF
            Ok(_) if line.ends_with(b"\n") => {
                line.pop(); // strip the delimiter before judging the body
                if line.len() > state.max_request_bytes {
                    return LineRead::Oversized;
                }
                return finish_line(line);
            }
            Ok(0) | Ok(_) if line.len() > state.max_request_bytes => return LineRead::Oversized,
            Ok(0) => {
                // EOF (or exhausted budget — excluded above) mid-line:
                // serve the trailing request.
                return finish_line(line);
            }
            Ok(_) => continue, // partial read before the timeout hit
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return LineRead::Closed,
        }
    }
}

/// How much of an oversized line is read-and-discarded before the hard
/// close: a client still streaming one request beyond this is hostile,
/// and at that point an RST is the right answer.
const DRAIN_LIMIT: u64 = 64 * 1024 * 1024;

/// Discards input until the end of the current line (or EOF, the idle
/// timeout, or [`DRAIN_LIMIT`]), so closing after an oversized-request
/// rejection sends a clean FIN and the error reply survives transit.
fn drain_line(reader: &mut BufReader<TcpStream>) {
    let mut chunk = [0u8; 8192];
    let mut discarded: u64 = 0;
    while discarded < DRAIN_LIMIT {
        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if chunk[..n].contains(&b'\n') {
                    return;
                }
                discarded += n as u64;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Timeout included: a client that stopped sending has nothing
            // left to drain.
            Err(_) => return,
        }
    }
}

fn finish_line(line: Vec<u8>) -> LineRead {
    match String::from_utf8(line) {
        Ok(text) => LineRead::Line(text.trim().to_string()),
        // Not UTF-8, so certainly not JSON: hand the parser a line that
        // cannot parse, producing a normal (recoverable) rejection.
        Err(_) => LineRead::Line("\u{fffd}".to_string()),
    }
}

/// Parses and validates one request line, without running anything.
fn classify_request(line: &str, state: &ServerState) -> Classified {
    let value: Value = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(e) => return Classified::Error(format!("bad request: {e}")),
    };
    let Value::Object(fields) = &value else {
        return Classified::Error("bad request: body must be a JSON object".to_string());
    };
    match value.get("shutdown") {
        Some(Value::Bool(true)) => return Classified::Shutdown,
        Some(_) => return Classified::Error("bad request: `shutdown` must be `true`".to_string()),
        None => {}
    }
    // `{"stats":true}` is pure introspection: answer the lifetime
    // counters without running anything — and without disturbing them,
    // so interleaved stats probes never change what study clients see.
    match value.get("stats") {
        Some(Value::Bool(true)) => {
            if fields.len() > 1 {
                return Classified::Error(
                    "bad request: `stats` must be the only field".to_string(),
                );
            }
            return Classified::Stats;
        }
        Some(_) => return Classified::Error("bad request: `stats` must be `true`".to_string()),
        None => {}
    }
    // Strict field check: a typo'd axis must not silently collapse to the
    // default grid.
    for (key, _) in fields {
        let known = ShardedStudy::FIELDS.contains(&key.as_str())
            || shard::SHARD_COORD_FIELDS.contains(&key.as_str())
            || key == "stream";
        if !known {
            return Classified::Error(format!(
                "unknown field `{key}` (expected {}, {}, stream, or shutdown)",
                ShardedStudy::FIELDS.join(", "),
                shard::SHARD_COORD_FIELDS.join(", "),
            ));
        }
    }
    let stream = match value.get("stream") {
        None => false,
        Some(Value::Bool(stream)) => *stream,
        Some(_) => return Classified::Error("bad request: `stream` must be a boolean".to_string()),
    };
    let coords = match shard_coords(&value) {
        Ok(coords) => coords,
        Err(why) => return Classified::Error(format!("bad request: {why}")),
    };
    if stream && coords.is_some() {
        return Classified::Error(
            "bad request: `stream` is not supported on shard requests \
             (their reply carries no cells)"
                .to_string(),
        );
    }
    let sharded = match ShardedStudy::from_value(&value) {
        Ok(sharded) => sharded,
        Err(e) => return Classified::Error(format!("bad request: {e}")),
    };
    let study = match sharded.study() {
        Ok(study) => study,
        Err(e) => return Classified::Error(format!("bad request: {e}")),
    };
    // Pre-validate axis ranges: Study::run panics on them (programmer
    // error in code-built grids), and a client's bad request must never
    // bring a worker thread down.
    if let Err(e) = study.check() {
        return Classified::Error(format!("bad request: {e}"));
    }
    if coords.is_some() && !state.engine.has_cache_dir() {
        // A shard request's results travel through the shared store, so a
        // server without one cannot usefully serve shards — reject loudly
        // instead of letting the coordinator recompute everything.
        return Classified::Error(
            "shard requests need a server started with --cache-dir \
             (the shared result store the coordinator reads)"
                .to_string(),
        );
    }
    Classified::Run { study, coords, stream }
}

/// Reads the optional shard coordinates off a request: both fields or
/// neither, well-typed and in range.
fn shard_coords(value: &Value) -> Result<Option<(usize, usize)>, String> {
    let read = |key: &str| {
        value
            .get(key)
            .map(|v| {
                v.as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| format!("`{key}` is not an unsigned integer"))
            })
            .transpose()
    };
    match (read("shard_index")?, read("shard_count")?) {
        (None, None) => Ok(None),
        (Some(index), Some(count)) => {
            if count == 0 || index >= count {
                return Err(format!("shard {index} of {count} is out of range"));
            }
            if count > MAX_SHARD_COUNT {
                return Err(format!("shard_count {count} exceeds the {MAX_SHARD_COUNT} limit"));
            }
            Ok(Some((index, count)))
        }
        _ => Err("`shard_index` and `shard_count` must be given together".to_string()),
    }
}

/// The `{"stats":true}` introspection reply: lifetime service counters,
/// scheduler gauges, per-class answer counts.
fn stats_reply(state: &ServerState) -> String {
    let service = serde_json::to_string(&state.service_stats()).expect("service stats serialize");
    let sched = serde_json::to_string(&state.sched.stats()).expect("sched stats serialize");
    format!(
        "{{\"ok\":true,\"stats\":true,\"service\":{service},\"sched\":{sched},\
         \"classes\":{{\"study\":{},\"shard\":{},\"stats\":{}}}}}",
        state.class_study.load(Ordering::SeqCst),
        state.class_shard.load(Ordering::SeqCst),
        state.class_stats.load(Ordering::SeqCst),
    )
}

/// What a scheduled execution resolved: every distinct key's shared
/// result plus whether it was a hit (resident, or joined another
/// request's in-flight computation), and the request-scoped statistics.
struct ScheduledRun {
    resolved: HashMap<JobKey, (Arc<JobResult>, bool)>,
    stats: EngineStats,
}

/// Executes one request's distinct jobs through the shared scheduler.
///
/// Classification happens under the in-flight registry lock: each key is
/// either resident (hit), computing on behalf of another request
/// (subscribe — a hit), or registered and enqueued here (miss). The
/// per-request statistics mirror [`Engine::run`]'s exactly — same
/// hit/miss semantics, `workers` clamped to the computed-job count,
/// `cache_entries` the request's distinct-key count (what a fresh
/// single-process engine would hold after the same grid) — which is what
/// keeps served reports byte-identical to `Study::run` references.
///
/// `on_resolved` fires once per distinct key, hits first (in slot
/// order), computed and subscribed keys in completion order — the
/// streaming hook.
///
/// # Panics
///
/// If a scheduled job's worker caught a panic (the result can never
/// arrive). This request's dangling registrations are cleaned up first
/// so sibling requests fail fast instead of hanging; the per-connection
/// runner catches the panic and answers with a protocol error.
fn run_scheduled(
    state: &Arc<ServerState>,
    jobs: &[Job],
    mut on_resolved: impl FnMut(&JobKey, &Arc<JobResult>, bool),
) -> ScheduledRun {
    let started = Instant::now();
    let total = jobs.len();
    let keys: Vec<JobKey> = jobs.iter().map(Job::key).collect();
    let (tx, rx) = mpsc::channel::<(usize, Arc<JobResult>)>();
    let mut resolved: HashMap<JobKey, (Arc<JobResult>, bool)> = HashMap::with_capacity(total);
    let mut hits: u64 = 0;
    let mut to_compute: Vec<(usize, JobKey)> = Vec::new();
    let mut immediate: Vec<(JobKey, Arc<JobResult>)> = Vec::new();
    let mut slot_is_hit = vec![false; total];
    let mut pending: usize = 0;
    {
        // Classify every key under one registry lock hold, so a request
        // observes each key atomically: resident, in-flight, or absent —
        // never the gap between a sibling's admission and its
        // deregistration (admission happens first; see `in_flight`).
        let mut in_flight = state.lock_in_flight();
        let mut seen: HashSet<JobKey> = HashSet::with_capacity(total);
        for (slot, key) in keys.iter().enumerate() {
            if !seen.insert(*key) {
                // An in-request duplicate (callers pass deduplicated
                // lists, but the invariant is cheap to keep local): it
                // shares the first slot's result and counts as a hit,
                // exactly like Engine::run's in-batch duplicates.
                hits += 1;
                slot_is_hit[slot] = true;
                continue;
            }
            if let Some(tier) = state.engine.lookup(key) {
                hits += 1;
                slot_is_hit[slot] = true;
                trace::event("job", |a| {
                    a.str("key", &key.to_string()).str(
                        "provenance",
                        match tier {
                            HitTier::Memory => "memory",
                            HitTier::Disk => "disk",
                        },
                    );
                });
                let result = state.engine.cache.peek(key).expect("looked-up key is resident");
                immediate.push((*key, result));
            } else if let Some(waiters) = in_flight.get_mut(key) {
                // Another request is computing this key right now:
                // subscribe to that computation instead of repeating it.
                hits += 1;
                slot_is_hit[slot] = true;
                trace::event("job", |a| {
                    a.str("key", &key.to_string()).str("provenance", "in-flight");
                });
                waiters.push(Waiter { slot, tx: tx.clone() });
                pending += 1;
            } else {
                in_flight.insert(*key, Vec::new());
                to_compute.push((slot, *key));
            }
        }
    }
    let misses = to_compute.len() as u64;
    let workers = state.engine.worker_count().min(to_compute.len().max(1));
    pending += to_compute.len();
    let owned = to_compute.clone();
    // Per-request stage counters, shared into the task closures; stage
    // work a sibling request's tasks did on our behalf lands in *their*
    // tally — each stage resolution is tallied exactly once.
    let stage_tally = Arc::new(crate::stagecache::StageTally::default());

    // Deliver the immediate hits (outside the registry lock — the
    // callback may write to a socket).
    for (key, result) in immediate {
        resolved.insert(key, (Arc::clone(&result), true));
        on_resolved(&key, &result, true);
    }

    // Enqueue the misses as one fairness unit on the shared pool.
    let parent = trace::current_span_id();
    let tasks: Vec<crate::sched::Task> = to_compute
        .into_iter()
        .map(|(slot, key)| {
            let job = jobs[slot].clone();
            let state = Arc::clone(state);
            let tx = tx.clone();
            let stage_tally = Arc::clone(&stage_tally);
            Box::new(move || {
                let _span = trace::span_under(parent, "serve.job", |a| {
                    a.num("slot", slot as u64);
                });
                let result = Arc::new(state.engine.compute(&job, &stage_tally));
                trace::event("job", |a| {
                    a.str("key", &key.to_string())
                        .str("provenance", "computed")
                        .flag("ok", result.is_ok());
                });
                // Admit before deregistering, so no classifier can fall
                // into the gap between the two (see `in_flight`).
                state.engine.admit(key, &result);
                let waiters = state.lock_in_flight().remove(&key).unwrap_or_default();
                let _ = tx.send((slot, Arc::clone(&result)));
                for waiter in waiters {
                    let _ = waiter.tx.send((waiter.slot, Arc::clone(&result)));
                }
            }) as crate::sched::Task
        })
        .collect();
    drop(tx);
    state.sched.submit(tasks);

    // Collect exactly the owed results; completion order is scheduling
    // order, but slots key everything back deterministically.
    while pending > 0 {
        match rx.recv() {
            Ok((slot, result)) => {
                pending -= 1;
                let key = keys[slot];
                let hit = slot_is_hit[slot];
                resolved.insert(key, (Arc::clone(&result), hit));
                on_resolved(&key, &result, hit);
            }
            Err(_) => {
                // Every sender is gone with results still owed: a
                // scheduled job panicked (its worker caught it, so the
                // send never happened). Drop this request's dangling
                // registrations — which drops its subscribers' senders,
                // so they fail fast the same way instead of hanging —
                // then surface the failure.
                {
                    let mut in_flight = state.lock_in_flight();
                    for (_, key) in &owned {
                        if !resolved.contains_key(key) {
                            in_flight.remove(key);
                        }
                    }
                }
                panic!("a scheduled job died before reporting its result");
            }
        }
    }

    state.engine.flush_disk();
    state.engine.record_lifetime(hits, misses);
    let stats = EngineStats {
        jobs: total as u64,
        cache_hits: hits,
        cache_misses: misses,
        cache_entries: total,
        workers,
        elapsed: started.elapsed(),
        stage_hits: stage_tally.hits(),
        stage_misses: stage_tally.misses(),
    };
    ScheduledRun { resolved, stats }
}

/// Builds the [`StudyCell`] for one grid cell from its resolved result.
fn make_cell(job: &Job, key: JobKey, result: &Arc<JobResult>, from_cache: bool) -> StudyCell {
    StudyCell {
        spec: job.spec.name().to_string(),
        latency: job.latency,
        adder_arch: job.options.adder_arch,
        balance: job.options.balance,
        verify_vectors: job.options.verify_vectors,
        key,
        from_cache,
        result: Arc::clone(result),
    }
}

/// Runs one study request on the scheduler and writes its response (and,
/// when streaming, a cell frame per grid cell as results resolve).
fn run_study_request(
    state: &Arc<ServerState>,
    study: &Study,
    stream: bool,
    req: u64,
    peer: &str,
    writer: &Mutex<TcpStream>,
) {
    let grid = study.dedup();
    // Grid cells per key, in grid order: the streaming path fans each
    // resolved key back out to every cell it covers, first occurrence
    // carrying the hit flag and the rest marked as in-grid duplicates —
    // the same marking `assemble` gives the final report.
    let mut cells_of_key: HashMap<JobKey, Vec<usize>> = HashMap::new();
    if stream {
        for (index, key) in grid.keys.iter().enumerate() {
            cells_of_key.entry(*key).or_default().push(index);
        }
    }
    let mut frames_ok = true;
    let run = run_scheduled(state, &grid.distinct, |key, result, hit| {
        if !stream || !frames_ok {
            return;
        }
        for (occurrence, &index) in cells_of_key.get(key).into_iter().flatten().enumerate() {
            let cell = make_cell(&grid.cells[index], *key, result, hit || occurrence > 0);
            let cell = serde_json::to_string(&cell).expect("study cell serializes");
            let frame = format!("{{\"cell\":{cell},\"index\":{index}}}");
            if write_line(writer, &frame).is_err() {
                // The client stopped reading; stop framing but finish the
                // computation — it warms the cache for everyone else.
                frames_ok = false;
                break;
            }
        }
    });
    let resolved = run.resolved;
    let cells = crate::study::assemble(grid.cells, grid.keys, |key| {
        let (result, hit) = &resolved[&key];
        (Arc::clone(result), *hit)
    });
    let report = StudyReport { cells, stats: run.stats };
    state.requests.fetch_add(1, Ordering::SeqCst);
    state.class_study.fetch_add(1, Ordering::SeqCst);
    trace::stderr_log("serve", "report", |a| {
        a.num("req", req)
            .str("peer", peer)
            .num("cells", report.cells.len() as u64)
            .num("ok", report.successes().count() as u64)
            .num("failed", report.failures().count() as u64)
            .num("cache_hits", report.stats.cache_hits)
            .num("cache_misses", report.stats.cache_misses)
            .str("summary", &report.summary());
    });
    let service = serde_json::to_string(&state.service_stats()).expect("service stats serialize");
    // `report` goes last so clients can slice the exact single-process
    // StudyReport bytes out of the line; see the module docs.
    let line = format!("{{\"ok\":true,\"service\":{service},\"report\":{}}}", report.to_json());
    if write_line(writer, &line).is_err() {
        // The client vanished mid-run. Its study already ran (and warmed
        // the cache for everyone else); only the reply is lost.
        trace::stderr_log("serve", "client_gone", |a| {
            a.num("req", req).str("peer", peer);
        });
    }
}

/// Runs one shard request's job range on the scheduler and writes the
/// batch-statistics reply; every success spills into the shared store.
fn run_shard_request(
    state: &Arc<ServerState>,
    study: &Study,
    index: usize,
    count: usize,
    req: u64,
    peer: &str,
    writer: &Mutex<TcpStream>,
) {
    let jobs = shard::shard_slice(study, index, count);
    let run = run_scheduled(state, &jobs, |_, _, _| {});
    let stats = run.stats;
    state.requests.fetch_add(1, Ordering::SeqCst);
    state.class_shard.fetch_add(1, Ordering::SeqCst);
    trace::stderr_log("serve", "shard", |a| {
        a.num("req", req)
            .str("peer", peer)
            .num("shard_index", index as u64)
            .num("shard_count", count as u64)
            .num("jobs", stats.jobs)
            .num("cache_hits", stats.cache_hits)
            .num("cache_misses", stats.cache_misses);
    });
    let service = serde_json::to_string(&state.service_stats()).expect("service stats serialize");
    let stats = serde_json::to_string(&stats).expect("engine stats serialize");
    let line = format!(
        "{{\"ok\":true,\"shard_index\":{index},\"shard_count\":{count},\
         \"service\":{service},\"stats\":{stats}}}"
    );
    if write_line(writer, &line).is_err() {
        trace::stderr_log("serve", "client_gone", |a| {
            a.num("req", req).str("peer", peer);
        });
    }
}

/// Writes one response line. The mutex makes concurrent runner and
/// reader writes line-atomic — frames and responses interleave only at
/// line boundaries.
fn write_line(writer: &Mutex<TcpStream>, line: &str) -> io::Result<()> {
    let mut writer = writer.lock().unwrap_or_else(PoisonError::into_inner);
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn respond_error(writer: &Mutex<TcpStream>, message: &str) -> io::Result<()> {
    let escaped = serde_json::to_string(message)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_line(writer, &format!("{{\"ok\":false,\"error\":{escaped}}}"))
}
