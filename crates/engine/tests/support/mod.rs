//! In-process server harness for the network suites: a fleet of real
//! [`Server`]s on port-0 loopback listeners sharing one cache directory,
//! plus fault endpoints that refuse, drop, garble or stall — each a
//! deterministic stand-in for one way a network dispatch dies. No sleeps
//! anywhere: every scenario synchronizes on connection state (accept,
//! EOF) or on the client's own bounded timeout.

use bittrans_engine::{ServeOptions, Server, ServiceStats};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::thread::JoinHandle;

/// A fleet of real servers, all warm engines over the same store — the
/// healthy endpoints remote-shard dispatches land on.
pub struct Fleet {
    /// `host:port` of each server, in start order.
    pub endpoints: Vec<String>,
    handles: Vec<JoinHandle<ServiceStats>>,
}

impl Fleet {
    /// Binds and runs `count` servers on free loopback ports, each with
    /// `workers` engine threads and `cache_dir` as its store.
    pub fn start(count: usize, cache_dir: &Path, workers: usize) -> Fleet {
        let mut endpoints = Vec::with_capacity(count);
        let mut handles = Vec::with_capacity(count);
        for _ in 0..count {
            let server = Server::bind(&ServeOptions {
                addr: "127.0.0.1:0".to_string(),
                workers: Some(workers),
                cache_dir: Some(cache_dir.to_path_buf()),
                ..ServeOptions::default()
            })
            .expect("bind loopback server");
            endpoints.push(server.local_addr().to_string());
            handles.push(std::thread::spawn(move || server.run().expect("server run")));
        }
        Fleet { endpoints, handles }
    }

    /// Sends every server a shutdown request and joins it, returning the
    /// per-server lifetime statistics in start order.
    pub fn shutdown(self) -> Vec<ServiceStats> {
        for endpoint in &self.endpoints {
            let mut stream = TcpStream::connect(endpoint).expect("connect for shutdown");
            stream.write_all(b"{\"shutdown\": true}\n").expect("send shutdown");
            let mut line = String::new();
            let _ = BufReader::new(stream).read_line(&mut line);
        }
        self.handles.into_iter().map(|handle| handle.join().expect("server thread")).collect()
    }
}

/// An address where nothing listens — dead on arrival: bound to resolve
/// a free port, then dropped before anyone can connect.
pub fn dead_endpoint() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind probe listener");
    let addr = listener.local_addr().expect("probe addr").to_string();
    drop(listener);
    addr
}

/// How a fault endpoint mistreats every connection after reading one
/// request line.
#[derive(Clone, Copy, Debug)]
pub enum Fault {
    /// Write half a plausible response — no newline — then close: the
    /// client sees a truncated line (connection dropped mid-response).
    DropMidResponse,
    /// Write a complete line that is not JSON.
    Garbage,
    /// Accept, read the request, and never write a byte: the client's
    /// read deadline must fire. The connection is held open until the
    /// client gives up and closes it (EOF), so the scenario needs no
    /// sleeps to stay deterministic.
    Stall,
}

/// Starts a listener that serves `fault` to every connection it ever
/// receives. The accept loop runs on a detached thread that dies with
/// the test process; the returned address is the only handle needed.
pub fn fault_endpoint(fault: Fault) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fault listener");
    let addr = listener.local_addr().expect("fault addr").to_string();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().expect("clone fault stream"));
                let mut request = String::new();
                let _ = reader.read_line(&mut request);
                match fault {
                    Fault::DropMidResponse => {
                        let _ = stream.write_all(b"{\"ok\":true,\"service\":{\"requests\":1");
                        let _ = stream.flush();
                        // Dropped here: the close lands before the newline.
                    }
                    Fault::Garbage => {
                        let _ = stream.write_all(b"%% not json at all %%\n");
                        let _ = stream.flush();
                    }
                    Fault::Stall => {
                        let mut sink = [0u8; 64];
                        while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
                    }
                }
            });
        }
    });
    addr
}
