//! Property-style coverage of `JobKey` canonicalization: rewrites of a
//! specification source that only touch formatting — whitespace runs, line
//! comments, indentation, trailing newlines — must hash to the same key,
//! while semantic edits — another operator, another width, another input
//! name, another latency or option set — must not.

use bittrans_core::CompareOptions;
use bittrans_engine::Job;
use bittrans_ir::Spec;
use bittrans_rtl::AdderArch;
use proptest::prelude::*;

/// A tiny deterministic generator (xorshift64*) so the perturbations are
/// reproducible from the proptest-drawn seed alone.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random but always-parseable specification source: a chain of additive
/// operations over a few 16-bit inputs, in the textual DSL.
fn random_source(seed: u64) -> String {
    let mut g = Gen::new(seed);
    let inputs = 2 + g.pick(3) as usize;
    let ops = 3 + g.pick(5) as usize;
    let mut src = format!("spec p{seed} {{ ");
    for i in 0..inputs {
        src.push_str(&format!("input a{i}: u16; "));
    }
    let mut names: Vec<String> = (0..inputs).map(|i| format!("a{i}")).collect();
    for t in 0..ops {
        let lhs = &names[g.pick(names.len() as u64) as usize];
        let rhs = &names[g.pick(names.len() as u64) as usize];
        let expr = match g.pick(3) {
            0 => format!("{lhs} + {rhs}"),
            1 => format!("{lhs} - {rhs}"),
            _ => format!("max({lhs}, {rhs})"),
        };
        src.push_str(&format!("t{t}: u16 = {expr}; "));
        names.push(format!("t{t}"));
    }
    src.push_str(&format!("output t{}; }}", ops - 1));
    src
}

/// Rewrites `source` without changing its meaning: inflates whitespace,
/// injects line comments after separators, varies the trailing newline.
fn formatting_noise(source: &str, seed: u64) -> String {
    let mut g = Gen::new(seed);
    let mut out = String::new();
    for c in source.chars() {
        match c {
            ' ' => match g.pick(4) {
                0 => out.push_str("  "),
                1 => out.push_str("\n    "),
                2 => out.push('\t'),
                _ => out.push(' '),
            },
            ';' | '{' => {
                out.push(c);
                if g.pick(3) == 0 {
                    out.push_str(&format!(" // noise {}\n", g.pick(1000)));
                } else {
                    out.push('\n');
                }
            }
            c => out.push(c),
        }
    }
    if g.pick(2) == 0 {
        out.push('\n');
    }
    out
}

fn key_of(source: &str, latency: u32, options: CompareOptions) -> bittrans_engine::JobKey {
    let spec = Spec::parse(source).unwrap_or_else(|e| panic!("parse failed: {e}\n{source}"));
    Job::with_options(spec, latency, options).key()
}

/// Pins the canonical `JobKey` encoding to fixed 32-hex strings. Any edit
/// to the key material — the spec canonical form, the field encoding in
/// `key::canonical_options`, the FNV lanes — moves these digests and must
/// fail here loudly instead of silently cold-starting every persisted
/// cache in the field. If a change is *intentional* (new keyed content),
/// update the golden values and call out the one-time cache invalidation
/// in the change log.
#[test]
fn golden_key_pins_canonical_encoding() {
    let source = "spec golden { input a: u8; input b: u8; s: u8 = a + b; output s; }";
    let golden = key_of(source, 3, CompareOptions::default());
    assert_eq!(golden.to_string(), "3d3ddb021a68639c330a44500400e6c9");

    let options = CompareOptions {
        adder_arch: AdderArch::CarrySelect,
        balance: false,
        verify_vectors: 7,
        ..CompareOptions::default()
    };
    let tuned = key_of(source, 5, options);
    assert_eq!(tuned.to_string(), "d4ca6b501b77e3e03bcebc99c63e477d");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Formatting-only rewrites never move the key.
    #[test]
    fn prop_formatting_noise_preserves_key(seed in 0u64..5000, noise in 0u64..5000) {
        let source = random_source(seed);
        let rewritten = formatting_noise(&source, noise);
        prop_assert_ne!(&source, &rewritten);
        let options = CompareOptions::default();
        prop_assert_eq!(key_of(&source, 3, options), key_of(&rewritten, 3, options));
    }

    /// Renaming an internal temporary is alpha-renaming: the canonical
    /// form names values positionally, so the key stays put.
    #[test]
    fn prop_internal_rename_preserves_key(seed in 0u64..5000) {
        let source = random_source(seed);
        let renamed = source.replace("t0", "internal_zero");
        let options = CompareOptions::default();
        prop_assert_eq!(key_of(&source, 3, options), key_of(&renamed, 3, options));
    }

    /// Swapping one operator is a semantic edit: the key must move.
    #[test]
    fn prop_operator_edit_changes_key(seed in 0u64..5000) {
        let source = random_source(seed);
        let edited = if source.contains(" + ") {
            source.replacen(" + ", " - ", 1)
        } else if source.contains(" - ") {
            source.replacen(" - ", " + ", 1)
        } else {
            source.replacen("max(", "min(", 1)
        };
        prop_assert_ne!(&source, &edited);
        let options = CompareOptions::default();
        prop_assert_ne!(key_of(&source, 3, options), key_of(&edited, 3, options));
    }

    /// Narrowing an input is a semantic edit: the key must move.
    #[test]
    fn prop_width_edit_changes_key(seed in 0u64..5000) {
        let source = random_source(seed);
        let edited = source.replacen("input a0: u16", "input a0: u12", 1);
        prop_assert_ne!(&source, &edited);
        let options = CompareOptions::default();
        prop_assert_ne!(key_of(&source, 3, options), key_of(&edited, 3, options));
    }

    /// Latency and every options axis are part of the key.
    #[test]
    fn prop_latency_and_options_are_keyed(seed in 0u64..5000, latency in 1u32..8) {
        let source = random_source(seed);
        let base = CompareOptions::default();
        let k = key_of(&source, latency, base);
        prop_assert_ne!(k, key_of(&source, latency + 1, base));
        prop_assert_ne!(
            k,
            key_of(&source, latency, CompareOptions { balance: !base.balance, ..base })
        );
        prop_assert_ne!(
            k,
            key_of(
                &source,
                latency,
                CompareOptions { adder_arch: AdderArch::CarrySelect, ..base }
            )
        );
        prop_assert_ne!(
            k,
            key_of(&source, latency, CompareOptions { verify_vectors: 7, ..base })
        );
    }
}
