//! Integration coverage of the `Study` design-space-exploration front end:
//! grids must agree with the serial entry points they replace, deduplicate
//! identical coordinates, and serialize into the documented JSON shape.

use bittrans_core::{compare, latency_sweep, CompareOptions};
use bittrans_engine::{Engine, EngineOptions, Study};
use bittrans_ir::Spec;
use bittrans_rtl::AdderArch;

fn three_adds() -> Spec {
    Spec::parse(
        "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
          C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
    )
    .unwrap()
}

fn mac() -> Spec {
    Spec::parse(
        "spec mac { input a: i8; input b: i8; input c1: u8;
          p: i16 = a * b; q: i16 = p - c1; m: i16 = max(q, p); output m; }",
    )
    .unwrap()
}

/// Acceptance: a single-latency-axis study reproduces the serial
/// `latency_sweep` points exactly — same latencies, bit-identical cycle
/// lengths, same order.
#[test]
fn single_axis_study_matches_serial_latency_sweep() {
    let spec = three_adds();
    let options = CompareOptions::default();
    let serial = latency_sweep(&spec, 2..=9, &options).expect("serial sweep");
    for workers in [1, 4] {
        let engine = Engine::new(EngineOptions { workers: Some(workers), ..Default::default() });
        let report =
            Study::single(spec.clone()).latencies(2..=9).base_options(options).run(&engine);
        let points = report.sweep_points();
        assert_eq!(serial.len(), points.len(), "workers={workers}");
        for (s, p) in serial.iter().zip(&points) {
            assert_eq!(s.latency, p.latency);
            assert_eq!(s.original_ns.to_bits(), p.original_ns.to_bits());
            assert_eq!(s.optimized_ns.to_bits(), p.optimized_ns.to_bits());
        }
    }
}

/// Every cell of a multi-axis grid agrees with a direct `compare` call at
/// the cell's coordinates.
#[test]
fn grid_cells_match_direct_compare() {
    let engine = Engine::default();
    let report = Study::over([three_adds(), mac()])
        .latencies([3, 4])
        .adder_archs([AdderArch::RippleCarry, AdderArch::CarryLookahead])
        .verify_vectors([0])
        .run(&engine);
    assert_eq!(report.cells.len(), 2 * 2 * 2);
    for cell in &report.cells {
        let spec = if cell.spec == "ex" { three_adds() } else { mac() };
        let options = CompareOptions {
            adder_arch: cell.adder_arch,
            balance: cell.balance,
            verify_vectors: cell.verify_vectors,
            ..Default::default()
        };
        let direct = compare(&spec, cell.latency, &options).unwrap();
        let got = cell.comparison().unwrap();
        assert_eq!(got.optimized.cycle_ns.to_bits(), direct.optimized.cycle_ns.to_bits());
        assert_eq!(got.original.cycle_ns.to_bits(), direct.original.cycle_ns.to_bits());
        assert_eq!(got.optimized.area.total(), direct.optimized.area.total());
    }
}

/// Axis values that collapse to the same job key are computed once and the
/// study is cache-transparent across runs.
#[test]
fn studies_share_the_engine_cache() {
    let engine = Engine::default();
    let study = Study::single(three_adds()).latencies(3..=6).verify_vectors([0]);
    let first = study.run(&engine);
    assert_eq!(first.stats.cache_misses, 4);
    assert_eq!(first.stats.cache_hits, 0);
    let second = study.run(&engine);
    assert_eq!(second.stats.cache_hits, 4);
    assert_eq!(second.stats.hit_rate(), 100.0);
    assert!(second.cells.iter().all(|c| c.from_cache));

    // A wider study over the same spec pays only for the new coordinates.
    let wider = Study::single(three_adds()).latencies(3..=8).verify_vectors([0]).run(&engine);
    assert_eq!(wider.stats.cache_hits, 4);
    assert_eq!(wider.stats.cache_misses, 2);
}

/// The adder-architecture axis really varies the cost model: carry
/// lookahead pays its ~1.6× functional-unit area premium over ripple carry.
#[test]
fn adder_axis_changes_results() {
    let engine = Engine::default();
    let report = Study::single(three_adds())
        .latencies([3])
        .adder_archs([AdderArch::RippleCarry, AdderArch::CarryLookahead])
        .verify_vectors([0])
        .run(&engine);
    let areas: Vec<f64> =
        report.cells.iter().map(|c| c.comparison().unwrap().original.area.fu).collect();
    assert!(areas[1] > areas[0], "CLA FU area {} !> RCA FU area {}", areas[1], areas[0]);
}

/// The JSON rendering parses back and labels every axis coordinate.
#[test]
fn study_json_has_axis_coordinates() {
    let engine = Engine::default();
    let report = Study::single(three_adds())
        .latencies([3, 4])
        .balance_both()
        .verify_vectors([0])
        .run(&engine);
    let v = serde_json::from_str(&report.to_json_pretty()).expect("valid JSON");
    let cells = v.get("cells").and_then(|c| c.as_array()).expect("cells");
    assert_eq!(cells.len(), 4);
    for cell in cells {
        assert_eq!(cell.get("spec").and_then(|s| s.as_str()), Some("ex"));
        assert!(cell.get("latency").and_then(|l| l.as_u64()).is_some());
        assert!(cell.get("balance").and_then(|b| b.as_bool()).is_some());
        assert_eq!(cell.get("ok").and_then(|o| o.as_bool()), Some(true));
        assert_eq!(cell.get("key").and_then(|k| k.as_str()).map(str::len), Some(32));
    }
    let stats = v.get("stats").expect("stats");
    assert_eq!(stats.get("jobs").and_then(|j| j.as_u64()), Some(4));
    assert!(stats.get("hit_rate_pct").and_then(|h| h.as_f64()).is_some());
}

/// Acceptance for the staged pipeline: a full Study grid run through the
/// stage-cached engine serializes byte-identically to the same grid run
/// through the monolithic `compare` path (caching disabled), once the run
/// shape is normalized away (`cache_entries` included — a disabled cache
/// legitimately cannot accrue resident entries). Every result byte
/// (cycle lengths, areas, op counts, keys, cell order) must agree.
#[test]
fn staged_grid_report_matches_monolithic_byte_for_byte() {
    use bittrans_engine::report::normalize_run_shape;

    let study = Study::over([three_adds(), mac()])
        .latencies([3, 4, 5])
        .adder_archs([AdderArch::RippleCarry, AdderArch::CarryLookahead])
        .verify_vectors([8]);
    let staged = study.run(&Engine::default());
    let monolithic = study.run(&Engine::new(EngineOptions { cache: false, ..Default::default() }));

    // The staged run actually exercised the stage memo; the monolithic
    // run never touched it.
    assert!(staged.stats.stage_misses > 0);
    assert!(staged.stats.stage_hits > 0, "grid axes must share stage prefixes");
    assert_eq!(monolithic.stats.stage_hits + monolithic.stats.stage_misses, 0);

    let a = normalize_run_shape(&staged.to_json());
    let b = normalize_run_shape(&monolithic.to_json());
    assert_eq!(a, b, "staged and monolithic grid reports must be byte-identical");
}
