//! Batch determinism: the same batch run twice produces byte-identical
//! results, with the second run served entirely from the cache.

use bittrans_benchmarks as bm;
use bittrans_engine::{Engine, EngineOptions, Job};

/// One job per (benchmark, paper latency) across Tables II and III.
fn suite_jobs() -> Vec<Job> {
    bm::table2_benchmarks()
        .into_iter()
        .chain(bm::table3_benchmarks())
        .flat_map(|b| {
            b.latencies.clone().into_iter().map(move |latency| Job::new(b.spec.clone(), latency))
        })
        .collect()
}

/// Renders a batch's outcomes to a canonical byte string.
fn render(report: &bittrans_engine::BatchReport) -> String {
    report.outcomes.iter().map(|o| format!("{} λ={} {:?}\n", o.name, o.latency, o.result)).collect()
}

#[test]
fn repeated_batch_is_byte_identical_and_fully_cached() {
    let engine = Engine::default();
    let jobs = suite_jobs();
    let total = jobs.len() as u64;

    let first = engine.run(jobs.clone());
    assert_eq!(first.stats.cache_hits, 0, "fresh engine must start cold");
    assert_eq!(first.stats.cache_misses, total);

    let second = engine.run(jobs);
    assert_eq!(second.stats.cache_hits, total, "second run must be pure cache traffic");
    assert_eq!(second.stats.cache_misses, 0);
    assert_eq!(second.stats.hit_rate(), 100.0);
    assert!(second.outcomes.iter().all(|o| o.from_cache));

    assert_eq!(render(&first), render(&second), "cached results must be byte-identical");
}

#[test]
fn worker_count_does_not_change_results() {
    let jobs = suite_jobs();
    let serial = Engine::new(EngineOptions { workers: Some(1), ..Default::default() });
    let parallel = Engine::new(EngineOptions { workers: Some(8), ..Default::default() });
    let a = serial.run(jobs.clone());
    let b = parallel.run(jobs);
    assert_eq!(render(&a), render(&b), "1-worker and 8-worker batches must agree");
}

#[test]
fn respecifying_identical_source_still_hits() {
    // The cache is content-addressed: a spec re-parsed from differently
    // formatted source is the same job.
    let engine = Engine::default();
    let terse =
        bittrans_ir::Spec::parse("spec s { input a: u8; input b: u8; output o = a + b; }").unwrap();
    let airy = bittrans_ir::Spec::parse(
        "spec s {\n    input a: u8;\n    input b: u8;\n    output o = a + b;\n}\n",
    )
    .unwrap();
    engine.run(vec![Job::new(terse, 2)]);
    let report = engine.run(vec![Job::new(airy, 2)]);
    assert_eq!(report.stats.cache_hits, 1);
}
