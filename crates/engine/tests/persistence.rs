//! Cross-process cache persistence: two engines sharing a cache directory
//! model two CLI/CI invocations — the second must be served from disk with
//! bit-identical results, and duplicate/infeasible jobs must keep their
//! accounting semantics along the way.

use bittrans_engine::{Engine, EngineOptions, Job, Study};
use bittrans_ir::Spec;
use std::path::PathBuf;

fn three_adds() -> Spec {
    Spec::parse(
        "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
          C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bittrans_engine_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Result files in the cache dir (32-hex-stem `.json`), excluding the
/// `index.json` manifest.
fn entry_count(dir: &PathBuf) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter(|e| {
            let name = e.as_ref().unwrap().file_name().to_string_lossy().into_owned();
            name.len() == 37 && name.ends_with(".json")
        })
        .count()
}

#[test]
fn warm_cache_dir_serves_a_fresh_engine_entirely_from_disk() {
    let dir = temp_dir("warm");
    let spec = three_adds();
    let study = Study::single(spec).latencies(2..=5).verify_vectors([0]);

    // First "process": cold cache, all misses, entries spilled to disk.
    let cold = Engine::default().with_cache_dir(&dir).unwrap();
    let first = study.run(&cold);
    assert_eq!(first.stats.cache_misses, 4);
    assert_eq!(entry_count(&dir), 4);
    // The run also left an index manifest behind.
    assert!(dir.join("index.json").exists());

    // Second "process": a fresh engine preloads the directory and reports
    // a 100 % hit rate with bit-identical results.
    let warm = Engine::default().with_cache_dir(&dir).unwrap();
    let second = study.run(&warm);
    assert_eq!(second.stats.cache_hits, 4);
    assert_eq!(second.stats.cache_misses, 0);
    assert_eq!(second.stats.hit_rate(), 100.0);
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert!(b.from_cache);
        let (ca, cb) = (a.comparison().unwrap(), b.comparison().unwrap());
        assert_eq!(ca.optimized.cycle_ns.to_bits(), cb.optimized.cycle_ns.to_bits());
        assert_eq!(ca.original.cycle_ns.to_bits(), cb.original.cycle_ns.to_bits());
        assert_eq!(ca.optimized.area.total(), cb.optimized.area.total());
        assert_eq!(ca.original.op_count, cb.original.op_count);
    }
}

#[test]
fn errors_are_not_persisted_but_successes_are() {
    let dir = temp_dir("errors");
    let spec = three_adds();
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    let report = engine.run(vec![Job::new(spec.clone(), 0), Job::new(spec, 3)]);
    assert!(report.outcomes[0].result.is_err());
    assert!(report.outcomes[1].result.is_ok());
    // Only the feasible job reached the directory.
    assert_eq!(entry_count(&dir), 1);

    // A fresh engine re-pays the error (miss) but not the success (hit).
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    let report = engine.run(vec![
        Job::new(three_adds(), 0),
        Job::new(three_adds(), 3),
        Job::new(three_adds(), 3),
    ]);
    assert_eq!(report.stats.cache_misses, 1);
    // One hit from disk plus one in-batch duplicate hit.
    assert_eq!(report.stats.cache_hits, 2);
}

#[test]
fn corrupt_entries_are_recomputed_and_repaired() {
    let dir = temp_dir("repair");
    let spec = three_adds();
    let jobs = vec![Job::new(spec, 3)];
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    engine.run(jobs.clone());
    // A result entry: top-level .json, not the manifest, not the
    // `stages/` token subdirectory.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.is_file()
                && p.extension().is_some_and(|x| x == "json")
                && p.file_name().is_some_and(|n| n != "index.json")
        })
        .unwrap();
    std::fs::write(&entry, "definitely not json").unwrap();

    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    let report = engine.run(jobs);
    // The damaged entry is invisible: recomputed as a miss...
    assert_eq!(report.stats.cache_misses, 1);
    assert!(report.outcomes[0].result.is_ok());
    // ...and the spill has overwritten it with valid JSON again.
    let text = std::fs::read_to_string(&entry).unwrap();
    assert!(text.starts_with('{'), "{text}");
}

#[test]
fn disabled_cache_never_touches_the_directory() {
    let dir = temp_dir("disabled");
    let engine = Engine::new(EngineOptions { cache: false, ..Default::default() })
        .with_cache_dir(&dir)
        .unwrap();
    engine.run(vec![Job::new(three_adds(), 3)]);
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
}
