//! The disabled trace collector's hot path allocates nothing.
//!
//! Every instrumentation point in the engine costs one relaxed atomic
//! load when no collector is installed — `span`/`span_attrs` hand back an
//! inert guard, `event` returns before running its attribute closure, and
//! nothing reads the clock. This binary pins that contract with a
//! counting global allocator: it is the only test here, because the
//! counter is process-wide and a parallel sibling would pollute it.

use bittrans_engine::trace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting allocations.
struct Counting;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

#[test]
fn disabled_collector_adds_zero_allocations() {
    trace::uninstall();
    assert!(!trace::enabled());

    // Warm up lazily initialized state (thread-local stack, test harness
    // buffers) outside the measured window.
    for _ in 0..8 {
        let _span = trace::span_attrs("warmup", |a| {
            a.num("i", 1).str("k", "v");
        });
        trace::event("warmup", |a| {
            a.flag("on", true);
        });
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1_000u64 {
        let outer = trace::span("hot.outer");
        let _inner = trace::span_under(outer.id(), "hot.inner", |a| {
            // Never runs while disabled; allocating here must be free.
            a.str("key", &format!("k{i}"));
        });
        trace::event("hot.event", |a| {
            a.num("i", i).float("f", 0.5).str("s", "text");
        });
        let _ = trace::current_span_id();
        trace::stage("hot", std::time::Duration::from_nanos(i));
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled span/event/stage calls must not allocate ({} allocations leaked)",
        after - before
    );
}
