//! Trace collector correctness through the public engine API:
//!
//! * under a full worker pool every span closes exactly once, `exec.task`
//!   spans parent to the batch's `engine.run` span across the spawn
//!   boundary, and stage child spans parent to their task;
//! * a file sink holds valid one-object-per-line JSON with strictly
//!   increasing `seq` and monotone `ts_ns`;
//! * per-job provenance events (`memory` / `disk` / `duplicate` /
//!   `computed`) reconcile exactly with [`EngineStats`] hit/miss counters
//!   across a cold run, a warm in-memory run and a fresh-process disk run.
//!
//! The collector is process-global, so every test serializes on one lock
//! (mirroring the unit tests inside `trace.rs` — cargo runs separate test
//! binaries in separate processes, so only this file needs it).
//!
//! [`EngineStats`]: bittrans_engine::EngineStats

use bittrans_core::CompareOptions;
use bittrans_engine::{trace, Engine, EngineOptions, Job};
use bittrans_ir::Spec;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A three-add chain at `width` bits — same shape as the paper's running
/// example, distinct content key per width.
fn chain(width: u32) -> Spec {
    Spec::parse(&format!(
        "spec t{width} {{ input A: u{width}; input B: u{width}; input D: u{width}; \
         input F: u{width}; C: u{width} = A + B; E: u{width} = C + D; \
         G: u{width} = E + F; output G; }}"
    ))
    .expect("chain spec parses")
}

fn job(width: u32, latency: u32) -> Job {
    Job::with_options(
        chain(width),
        latency,
        CompareOptions { verify_vectors: 16, ..Default::default() },
    )
}

fn parse_lines(lines: &[String]) -> Vec<serde_json::Value> {
    lines.iter().map(|l| serde_json::from_str(l).expect("trace line is valid JSON")).collect()
}

fn str_of<'v>(v: &'v serde_json::Value, key: &str) -> Option<&'v str> {
    v.get(key).and_then(serde_json::Value::as_str)
}

fn num_of(v: &serde_json::Value, key: &str) -> Option<u64> {
    v.get(key).and_then(serde_json::Value::as_u64)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bittrans_trace_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn spans_nest_and_close_exactly_once_under_a_full_worker_pool() {
    let _guard = locked();
    trace::uninstall();
    trace::install_memory();

    let engine = Engine::new(EngineOptions { workers: Some(4), cache: true });
    // Six distinct jobs saturate the four workers; two duplicates ride
    // along to exercise the non-computing classification path.
    let mut jobs: Vec<Job> = (0..6).map(|i| job(8 + i, 3)).collect();
    jobs.push(job(8, 3));
    jobs.push(job(9, 3));
    let report = engine.run(jobs);
    assert_eq!(report.stats.cache_misses, 6);
    assert_eq!(report.stats.cache_hits, 2);

    let lines = trace::drain();
    trace::uninstall();
    let parsed = parse_lines(&lines);

    let spans: Vec<&serde_json::Value> =
        parsed.iter().filter(|v| str_of(v, "kind") == Some("span")).collect();
    let mut ids = HashSet::new();
    for span in &spans {
        let id = num_of(span, "id").expect("span has an id");
        assert!(ids.insert(id), "span id {id} emitted more than once: {span:?}");
        assert!(num_of(span, "dur_ns").is_some(), "span missing dur_ns: {span:?}");
    }

    let run_spans: Vec<&&serde_json::Value> =
        spans.iter().filter(|v| str_of(v, "name") == Some("engine.run")).collect();
    assert_eq!(run_spans.len(), 1, "one batch, one engine.run span");
    let run_id = num_of(run_spans[0], "id").unwrap();
    assert_eq!(num_of(run_spans[0], "jobs"), Some(8));

    let task_spans: Vec<&&serde_json::Value> =
        spans.iter().filter(|v| str_of(v, "name") == Some("exec.task")).collect();
    assert_eq!(task_spans.len(), 6, "one exec.task per computed job");
    let task_ids: HashSet<u64> = task_spans
        .iter()
        .map(|v| {
            assert_eq!(
                num_of(v, "parent"),
                Some(run_id),
                "exec.task must parent to engine.run across the spawn boundary"
            );
            assert!(num_of(v, "queue_ns").is_some(), "exec.task missing queue_ns: {v:?}");
            num_of(v, "id").unwrap()
        })
        .collect();

    // The core pipeline's stage observer emits child spans under the task
    // that ran the stage — never orphaned, never under the batch root.
    let stage_spans: Vec<&&serde_json::Value> = spans
        .iter()
        .filter(|v| str_of(v, "name").is_some_and(|n| n.starts_with("stage.")))
        .collect();
    assert!(!stage_spans.is_empty(), "pipeline stages must appear as child spans");
    for stage in &stage_spans {
        let parent = num_of(stage, "parent").unwrap();
        assert!(task_ids.contains(&parent), "stage span not under any exec.task: {stage:?}");
    }

    // Every parent reference resolves to an emitted span (or the root).
    for v in &parsed {
        let parent = num_of(v, "parent").expect("every line carries a parent");
        assert!(parent == 0 || ids.contains(&parent), "dangling parent id: {v:?}");
    }
}

#[test]
fn file_sink_holds_valid_jsonl_with_monotone_stamps() {
    let _guard = locked();
    trace::uninstall();
    let dir = scratch("jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    trace::install_file(&path);

    let engine = Engine::new(EngineOptions { workers: Some(2), cache: true });
    engine.run((0..4).map(|i| job(8 + i, 2)).collect());
    trace::flush().expect("flush writes the sink file");
    trace::uninstall();

    let text = std::fs::read_to_string(&path).unwrap();
    let mut last_seq = 0u64;
    let mut last_ts = 0u64;
    let mut count = 0usize;
    for line in text.lines() {
        let v = serde_json::from_str(line).expect("every trace line parses as JSON");
        let seq = num_of(&v, "seq").expect("line has seq");
        let ts = num_of(&v, "ts_ns").expect("line has ts_ns");
        let kind = str_of(&v, "kind").expect("line has kind");
        assert!(kind == "span" || kind == "event", "unknown kind in {line}");
        assert!(!str_of(&v, "name").unwrap_or("").is_empty(), "empty name in {line}");
        assert!(seq > last_seq, "seq must strictly increase: {line}");
        assert!(ts >= last_ts, "ts_ns must be monotone along seq: {line}");
        last_seq = seq;
        last_ts = ts;
        count += 1;
    }
    assert!(count > 4, "a traced batch writes more than a handful of lines, got {count}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tallies `job` events by provenance from one drained trace.
fn provenance_counts(lines: &[String]) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for v in parse_lines(lines) {
        if str_of(&v, "kind") == Some("event") && str_of(&v, "name") == Some("job") {
            let provenance = str_of(&v, "provenance").expect("job event has provenance");
            *counts.entry(provenance.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn job_provenance_reconciles_with_engine_stats_across_all_tiers() {
    let _guard = locked();
    trace::uninstall();
    trace::install_memory();
    let dir = scratch("prov");

    let jobs = || -> Vec<Job> {
        let mut jobs: Vec<Job> = (0..5).map(|i| job(10 + i, 3)).collect();
        jobs.push(job(10, 3)); // duplicate inside the batch
        jobs
    };

    // Cold: everything computes except the in-batch duplicate.
    let first =
        Engine::new(EngineOptions::default()).with_cache_dir(&dir).expect("cache dir opens");
    let cold = first.run(jobs());
    let counts = provenance_counts(&trace::drain());
    assert_eq!(counts.get("computed").copied().unwrap_or(0), cold.stats.cache_misses);
    assert_eq!(counts.get("duplicate").copied().unwrap_or(0), cold.stats.cache_hits);
    assert_eq!(counts.get("memory"), None);
    assert_eq!(counts.get("disk"), None);

    // Warm, same engine: every job is a memory hit.
    let warm = first.run(jobs());
    let counts = provenance_counts(&trace::drain());
    assert_eq!(warm.stats.cache_misses, 0);
    assert_eq!(counts.get("memory").copied().unwrap_or(0), warm.stats.cache_hits);
    assert_eq!(counts.get("computed"), None);

    // Fresh engine over the same directory: hits promote from disk.
    drop(first);
    let second =
        Engine::new(EngineOptions::default()).with_cache_dir(&dir).expect("cache dir reopens");
    let disk = second.run(jobs());
    let counts = provenance_counts(&trace::drain());
    trace::uninstall();
    assert_eq!(disk.stats.cache_misses, 0);
    assert_eq!(disk.stats.jobs, disk.stats.cache_hits);
    // First occurrence of each key reads the disk entry; repeats within
    // the batch hit the promoted in-memory copy.
    let tiered = counts.get("disk").copied().unwrap_or(0)
        + counts.get("memory").copied().unwrap_or(0)
        + counts.get("duplicate").copied().unwrap_or(0);
    assert_eq!(tiered, disk.stats.cache_hits);
    assert!(counts.get("disk").copied().unwrap_or(0) >= 5, "distinct keys must read from disk");
    assert_eq!(counts.get("computed"), None);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Tallies `stage` events by provenance from one drained trace.
fn stage_counts(lines: &[String]) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for v in parse_lines(lines) {
        if str_of(&v, "kind") == Some("event") && str_of(&v, "name") == Some("stage") {
            let provenance = str_of(&v, "provenance").expect("stage event has provenance");
            *counts.entry(provenance.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

/// Acceptance for the stage memo: per-stage provenance events reconcile
/// *exactly* with the batch's `stage_hits` / `stage_misses` counters —
/// every memory or disk resolution is one hit event, every computed
/// resolution one miss event — and a warm batch, served at job
/// granularity, emits no stage events at all.
#[test]
fn stage_provenance_reconciles_with_engine_stats() {
    let _guard = locked();
    trace::uninstall();
    trace::install_memory();

    let engine = Engine::new(EngineOptions { workers: Some(2), cache: true });
    // A latency sweep over one spec: `extract` is λ-invariant, so the
    // cold batch itself shares it across the four points.
    let jobs: Vec<Job> = (2..=5).map(|latency| job(16, latency)).collect();
    let cold = engine.run(jobs.clone());
    let counts = stage_counts(&trace::drain());
    assert_eq!(counts.get("computed").copied().unwrap_or(0), cold.stats.stage_misses);
    assert_eq!(
        counts.get("memory").copied().unwrap_or(0) + counts.get("disk").copied().unwrap_or(0),
        cold.stats.stage_hits,
    );
    assert!(cold.stats.stage_hits >= 3, "λ-invariant extract must be shared: {:?}", cold.stats);
    assert!(cold.stats.stage_misses > 0);
    // No cache directory is attached, so nothing can resolve from disk.
    assert_eq!(counts.get("disk"), None);

    // Warm: every job is a memory hit at job granularity, so the stage
    // memo is never consulted — zero stage counters, zero stage events.
    let warm = engine.run(jobs);
    let counts = stage_counts(&trace::drain());
    trace::uninstall();
    assert_eq!(warm.stats.cache_hits, 4);
    assert_eq!(warm.stats.stage_hits + warm.stats.stage_misses, 0);
    assert!(counts.is_empty(), "a warm batch resolves no stages: {counts:?}");
}
