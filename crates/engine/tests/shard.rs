//! The sharding protocol, tested hermetically (no real `bittrans` binary):
//!
//! * **partitioning is total and disjoint** — property tests over random
//!   job lists and shard counts: every key lands in exactly one shard and
//!   the union of the shards is the input;
//! * **manifests roundtrip** — a worker rebuilt from `Manifest::to_json`
//!   derives the identical job slice;
//! * **the coordinator survives dead and lying workers** — with a worker
//!   binary that exits nonzero (`false`), exits zero without doing any
//!   work (`true`), or left only a partial shard behind (an in-process
//!   [`run_worker`] with an injected fault), the assembled report is
//!   bit-identical to the single-process run.

use bittrans_core::CompareOptions;
use bittrans_engine::shard::{
    partition, run_sharded, run_worker, Fault, LocalTransport, Manifest, ShardOptions,
    ShardedStudy, Transport,
};
use bittrans_engine::{Engine, JobKey, StudyReport};
use bittrans_rtl::AdderArch;
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;

/// A tiny deterministic generator (xorshift64*) so perturbations are
/// reproducible from the proptest-drawn seed alone.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random but always-parseable specification source: a chain of additive
/// operations over a few 16-bit inputs.
fn random_source(seed: u64) -> String {
    let mut g = Gen::new(seed);
    let inputs = 2 + g.pick(3) as usize;
    let ops = 2 + g.pick(4) as usize;
    let mut src = format!("spec p{seed} {{ ");
    for i in 0..inputs {
        src.push_str(&format!("input a{i}: u16; "));
    }
    let mut names: Vec<String> = (0..inputs).map(|i| format!("a{i}")).collect();
    for t in 0..ops {
        let lhs = &names[g.pick(names.len() as u64) as usize];
        let rhs = &names[g.pick(names.len() as u64) as usize];
        src.push_str(&format!("t{t}: u16 = {lhs} + {rhs}; "));
        names.push(format!("t{t}"));
    }
    src.push_str(&format!("output t{}; }}", ops - 1));
    src
}

/// A random study over `specs` sources and a random latency window.
fn random_study(seed: u64) -> ShardedStudy {
    let mut g = Gen::new(seed ^ 0xabcd);
    let sources: Vec<String> =
        (0..1 + g.pick(4)).map(|i| random_source(seed.wrapping_add(i * 7919))).collect();
    let lo = 1 + g.pick(4) as u32;
    let latencies: Vec<u32> = (lo..lo + 1 + g.pick(5) as u32).collect();
    ShardedStudy {
        sources,
        latencies,
        adder_archs: (g.pick(2) == 0)
            .then(|| vec![AdderArch::RippleCarry, AdderArch::CarryLookahead]),
        balance: (g.pick(2) == 0).then(|| vec![true, false]),
        verify_vectors: None,
        base: CompareOptions { verify_vectors: 0, ..Default::default() },
    }
}

fn manifest(study: &ShardedStudy, index: usize, count: usize, dir: &std::path::Path) -> Manifest {
    Manifest {
        study: study.clone(),
        shard_index: index,
        shard_count: count,
        threads: Some(1),
        cache_dir: dir.to_path_buf(),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bittrans_shard_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sorted_keys(study: &ShardedStudy) -> Vec<JobKey> {
    let mut keys: Vec<JobKey> =
        study.study().unwrap().distinct_jobs().iter().map(|j| j.key()).collect();
    keys.sort();
    keys
}

/// The per-cell JSON of a report — everything except the run-shape stats
/// (workers, elapsed), so two runs that computed identical results compare
/// equal byte for byte.
fn cells_json(report: &StudyReport) -> String {
    serde_json::to_string(&report.cells).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Index-range partitioning covers `0..len` exactly once for any
    /// length and shard count.
    #[test]
    fn prop_partition_is_total_and_disjoint(len in 0usize..4000, shards in 1usize..64) {
        let ranges = partition(len, shards);
        prop_assert_eq!(ranges.len(), shards);
        let mut covered = 0usize;
        let mut cursor = 0usize;
        for range in &ranges {
            prop_assert_eq!(range.start, cursor, "ranges must be contiguous");
            prop_assert!(range.end >= range.start);
            covered += range.len();
            cursor = range.end;
        }
        prop_assert_eq!(cursor, len);
        prop_assert_eq!(covered, len);
    }

    /// For random job lists and any K, every `JobKey` lands in exactly one
    /// shard and the union of the shards equals the deduplicated input.
    #[test]
    fn prop_shards_cover_every_key_exactly_once(seed in 0u64..500, shards in 1usize..9) {
        let study = random_study(seed);
        let dir = PathBuf::from("/nonexistent-unused");
        let all = sorted_keys(&study);
        let mut seen: Vec<JobKey> = Vec::new();
        let mut per_shard: Vec<HashSet<JobKey>> = Vec::new();
        for index in 0..shards {
            let jobs = manifest(&study, index, shards, &dir).jobs().unwrap();
            let keys: HashSet<JobKey> = jobs.iter().map(|j| j.key()).collect();
            prop_assert_eq!(keys.len(), jobs.len(), "a shard never repeats a key");
            seen.extend(keys.iter().copied());
            per_shard.push(keys);
        }
        // Disjoint: no key in two shards.
        for a in 0..per_shard.len() {
            for b in a + 1..per_shard.len() {
                prop_assert!(per_shard[a].is_disjoint(&per_shard[b]));
            }
        }
        // Total: the union is the deduplicated grid.
        seen.sort();
        prop_assert_eq!(seen, all);
    }

    /// A manifest shipped through JSON re-derives the identical job slice.
    #[test]
    fn prop_manifest_roundtrips_through_json(seed in 0u64..300, shards in 1usize..5) {
        let study = random_study(seed);
        let dir = PathBuf::from("/tmp/anywhere");
        for index in 0..shards {
            let original = manifest(&study, index, shards, &dir);
            let back = Manifest::from_json(&original.to_json()).unwrap();
            prop_assert_eq!(back.shard_index, index);
            prop_assert_eq!(back.shard_count, shards);
            prop_assert_eq!(back.threads, Some(1));
            prop_assert_eq!(&back.cache_dir, &dir);
            prop_assert_eq!(
                back.study.base.timing.delta_ns.to_bits(),
                study.base.timing.delta_ns.to_bits()
            );
            let a: Vec<JobKey> = original.jobs().unwrap().iter().map(|j| j.key()).collect();
            let b: Vec<JobKey> = back.jobs().unwrap().iter().map(|j| j.key()).collect();
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn manifest_rejects_garbage() {
    assert!(Manifest::from_json("not json").is_err());
    assert!(Manifest::from_json("{}").is_err());
    assert!(Manifest::from_json("{\"schema\": 999}").is_err());
    // The serve request reader defaults absent `latencies`/`base`, but a
    // manifest missing either is version skew or corruption — running a
    // default grid instead would persist results under the wrong study.
    let complete = manifest(&random_study(7), 0, 2, &PathBuf::from("/tmp/x")).to_json();
    for required in ["\"latencies\":", "\"base\":"] {
        let start = complete.find(required).unwrap();
        let renamed = format!(
            "{}\"dropped_{}",
            &complete[..start],
            &complete[start + 1..] // rename the field: value stays valid JSON
        );
        assert!(Manifest::from_json(&renamed).is_err(), "manifest without {required} was accepted");
    }
    // Out-of-range shard coordinates are caught at parse time.
    let study = random_study(1);
    let mut good = manifest(&study, 0, 2, &PathBuf::from("/tmp/x"));
    good.shard_index = 5;
    assert!(Manifest::from_json(&good.to_json()).is_err());
}

fn reference_report(study: &ShardedStudy) -> StudyReport {
    study.study().unwrap().run(&Engine::default())
}

fn options(worker_binary: &str, shards: usize) -> ShardOptions {
    ShardOptions {
        shards,
        transport: Transport::Local(LocalTransport {
            worker_binary: PathBuf::from(worker_binary),
            threads_per_worker: Some(1),
        }),
    }
}

#[test]
fn coordinator_recovers_when_every_worker_dies() {
    let study = random_study(42);
    let dir = temp_dir("all_dead");
    // `false` exits 1 immediately: every shard fails, nothing reaches the
    // store, and the coordinator must retry the full job list in-process.
    let run = run_sharded(&study, &dir, &options("false", 3)).unwrap();
    let distinct = study.study().unwrap().distinct_jobs().len();
    assert_eq!(run.failed.len(), run.shard_stats.len());
    assert!(run.shard_stats.iter().all(Option::is_none));
    assert_eq!(run.retried.len(), distinct);
    assert_eq!(run.merged.jobs, distinct as u64);
    assert_eq!(run.merged.cache_hits + run.merged.cache_misses, run.merged.jobs);
    // The report is still bit-identical to the single-process run.
    assert_eq!(cells_json(&run.report), cells_json(&reference_report(&study)));
    assert_eq!(run.report.stats.jobs, distinct as u64);
    assert_eq!(run.report.stats.cache_misses, distinct as u64);
    assert_eq!(run.report.stats.cache_hits, 0);
}

#[test]
fn coordinator_recovers_from_a_lying_worker() {
    let study = random_study(43);
    let dir = temp_dir("liar");
    // `true` exits 0 without writing results or printing stats: the shard
    // is treated as failed and its range recomputed.
    let run = run_sharded(&study, &dir, &options("true", 2)).unwrap();
    assert!(!run.failed.is_empty());
    assert_eq!(cells_json(&run.report), cells_json(&reference_report(&study)));
}

#[test]
fn workers_fill_the_store_and_the_coordinator_reassembles_it() {
    let study = random_study(44);
    let dir = temp_dir("warm");
    // Run every shard in-process first — the store ends up fully
    // populated, exactly as if real worker processes had run.
    for index in 0..2 {
        let run = run_worker(&manifest(&study, index, 2, &dir), None).unwrap();
        assert!(!run.aborted);
    }
    // The coordinator's workers all "fail" (`true` does nothing), but the
    // store already holds every comparison: nothing is retried, and every
    // cell reports from_cache.
    let run = run_sharded(&study, &dir, &options("true", 2)).unwrap();
    assert!(run.retried.is_empty());
    assert!(run.report.cells.iter().all(|c| c.from_cache));
    assert_eq!(run.report.stats.cache_misses, run.report.stats.jobs - run.report.stats.cache_hits);
    // Reference: a single-process warm run over the same store.
    let warm = Engine::default().with_cache_dir(&dir).unwrap();
    let reference = study.study().unwrap().run(&warm);
    assert_eq!(cells_json(&run.report), cells_json(&reference));
}

#[test]
fn injected_fault_leaves_a_partial_shard_the_coordinator_completes() {
    let study = random_study(45);
    let distinct = study.study().unwrap().distinct_jobs().len();
    assert!(distinct >= 2, "study too small to abort mid-shard");
    // Two identical partial stores: shard 0 of 1 dies after one job.
    let (dir_a, dir_b) = (temp_dir("fault_a"), temp_dir("fault_b"));
    for dir in [&dir_a, &dir_b] {
        let run = run_worker(&manifest(&study, 0, 1, dir), Some(Fault { abort_after: 1 })).unwrap();
        assert!(run.aborted);
        assert_eq!(run.completed, 1);
    }
    // Coordinator over the partial store: the missing tail is recomputed
    // and the report matches a single-process run over the same state.
    let run = run_sharded(&study, &dir_a, &options("true", 1)).unwrap();
    let warm = Engine::default().with_cache_dir(&dir_b).unwrap();
    let reference = study.study().unwrap().run(&warm);
    assert_eq!(cells_json(&run.report), cells_json(&reference));
    assert_eq!(run.report.stats.jobs, distinct as u64);
}

#[test]
fn corrupt_preloaded_entry_does_not_break_bit_identity() {
    let study = random_study(47);
    // Two identical warm stores...
    let (dir_a, dir_b) = (temp_dir("corrupt_a"), temp_dir("corrupt_b"));
    for dir in [&dir_a, &dir_b] {
        run_worker(&manifest(&study, 0, 1, dir), None).unwrap();
    }
    // ...each with the same entry truncated to garbage (same length, so
    // the index metadata stays plausible).
    let victim_key = sorted_keys(&study)[0];
    for dir in [&dir_a, &dir_b] {
        let victim = dir.join(format!("{victim_key}.json"));
        let size = std::fs::metadata(&victim).unwrap().len() as usize;
        std::fs::write(&victim, " ".repeat(size)).unwrap();
    }
    // The sharded run must classify the corrupt key exactly like the
    // single-process run: a recomputed miss, not a from_cache hit.
    let run = run_sharded(&study, &dir_a, &options("true", 2)).unwrap();
    let warm = Engine::default().with_cache_dir(&dir_b).unwrap();
    let reference = study.study().unwrap().run(&warm);
    assert_eq!(cells_json(&run.report), cells_json(&reference));
    assert_eq!(run.report.stats.cache_hits, reference.stats.cache_hits);
    assert_eq!(run.report.stats.cache_misses, reference.stats.cache_misses);
    assert_eq!(run.report.stats.cache_entries, reference.stats.cache_entries);
    let victim_cell =
        run.report.cells.iter().find(|cell| cell.key == victim_key).expect("victim in grid");
    assert!(!victim_cell.from_cache, "a corrupt entry is not a cache hit");
}

#[test]
fn fault_with_a_high_threshold_never_fires() {
    let study = random_study(46);
    let dir = temp_dir("no_fault");
    let run =
        run_worker(&manifest(&study, 0, 1, &dir), Some(Fault { abort_after: usize::MAX })).unwrap();
    assert!(!run.aborted);
    assert_eq!(run.stats.cache_hits + run.stats.cache_misses, run.stats.jobs);
}
