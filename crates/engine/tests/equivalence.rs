//! Parallel-vs-serial equivalence: for every benchmark in
//! `bittrans-benchmarks` at every paper latency, the engine's batched,
//! multi-worker results must match direct `bittrans_core::compare` calls
//! exactly.

use bittrans_benchmarks as bm;
use bittrans_core::{compare, CompareOptions};
use bittrans_engine::{Engine, EngineOptions, Job};

#[test]
fn engine_matches_direct_compare_on_every_benchmark() {
    let options = CompareOptions::default();
    let suite: Vec<bm::Benchmark> = bm::table2_benchmarks()
        .into_iter()
        .chain(bm::table3_benchmarks())
        .chain(bm::extended_benchmarks())
        .collect();
    let jobs: Vec<Job> = suite
        .iter()
        .flat_map(|b| {
            b.latencies.iter().map(|&latency| Job::with_options(b.spec.clone(), latency, options))
        })
        .collect();
    assert!(jobs.len() >= 10, "suite should be substantial, got {}", jobs.len());

    let engine = Engine::new(EngineOptions { workers: Some(4), ..Default::default() });
    let report = engine.run(jobs.clone());
    assert_eq!(report.outcomes.len(), jobs.len());

    for (job, outcome) in jobs.iter().zip(&report.outcomes) {
        let direct = compare(&job.spec, job.latency, &options)
            .unwrap_or_else(|e| panic!("{} λ={}: {e}", job.spec.name(), job.latency));
        let batched = outcome.result.as_ref().as_ref().unwrap_or_else(|e| {
            panic!("{} λ={}: engine failed: {e}", job.spec.name(), job.latency)
        });
        let context = format!("{} λ={}", job.spec.name(), job.latency);
        assert_eq!(batched.original.cycle_delta, direct.original.cycle_delta, "{context}");
        assert_eq!(batched.optimized.cycle_delta, direct.optimized.cycle_delta, "{context}");
        assert_eq!(batched.original.cycle_ns, direct.original.cycle_ns, "{context}");
        assert_eq!(batched.optimized.cycle_ns, direct.optimized.cycle_ns, "{context}");
        assert_eq!(batched.original.area.total(), direct.original.area.total(), "{context}");
        assert_eq!(batched.optimized.area.total(), direct.optimized.area.total(), "{context}");
        assert_eq!(batched.original.stored_bits, direct.original.stored_bits, "{context}");
        assert_eq!(batched.optimized.stored_bits, direct.optimized.stored_bits, "{context}");
    }
}

#[test]
fn engine_sweep_matches_serial_sweep_on_benchmarks() {
    let options = CompareOptions { verify_vectors: 0, ..Default::default() };
    for b in bm::table2_benchmarks() {
        let serial = bittrans_core::latency_sweep(&b.spec, 3..=8, &options).expect("serial sweep");
        let engine = Engine::new(EngineOptions { workers: Some(4), ..Default::default() });
        let parallel = engine.sweep(&b.spec, 3..=8, &options);
        assert_eq!(serial.len(), parallel.len(), "{}", b.name);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.latency, p.latency, "{}", b.name);
            assert_eq!(s.original_ns, p.original_ns, "{}", b.name);
            assert_eq!(s.optimized_ns, p.optimized_ns, "{}", b.name);
        }
    }
}
