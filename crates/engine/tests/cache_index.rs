//! The cache directory's `index.json` manifest and eviction sweep, tested
//! through the public `Engine` API:
//!
//! * opening a directory is **lazy** — entry bodies are only parsed when a
//!   batch actually asks for their key;
//! * a stale, corrupt or wrong-schema index is rebuilt from the directory
//!   contents and rewritten;
//! * `Engine::prune_cache` evicts by size/age, never touches entries
//!   pinned by the live run, and leaves the index consistent with the
//!   directory.

use bittrans_core::CompareOptions;
use bittrans_engine::{Engine, Job, PrunePolicy, Study};
use bittrans_ir::Spec;
use std::path::{Path, PathBuf};

fn three_adds() -> Spec {
    Spec::parse(
        "spec ex { input A: u16; input B: u16; input D: u16; input F: u16;
          C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }",
    )
    .unwrap()
}

/// The job a `populate`d study ran at `latency` (same options as the
/// study's cells, so the content keys agree).
fn populated_job(latency: u32) -> Job {
    Job::with_options(
        three_adds(),
        latency,
        CompareOptions { verify_vectors: 0, ..Default::default() },
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bittrans_index_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The `<32-hex>.json` entry files of a cache dir, sorted by name.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name().is_some_and(|n| {
                let n = n.to_string_lossy();
                n.len() == 37 && n.ends_with(".json")
            })
        })
        .collect();
    files.sort();
    files
}

/// Keys listed in `index.json`, as 32-hex strings.
fn indexed_keys(dir: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(dir.join("index.json")).unwrap();
    let value = serde_json::from_str(&text).unwrap();
    assert_eq!(value.get("schema").unwrap().as_u64(), Some(1));
    let mut keys: Vec<String> = value
        .get("entries")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|row| row.get("key").unwrap().as_str().unwrap().to_string())
        .collect();
    keys.sort();
    keys
}

/// Asserts `index.json` lists exactly the entry files present.
fn assert_index_consistent(dir: &Path) {
    let from_files: Vec<String> = entry_files(dir)
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    assert_eq!(indexed_keys(dir), from_files);
}

fn populate(dir: &Path, latencies: std::ops::RangeInclusive<u32>) -> usize {
    let engine = Engine::default().with_cache_dir(dir).unwrap();
    let report = Study::single(three_adds()).latencies(latencies).verify_vectors([0]).run(&engine);
    report.cells.len()
}

#[test]
fn a_run_writes_a_consistent_index() {
    let dir = temp_dir("written");
    let cells = populate(&dir, 2..=5);
    assert_eq!(entry_files(&dir).len(), cells);
    assert_index_consistent(&dir);
    // The index records sizes and mtimes for every entry.
    let text = std::fs::read_to_string(dir.join("index.json")).unwrap();
    let value = serde_json::from_str(&text).unwrap();
    for row in value.get("entries").unwrap().as_array().unwrap() {
        assert!(row.get("bytes").unwrap().as_u64().unwrap() > 0);
        assert!(row.get("mtime").unwrap().as_u64().is_some());
        let file = row.get("file").unwrap().as_str().unwrap();
        assert!(dir.join(file).exists());
    }
}

#[test]
fn entries_load_lazily_not_at_open() {
    let dir = temp_dir("lazy");
    populate(&dir, 2..=5);
    // Corrupt the λ=2 entry *behind the index's back* (same size, same
    // name, so the index stays trusted) — if opening parsed every entry,
    // the corruption would be noticed and repaired up front.
    let victim = dir.join(format!("{}.json", populated_job(2).key()));
    let size = std::fs::metadata(&victim).unwrap().len() as usize;
    std::fs::write(&victim, " ".repeat(size)).unwrap();

    // A fresh engine opens the directory and serves *other* keys without
    // ever reading the corrupt file.
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    let report = Study::single(three_adds()).latencies(3..=5).verify_vectors([0]).run(&engine);
    assert_eq!(report.stats.cache_hits + report.stats.cache_misses, 3);
    let untouched = std::fs::read_to_string(&victim).unwrap();
    assert!(untouched.chars().all(|c| c == ' '), "lazy open must not have repaired the file");

    // Asking for every key finally trips over the corruption: exactly one
    // recomputation, and the respill repairs the file.
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    let report = Study::single(three_adds()).latencies(2..=5).verify_vectors([0]).run(&engine);
    assert_eq!(report.stats.cache_misses, 1);
    assert_eq!(report.stats.cache_hits, 3);
    assert!(std::fs::read_to_string(&victim).unwrap().starts_with('{'));
    assert_index_consistent(&dir);
}

#[test]
fn stale_or_corrupt_index_is_rebuilt() {
    let dir = temp_dir("rebuild");
    populate(&dir, 2..=4);
    // Corrupt: plain garbage where the manifest should be.
    std::fs::write(dir.join("index.json"), "garbage, not an index").unwrap();
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    let report = Study::single(three_adds()).latencies(2..=4).verify_vectors([0]).run(&engine);
    assert_eq!(report.stats.cache_hits, 3, "rebuilt index must still serve every entry");
    assert_index_consistent(&dir);

    // Stale: an entry vanishes behind the index's back. The reopen
    // rebuilds from the directory and the missing key simply recomputes.
    let victim = entry_files(&dir)[0].clone();
    std::fs::remove_file(&victim).unwrap();
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    let report = Study::single(three_adds()).latencies(2..=4).verify_vectors([0]).run(&engine);
    assert_eq!(report.stats.cache_misses, 1);
    assert_eq!(report.stats.cache_hits, 2);
    assert_index_consistent(&dir);

    // Deleted outright: same story.
    std::fs::remove_file(dir.join("index.json")).unwrap();
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    let report = Study::single(three_adds()).latencies(2..=4).verify_vectors([0]).run(&engine);
    assert_eq!(report.stats.cache_hits, 3);
    assert_index_consistent(&dir);
}

#[test]
fn prune_never_touches_entries_pinned_by_a_live_run() {
    let dir = temp_dir("pinned");
    populate(&dir, 2..=5);

    // A live engine whose in-memory cache holds two of the four results.
    let live = Engine::default().with_cache_dir(&dir).unwrap();
    live.run(vec![populated_job(2), populated_job(3)]);

    // An impossible budget: everything unpinned goes, the live run's two
    // entries survive.
    let report = live.prune_cache(PrunePolicy { max_bytes: Some(0), max_age: None }).unwrap();
    assert_eq!(report.scanned, 4);
    assert_eq!(report.removed, 2);
    assert_eq!(report.pinned, 2);
    assert_eq!(report.kept, 2);
    assert_eq!(entry_files(&dir).len(), 2);
    assert_index_consistent(&dir);

    // The surviving files are exactly the live run's keys.
    let warm = Engine::default().with_cache_dir(&dir).unwrap();
    let batch = warm.run(vec![populated_job(2), populated_job(3)]);
    assert_eq!(batch.stats.cache_hits, 2);
}

#[test]
fn prune_with_no_live_run_can_empty_the_directory() {
    let dir = temp_dir("empty");
    populate(&dir, 2..=5);
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    // Nothing resident in memory: nothing is pinned.
    let report = engine.prune_cache(PrunePolicy { max_bytes: Some(0), max_age: None }).unwrap();
    assert_eq!(report.removed, 4);
    assert_eq!(report.kept, 0);
    assert_eq!(report.pinned, 0);
    assert!(entry_files(&dir).is_empty());
    assert_index_consistent(&dir);
    // The default policy is a no-op.
    let report = engine.prune_cache(PrunePolicy::default()).unwrap();
    assert_eq!(report.removed, 0);
}

#[test]
fn prune_requires_an_attached_directory() {
    let engine = Engine::default();
    assert!(engine.prune_cache(PrunePolicy::default()).is_err());
}

#[test]
fn fresh_entries_survive_an_age_bound() {
    let dir = temp_dir("age");
    populate(&dir, 2..=4);
    let engine = Engine::default().with_cache_dir(&dir).unwrap();
    // Everything was written milliseconds ago: a one-hour bound keeps all.
    let policy =
        PrunePolicy { max_age: Some(std::time::Duration::from_secs(3600)), max_bytes: None };
    let report = engine.prune_cache(policy).unwrap();
    assert_eq!(report.removed, 0);
    assert_eq!(report.kept, 3);
    assert_index_consistent(&dir);
}
