//! In-process integration tests of the `serve` subsystem: a real
//! `Server` bound to a loopback port, driven over real `TcpStream`s.
//!
//! The headline property mirrors the sharding suite's: a served study's
//! report must be **byte-identical** to what a single-process
//! `Study::run` produces (modulo the wall-clock `elapsed_ms` line) — a
//! cold request matches a cold run, a warm request matches a rerun on the
//! same engine — and concurrent clients must observe cross-request cache
//! hits, because one warm engine is the whole point of the service. The
//! fault cases mirror `tests/shard_cli.rs`' style: malformed input,
//! protocol abuse and vanishing clients must each cost one response (or
//! one connection), never the service.

use bittrans_engine::{Engine, EngineOptions, ServeOptions, Server, ServiceStats, Study};
use bittrans_ir::Spec;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

const SOURCE: &str = "spec srv { input A: u16; input B: u16; input D: u16; input F: u16;
  C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }";

/// The grid every byte-identity test runs: one spec, three latencies.
const LATENCIES: [u32; 3] = [2, 3, 4];

/// Worker-pool width fixed on both sides so batch `workers` counts agree.
const WORKERS: usize = 2;

fn start_server(max_request_bytes: usize) -> (SocketAddr, JoinHandle<ServiceStats>) {
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: Some(WORKERS),
        cache_dir: None,
        max_request_bytes,
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// Sends one request line and reads one response line.
fn roundtrip(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    read_response(&mut BufReader::new(stream))
}

fn read_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim().to_string()
}

fn send_line(stream: &mut TcpStream, request: &str) {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
}

fn study_request() -> String {
    let source = serde_json::to_string(SOURCE).unwrap();
    let latencies: Vec<String> = LATENCIES.iter().map(u32::to_string).collect();
    format!("{{\"sources\": [{source}], \"latencies\": [{}]}}", latencies.join(", "))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<ServiceStats>) -> ServiceStats {
    let reply = roundtrip(addr, "{\"shutdown\": true}");
    assert!(reply.contains("\"shutdown\":true"), "{reply}");
    handle.join().expect("server thread")
}

/// The exact single-process `StudyReport` bytes embedded in a response
/// line: the `report` field is serialized last precisely so this slice is
/// possible without re-serializing.
fn report_slice(response: &str) -> &str {
    let needle = "\"report\":";
    let start = response.find(needle).unwrap_or_else(|| panic!("no report in {response}"));
    assert!(response.ends_with('}'), "{response}");
    &response[start + needle.len()..response.len() - 1]
}

/// Drops the volatile wall-clock value; everything else must match byte
/// for byte.
fn strip_elapsed(json: &str) -> String {
    bittrans_engine::report::strip_elapsed_ms(json)
}

/// The reference: the same grid run directly, on a fresh engine with the
/// same pool width — once cold, once warm.
fn reference_reports() -> (String, String) {
    let engine = Engine::new(EngineOptions { workers: Some(WORKERS), cache: true });
    let study = Study::single(Spec::parse(SOURCE).unwrap()).latencies(LATENCIES);
    let cold = study.run(&engine).to_json();
    let warm = study.run(&engine).to_json();
    (cold, warm)
}

#[test]
fn concurrent_clients_get_single_process_reports_and_share_the_cache() {
    let (addr, handle) = start_server(1 << 20);
    let (cold_ref, warm_ref) = reference_reports();

    // Three clients race the same study at the cold server. The run lock
    // serializes execution, so exactly one pays the misses and the other
    // two are served from the warm cache — every response byte-identical
    // (modulo wall clock) to the corresponding single-process run.
    let clients: Vec<JoinHandle<String>> =
        (0..3).map(|_| std::thread::spawn(move || roundtrip(addr, &study_request()))).collect();
    let responses: Vec<String> = clients.into_iter().map(|c| c.join().expect("client")).collect();

    let mut cold_seen = 0;
    let mut warm_seen = 0;
    for response in &responses {
        assert!(response.starts_with("{\"ok\":true,"), "{response}");
        assert!(response.contains("\"service\":{\"requests\":"), "{response}");
        let report = strip_elapsed(report_slice(response));
        if report == strip_elapsed(&cold_ref) {
            cold_seen += 1;
        } else if report == strip_elapsed(&warm_ref) {
            warm_seen += 1;
        } else {
            panic!("report matches neither cold nor warm reference:\n{report}");
        }
    }
    assert_eq!((cold_seen, warm_seen), (1, 2));

    // A fourth, sequential request is pure cross-request cache reuse.
    let fourth = roundtrip(addr, &study_request());
    assert_eq!(strip_elapsed(report_slice(&fourth)), strip_elapsed(&warm_ref));
    assert!(fourth.contains("\"hit_rate_pct\":100"), "{fourth}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.errors, 0);
    // Cross-request hits: three of the four requests never computed.
    assert!(stats.engine.cache_hits >= 3 * LATENCIES.len() as u64, "{stats}");
    assert_eq!(stats.engine.cache_misses, LATENCIES.len() as u64, "{stats}");
}

#[test]
fn malformed_json_is_rejected_and_the_connection_keeps_serving() {
    let (addr, handle) = start_server(1 << 20);
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    send_line(&mut stream, "{ this is not json");
    let reply = read_response(&mut reader);
    assert!(reply.starts_with("{\"ok\":false,"), "{reply}");
    assert!(reply.contains("bad request"), "{reply}");

    // The same connection still serves a valid study afterwards.
    send_line(&mut stream, &study_request());
    let reply = read_response(&mut reader);
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");

    // Non-object bodies are rejected the same recoverable way.
    send_line(&mut stream, "[1, 2, 3]");
    let reply = read_response(&mut reader);
    assert!(reply.contains("must be a JSON object"), "{reply}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.errors, 2);
}

#[test]
fn unknown_fields_and_invalid_studies_are_rejected_without_harm() {
    let (addr, handle) = start_server(1 << 20);

    // A typo'd axis name must not silently run the default grid.
    let source = serde_json::to_string(SOURCE).unwrap();
    let reply = roundtrip(addr, &format!("{{\"sources\": [{source}], \"latencys\": [3]}}"));
    assert!(reply.contains("unknown field `latencys`"), "{reply}");

    // An unparseable spec source is a per-request failure.
    let reply = roundtrip(addr, "{\"sources\": [\"spec broken {\"]}");
    assert!(reply.starts_with("{\"ok\":false,"), "{reply}");

    // Axis values the options builder rejects must come back as protocol
    // errors, not kill the worker thread (Study::run would panic).
    let reply =
        roundtrip(addr, &format!("{{\"sources\": [{source}], \"verify_vectors\": [2000000]}}"));
    assert!(reply.contains("verify_vectors"), "{reply}");

    // `shutdown` must be literally true.
    let reply = roundtrip(addr, "{\"shutdown\": \"please\"}");
    assert!(reply.contains("`shutdown` must be `true`"), "{reply}");

    // Infeasible coordinates are report content, not request errors —
    // exactly like a single-process study.
    let reply = roundtrip(addr, &format!("{{\"sources\": [{source}], \"latencies\": [0]}}"));
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");
    assert!(report_slice(&reply).contains("\"ok\":false"), "{reply}");

    // After all that abuse the engine still serves.
    let reply = roundtrip(addr, &study_request());
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 4);
}

#[test]
fn oversized_requests_close_only_their_own_connection() {
    let (addr, handle) = start_server(512);
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let huge = format!("{{\"sources\": [\"{}\"]}}", "x".repeat(2048));
    send_line(&mut stream, &huge);
    let reply = read_response(&mut reader);
    assert!(reply.contains("byte limit"), "{reply}");

    // The line framing is unrecoverable, so that connection is done...
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0, "connection should be closed");

    // ...but a fresh connection is served normally (the study body fits
    // under the tiny limit because the spec is referenced, not inflated).
    let small = "{\"sources\": [\"spec t { input a: u4; output o = a; }\"]}";
    let reply = roundtrip(addr, small);
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");

    // A body of *exactly* the limit is within bounds: the newline is
    // framing, not body, so it must not count against the cap.
    let at_limit = format!("{small:<512}");
    assert_eq!(at_limit.len(), 512);
    let reply = roundtrip(addr, &at_limit);
    assert!(reply.starts_with("{\"ok\":true,"), "at-limit request rejected: {reply}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
}

#[test]
fn stats_introspection_answers_without_disturbing_counters() {
    let (addr, handle) = start_server(1 << 20);

    // A stats probe on a fresh server: valid ServiceStats, zero classes
    // served, and — crucially — it does not count as a request itself.
    let reply = roundtrip(addr, "{\"stats\": true}");
    assert!(reply.starts_with("{\"ok\":true,\"stats\":true,"), "{reply}");
    let value = serde_json::from_str(&reply).expect("stats reply parses");
    let service = value.get("service").expect("stats reply carries service");
    assert_eq!(service.get("requests").and_then(serde_json::Value::as_u64), Some(0), "{reply}");
    assert_eq!(service.get("errors").and_then(serde_json::Value::as_u64), Some(0), "{reply}");
    assert!(service.get("engine").is_some(), "{reply}");
    let classes = value.get("classes").expect("stats reply carries classes");
    assert_eq!(classes.get("study").and_then(serde_json::Value::as_u64), Some(0), "{reply}");
    assert_eq!(classes.get("shard").and_then(serde_json::Value::as_u64), Some(0), "{reply}");
    assert_eq!(classes.get("stats").and_then(serde_json::Value::as_u64), Some(1), "{reply}");

    // Run one study, then probe again: the study is visible in both the
    // lifetime counters and the per-class breakdown, and the probes still
    // have not moved `requests`.
    let study = roundtrip(addr, &study_request());
    assert!(study.starts_with("{\"ok\":true,"), "{study}");
    let reply = roundtrip(addr, "{\"stats\": true}");
    let value = serde_json::from_str(&reply).expect("stats reply parses");
    let service = value.get("service").expect("service");
    assert_eq!(service.get("requests").and_then(serde_json::Value::as_u64), Some(1), "{reply}");
    let classes = value.get("classes").expect("classes");
    assert_eq!(classes.get("study").and_then(serde_json::Value::as_u64), Some(1), "{reply}");
    assert_eq!(classes.get("stats").and_then(serde_json::Value::as_u64), Some(2), "{reply}");

    // Malformed probes are ordinary recoverable rejections.
    let reply = roundtrip(addr, "{\"stats\": false}");
    assert!(reply.contains("`stats` must be `true`"), "{reply}");
    let reply = roundtrip(addr, "{\"stats\": true, \"sources\": []}");
    assert!(reply.contains("`stats` must be the only field"), "{reply}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 1, "stats probes must not count as requests");
    assert_eq!(stats.errors, 2);
}

#[test]
fn client_disconnecting_mid_run_leaves_the_engine_serving() {
    let (addr, handle) = start_server(1 << 20);

    // Send a full request and vanish without reading the response.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        send_line(&mut stream, &study_request());
        // Dropped here: the server computes, fails to reply, moves on.
    }

    // The next client is served — and if the abandoned study finished
    // first, it even inherits the warm cache.
    let reply = roundtrip(addr, &study_request());
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");

    let stats = shutdown(addr, handle);
    assert!(stats.requests >= 1, "{stats}");
    assert_eq!(stats.errors, 0);
}
