//! In-process integration tests of the `serve` subsystem: a real
//! `Server` bound to a loopback port, driven over real `TcpStream`s.
//!
//! The headline property mirrors the sharding suite's: a served study's
//! report must be **byte-identical** to what a single-process
//! `Study::run` produces (modulo the wall-clock `elapsed_ms` line) — a
//! cold request matches a cold run, a warm request matches a rerun on the
//! same engine — and concurrent clients must observe cross-request cache
//! hits, because one warm engine is the whole point of the service. The
//! fault cases mirror `tests/shard_cli.rs`' style: malformed input,
//! protocol abuse and vanishing clients must each cost one response (or
//! one connection), never the service.

use bittrans_engine::{
    proto, Engine, EngineOptions, ServeOptions, Server, ServiceStats, Study, DEFAULT_MAX_INFLIGHT,
};
use bittrans_ir::Spec;
use bittrans_rtl::AdderArch;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SOURCE: &str = "spec srv { input A: u16; input B: u16; input D: u16; input F: u16;
  C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }";

/// The grid every byte-identity test runs: one spec, three latencies.
const LATENCIES: [u32; 3] = [2, 3, 4];

/// Worker-pool width fixed on both sides so batch `workers` counts agree.
const WORKERS: usize = 2;

fn start_server(max_request_bytes: usize) -> (SocketAddr, JoinHandle<ServiceStats>) {
    start_server_with(max_request_bytes, WORKERS, DEFAULT_MAX_INFLIGHT)
}

/// Fully parameterized variant for the scheduler tests: the pool width
/// sets the scheduler's worker count, `max_inflight` the per-connection
/// pipelining cap.
fn start_server_with(
    max_request_bytes: usize,
    workers: usize,
    max_inflight: usize,
) -> (SocketAddr, JoinHandle<ServiceStats>) {
    let server = Server::bind(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: Some(workers),
        cache_dir: None,
        max_request_bytes,
        max_inflight,
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

/// Sends one request line and reads one response line.
fn roundtrip(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    read_response(&mut BufReader::new(stream))
}

fn read_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim().to_string()
}

fn send_line(stream: &mut TcpStream, request: &str) {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
}

fn study_request() -> String {
    let source = serde_json::to_string(SOURCE).unwrap();
    let latencies: Vec<String> = LATENCIES.iter().map(u32::to_string).collect();
    format!("{{\"sources\": [{source}], \"latencies\": [{}]}}", latencies.join(", "))
}

fn shutdown(addr: SocketAddr, handle: JoinHandle<ServiceStats>) -> ServiceStats {
    let reply = roundtrip(addr, "{\"shutdown\": true}");
    assert!(reply.contains("\"shutdown\":true"), "{reply}");
    handle.join().expect("server thread")
}

/// The exact single-process `StudyReport` bytes embedded in a response
/// line: the `report` field is serialized last precisely so this slice is
/// possible without re-serializing.
fn report_slice(response: &str) -> &str {
    let needle = "\"report\":";
    let start = response.find(needle).unwrap_or_else(|| panic!("no report in {response}"));
    assert!(response.ends_with('}'), "{response}");
    &response[start + needle.len()..response.len() - 1]
}

/// Drops the volatile wall-clock value; everything else must match byte
/// for byte.
fn strip_elapsed(json: &str) -> String {
    bittrans_engine::report::strip_elapsed_ms(json)
}

/// The reference: the same grid run directly, on a fresh engine with the
/// same pool width — once cold, once warm.
fn reference_reports() -> (String, String) {
    let engine = Engine::new(EngineOptions { workers: Some(WORKERS), cache: true });
    let study = Study::single(Spec::parse(SOURCE).unwrap()).latencies(LATENCIES);
    let cold = study.run(&engine).to_json();
    let warm = study.run(&engine).to_json();
    (cold, warm)
}

#[test]
fn concurrent_clients_get_single_process_reports_and_share_the_cache() {
    let (addr, handle) = start_server(1 << 20);
    let (cold_ref, warm_ref) = reference_reports();

    // Three clients race the same study at the cold server. The
    // in-flight registry lets exactly one request register (and compute)
    // each key; the other two subscribe to those computations and are
    // served as cache hits — every response byte-identical (modulo wall
    // clock) to the corresponding single-process run.
    let clients: Vec<JoinHandle<String>> =
        (0..3).map(|_| std::thread::spawn(move || roundtrip(addr, &study_request()))).collect();
    let responses: Vec<String> = clients.into_iter().map(|c| c.join().expect("client")).collect();

    let mut cold_seen = 0;
    let mut warm_seen = 0;
    for response in &responses {
        assert!(response.starts_with("{\"ok\":true,"), "{response}");
        assert!(response.contains("\"service\":{\"requests\":"), "{response}");
        let report = strip_elapsed(report_slice(response));
        if report == strip_elapsed(&cold_ref) {
            cold_seen += 1;
        } else if report == strip_elapsed(&warm_ref) {
            warm_seen += 1;
        } else {
            panic!("report matches neither cold nor warm reference:\n{report}");
        }
    }
    assert_eq!((cold_seen, warm_seen), (1, 2));

    // A fourth, sequential request is pure cross-request cache reuse.
    let fourth = roundtrip(addr, &study_request());
    assert_eq!(strip_elapsed(report_slice(&fourth)), strip_elapsed(&warm_ref));
    assert!(fourth.contains("\"hit_rate_pct\":100"), "{fourth}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.errors, 0);
    // Cross-request hits: three of the four requests never computed.
    assert!(stats.engine.cache_hits >= 3 * LATENCIES.len() as u64, "{stats}");
    assert_eq!(stats.engine.cache_misses, LATENCIES.len() as u64, "{stats}");
}

#[test]
fn malformed_json_is_rejected_and_the_connection_keeps_serving() {
    let (addr, handle) = start_server(1 << 20);
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    send_line(&mut stream, "{ this is not json");
    let reply = read_response(&mut reader);
    assert!(reply.starts_with("{\"ok\":false,"), "{reply}");
    assert!(reply.contains("bad request"), "{reply}");

    // The same connection still serves a valid study afterwards.
    send_line(&mut stream, &study_request());
    let reply = read_response(&mut reader);
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");

    // Non-object bodies are rejected the same recoverable way.
    send_line(&mut stream, "[1, 2, 3]");
    let reply = read_response(&mut reader);
    assert!(reply.contains("must be a JSON object"), "{reply}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.errors, 2);
}

#[test]
fn unknown_fields_and_invalid_studies_are_rejected_without_harm() {
    let (addr, handle) = start_server(1 << 20);

    // A typo'd axis name must not silently run the default grid.
    let source = serde_json::to_string(SOURCE).unwrap();
    let reply = roundtrip(addr, &format!("{{\"sources\": [{source}], \"latencys\": [3]}}"));
    assert!(reply.contains("unknown field `latencys`"), "{reply}");

    // An unparseable spec source is a per-request failure.
    let reply = roundtrip(addr, "{\"sources\": [\"spec broken {\"]}");
    assert!(reply.starts_with("{\"ok\":false,"), "{reply}");

    // Axis values the options builder rejects must come back as protocol
    // errors, not kill the worker thread (Study::run would panic).
    let reply =
        roundtrip(addr, &format!("{{\"sources\": [{source}], \"verify_vectors\": [2000000]}}"));
    assert!(reply.contains("verify_vectors"), "{reply}");

    // `shutdown` must be literally true.
    let reply = roundtrip(addr, "{\"shutdown\": \"please\"}");
    assert!(reply.contains("`shutdown` must be `true`"), "{reply}");

    // Infeasible coordinates are report content, not request errors —
    // exactly like a single-process study.
    let reply = roundtrip(addr, &format!("{{\"sources\": [{source}], \"latencies\": [0]}}"));
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");
    assert!(report_slice(&reply).contains("\"ok\":false"), "{reply}");

    // After all that abuse the engine still serves.
    let reply = roundtrip(addr, &study_request());
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 4);
}

#[test]
fn oversized_requests_close_only_their_own_connection() {
    let (addr, handle) = start_server(512);
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let huge = format!("{{\"sources\": [\"{}\"]}}", "x".repeat(2048));
    send_line(&mut stream, &huge);
    let reply = read_response(&mut reader);
    assert!(reply.contains("byte limit"), "{reply}");

    // The line framing is unrecoverable, so that connection is done...
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0, "connection should be closed");

    // ...but a fresh connection is served normally (the study body fits
    // under the tiny limit because the spec is referenced, not inflated).
    let small = "{\"sources\": [\"spec t { input a: u4; output o = a; }\"]}";
    let reply = roundtrip(addr, small);
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");

    // A body of *exactly* the limit is within bounds: the newline is
    // framing, not body, so it must not count against the cap.
    let at_limit = format!("{small:<512}");
    assert_eq!(at_limit.len(), 512);
    let reply = roundtrip(addr, &at_limit);
    assert!(reply.starts_with("{\"ok\":true,"), "at-limit request rejected: {reply}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
}

#[test]
fn stats_introspection_answers_without_disturbing_counters() {
    let (addr, handle) = start_server(1 << 20);

    // A stats probe on a fresh server: valid ServiceStats, zero classes
    // served, and — crucially — it does not count as a request itself.
    let reply = roundtrip(addr, "{\"stats\": true}");
    assert!(reply.starts_with("{\"ok\":true,\"stats\":true,"), "{reply}");
    let value = serde_json::from_str(&reply).expect("stats reply parses");
    let service = value.get("service").expect("stats reply carries service");
    assert_eq!(service.get("requests").and_then(serde_json::Value::as_u64), Some(0), "{reply}");
    assert_eq!(service.get("errors").and_then(serde_json::Value::as_u64), Some(0), "{reply}");
    assert!(service.get("engine").is_some(), "{reply}");
    let classes = value.get("classes").expect("stats reply carries classes");
    assert_eq!(classes.get("study").and_then(serde_json::Value::as_u64), Some(0), "{reply}");
    assert_eq!(classes.get("shard").and_then(serde_json::Value::as_u64), Some(0), "{reply}");
    assert_eq!(classes.get("stats").and_then(serde_json::Value::as_u64), Some(1), "{reply}");
    // The scheduler gauges: a fresh pool at the configured width, with
    // nothing queued, admitted or dispatched yet.
    let sched = value.get("sched").expect("stats reply carries sched gauges");
    let gauge = |name: &str| sched.get(name).and_then(serde_json::Value::as_u64);
    assert_eq!(gauge("workers"), Some(WORKERS as u64), "{reply}");
    assert_eq!(gauge("queue_depth"), Some(0), "{reply}");
    assert_eq!(gauge("active_requests"), Some(0), "{reply}");
    assert_eq!(gauge("admitted_requests"), Some(0), "{reply}");
    assert_eq!(gauge("dispatched_tasks"), Some(0), "{reply}");
    assert_eq!(gauge("panicked_tasks"), Some(0), "{reply}");

    // Run one study, then probe again: the study is visible in both the
    // lifetime counters and the per-class breakdown, and the probes still
    // have not moved `requests`.
    let study = roundtrip(addr, &study_request());
    assert!(study.starts_with("{\"ok\":true,"), "{study}");
    let reply = roundtrip(addr, "{\"stats\": true}");
    let value = serde_json::from_str(&reply).expect("stats reply parses");
    let service = value.get("service").expect("service");
    assert_eq!(service.get("requests").and_then(serde_json::Value::as_u64), Some(1), "{reply}");
    let classes = value.get("classes").expect("classes");
    assert_eq!(classes.get("study").and_then(serde_json::Value::as_u64), Some(1), "{reply}");
    assert_eq!(classes.get("stats").and_then(serde_json::Value::as_u64), Some(2), "{reply}");
    // The study's trip through the scheduler is visible in the gauges:
    // one request admitted and completed, one task per (cold) grid cell.
    // The completion bookkeeping lands just after the response is written,
    // so poll the (monotonic) completed-request gauge until it settles.
    let deadline = Instant::now() + Duration::from_secs(10);
    let sched = loop {
        let reply = roundtrip(addr, "{\"stats\": true}");
        let value: serde_json::Value = serde_json::from_str(&reply).expect("stats reply parses");
        let sched = value.get("sched").expect("sched gauges").clone();
        if sched.get("completed_requests").and_then(serde_json::Value::as_u64) == Some(1) {
            break sched;
        }
        assert!(Instant::now() < deadline, "sched gauges never settled: {reply}");
        std::thread::sleep(Duration::from_millis(2));
    };
    let gauge = |name: &str| sched.get(name).and_then(serde_json::Value::as_u64);
    assert_eq!(gauge("admitted_requests"), Some(1), "{sched:?}");
    assert_eq!(gauge("dispatched_tasks"), Some(LATENCIES.len() as u64), "{sched:?}");
    assert_eq!(gauge("completed_tasks"), Some(LATENCIES.len() as u64), "{sched:?}");
    assert_eq!(gauge("queue_depth"), Some(0), "{sched:?}");
    assert_eq!(gauge("active_requests"), Some(0), "{sched:?}");

    // Malformed probes are ordinary recoverable rejections.
    let reply = roundtrip(addr, "{\"stats\": false}");
    assert!(reply.contains("`stats` must be `true`"), "{reply}");
    let reply = roundtrip(addr, "{\"stats\": true, \"sources\": []}");
    assert!(reply.contains("`stats` must be the only field"), "{reply}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 1, "stats probes must not count as requests");
    assert_eq!(stats.errors, 2);
}

/// A second tenant whose spec — and therefore every job key — is
/// disjoint from `SOURCE`'s, so the fairness test's requests share no
/// cache state.
const SMALL_SOURCE: &str = "spec tiny { input a: u8; input b: u8; input c: u8;
  s: u8 = a + b; t: u8 = s + c; output t; }";

/// A 100-cell grid (25 latencies x 2 adders x 2 balance settings): big
/// enough that a width-1 server is visibly busy while a small tenant
/// arrives.
fn large_request() -> String {
    let source = serde_json::to_string(SOURCE).unwrap();
    let latencies: Vec<String> = (2u32..=26).map(|l| l.to_string()).collect();
    format!(
        "{{\"sources\": [{source}], \"latencies\": [{}], \
         \"adder_archs\": [\"rca\", \"cla\"], \"balance\": [true, false]}}",
        latencies.join(", ")
    )
}

fn small_request() -> String {
    let source = serde_json::to_string(SMALL_SOURCE).unwrap();
    format!("{{\"sources\": [{source}], \"latencies\": [2, 3]}}")
}

/// Sends `request` on its own connection and reports at which position
/// (a shared arrival counter) its response line landed.
fn timed_client(
    addr: SocketAddr,
    request: String,
    order: &Arc<AtomicUsize>,
) -> JoinHandle<(usize, String)> {
    let order = Arc::clone(order);
    std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        send_line(&mut stream, &request);
        let line = read_response(&mut BufReader::new(stream));
        (order.fetch_add(1, Ordering::SeqCst), line)
    })
}

#[test]
fn a_small_tenant_overtakes_a_large_one_and_both_match_single_process_runs() {
    // Width 1 makes the interleaving observable: a run-to-completion
    // server (the old per-request run lock) would hold the 2-cell tenant
    // until the whole 100-cell grid drained, so the ordering assertion
    // below fails without fair scheduling.
    let (addr, handle) = start_server_with(1 << 20, 1, DEFAULT_MAX_INFLIGHT);

    // References: each tenant's grid on its own fresh width-1 engine.
    let large_ref = {
        let engine = Engine::new(EngineOptions { workers: Some(1), cache: true });
        Study::single(Spec::parse(SOURCE).unwrap())
            .latencies(2..=26)
            .adder_archs([AdderArch::RippleCarry, AdderArch::CarryLookahead])
            .balance([true, false])
            .run(&engine)
            .to_json()
    };
    let small_ref = {
        let engine = Engine::new(EngineOptions { workers: Some(1), cache: true });
        Study::single(Spec::parse(SMALL_SOURCE).unwrap()).latencies([2, 3]).run(&engine).to_json()
    };

    let order = Arc::new(AtomicUsize::new(0));
    let large_client = timed_client(addr, large_request(), &order);

    // Only submit the small tenant once the large grid is demonstrably on
    // the scheduler (`admitted_requests` is monotonic, so this poll
    // cannot miss it).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let reply = roundtrip(addr, "{\"stats\": true}");
        let value: serde_json::Value = serde_json::from_str(&reply).expect("stats reply parses");
        let admitted = value
            .get("sched")
            .and_then(|s| s.get("admitted_requests"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0);
        if admitted >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "large study never reached the scheduler");
        std::thread::sleep(Duration::from_millis(2));
    }
    let small_client = timed_client(addr, small_request(), &order);

    let (small_pos, small_line) = small_client.join().expect("small client");
    let (large_pos, large_line) = large_client.join().expect("large client");
    assert!(
        small_pos < large_pos,
        "the 2-cell study must finish before the 100-cell one \
         (small landed {small_pos}, large {large_pos})"
    );
    // Fair interleaving must not cost correctness: both responses are
    // byte-identical to their single-process references.
    assert_eq!(strip_elapsed(report_slice(&small_line)), strip_elapsed(&small_ref));
    assert_eq!(strip_elapsed(report_slice(&large_line)), strip_elapsed(&large_ref));

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 0);
}

/// The same grid as [`study_request`], with the streaming opt-in set.
fn stream_request() -> String {
    format!("{{\"stream\": true, {}", &study_request()[1..])
}

/// Sends one streaming request and splits the reply into its cell frames
/// and the final report line.
fn stream_roundtrip(addr: SocketAddr, request: &str) -> (Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    send_line(&mut stream, request);
    let mut reader = BufReader::new(stream);
    let mut frames = Vec::new();
    loop {
        let line = read_response(&mut reader);
        if proto::is_frame(&line) {
            frames.push(line);
        } else {
            return (frames, line);
        }
    }
}

#[test]
fn streaming_and_batch_reports_are_byte_identical() {
    let (addr, handle) = start_server(1 << 20);
    let (cold_ref, warm_ref) = reference_reports();

    // Misuses first: a non-boolean flag and a shard-scoped stream are
    // both recoverable protocol errors.
    let source = serde_json::to_string(SOURCE).unwrap();
    let reply = roundtrip(addr, &format!("{{\"sources\": [{source}], \"stream\": 1}}"));
    assert!(reply.contains("`stream` must be a boolean"), "{reply}");
    let reply = roundtrip(
        addr,
        &format!(
            "{{\"sources\": [{source}], \"stream\": true, \
             \"shard_index\": 0, \"shard_count\": 2}}"
        ),
    );
    assert!(reply.contains("not supported on shard requests"), "{reply}");

    // Cold streaming request: one frame per grid cell, then a final
    // report line byte-identical to a cold single-process run.
    let (frames, final_line) = stream_roundtrip(addr, &stream_request());
    assert_eq!(frames.len(), LATENCIES.len(), "{frames:?}");
    assert!(final_line.starts_with("{\"ok\":true,"), "{final_line}");
    assert_eq!(strip_elapsed(report_slice(&final_line)), strip_elapsed(&cold_ref));
    let mut seen = vec![false; LATENCIES.len()];
    for frame in &frames {
        let (index, cell) = proto::frame_cell(frame).expect("frame parses");
        assert!(!seen[index as usize], "duplicate frame index {index}");
        seen[index as usize] = true;
        assert!(cell.contains("\"from_cache\":false"), "{cell}");
        // The final report embeds the exact same cell bytes.
        assert!(final_line.contains(cell), "frame cell not in report:\n{cell}\n{final_line}");
    }
    assert!(seen.iter().all(|s| *s), "some cells never framed: {seen:?}");

    // Warm rerun, streamed: every cell frames as a cache hit, and the
    // final report equals both the warm reference and a warm batch
    // (non-streaming) request byte for byte.
    let (warm_frames, warm_line) = stream_roundtrip(addr, &stream_request());
    assert_eq!(warm_frames.len(), LATENCIES.len());
    for frame in &warm_frames {
        let (_, cell) = proto::frame_cell(frame).expect("frame parses");
        assert!(cell.contains("\"from_cache\":true"), "{cell}");
    }
    let batch_line = roundtrip(addr, &study_request());
    assert_eq!(
        strip_elapsed(report_slice(&warm_line)),
        strip_elapsed(report_slice(&batch_line)),
        "streaming and batch reports must be byte-identical modulo wall clock"
    );
    assert_eq!(strip_elapsed(report_slice(&warm_line)), strip_elapsed(&warm_ref));

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.errors, 2);
}

#[test]
fn pipelining_past_the_inflight_cap_is_rejected_not_hung() {
    let (addr, handle) = start_server_with(1 << 20, 1, 1);

    // Two studies pipelined back to back on one connection without
    // reading: the first (slow) one is admitted, the second trips the
    // cap — immediately, as an error response, not a hang and not a
    // dropped connection.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send_line(&mut stream, &large_request());
    send_line(&mut stream, &study_request());

    let first = read_response(&mut reader);
    assert!(first.starts_with("{\"ok\":false,"), "{first}");
    assert!(first.contains("too many in-flight studies"), "{first}");

    // The admitted study still completes on the same connection...
    let second = read_response(&mut reader);
    assert!(second.starts_with("{\"ok\":true,"), "{second}");

    // ...after which the connection is under the cap again.
    send_line(&mut stream, &study_request());
    let third = read_response(&mut reader);
    assert!(third.starts_with("{\"ok\":true,"), "{third}");

    let stats = shutdown(addr, handle);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.errors, 1);
}

#[test]
fn client_disconnecting_mid_run_leaves_the_engine_serving() {
    let (addr, handle) = start_server(1 << 20);

    // Send a full request and vanish without reading the response.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        send_line(&mut stream, &study_request());
        // Dropped here: the server computes, fails to reply, moves on.
    }

    // The next client is served — and if the abandoned study finished
    // first, it even inherits the warm cache.
    let reply = roundtrip(addr, &study_request());
    assert!(reply.starts_with("{\"ok\":true,"), "{reply}");

    let stats = shutdown(addr, handle);
    assert!(stats.requests >= 1, "{stats}");
    assert_eq!(stats.errors, 0);
}
