//! Integration tests for `engine::fuzz`: the invariants hold over clean
//! seeds, reports are deterministic, replay reproduces a case exactly,
//! and the differential (sharded) path agrees with single-process.

use bittrans_engine::fuzz::{self, Differential, FuzzOptions, Invariant, Shape};
use bittrans_engine::report::normalize_run_shape;
use bittrans_engine::shard::{LocalTransport, Transport};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bittrans_fuzz_test_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn a_fuzz_run_is_clean() {
    let options = FuzzOptions { count: 8, seed: 1, workers: Some(2), ..Default::default() };
    let report = fuzz::run(&options);
    assert_eq!(report.count, 8);
    assert_eq!(report.cells, 8 * 24, "4 latencies x 3 adders x 2 balance per case");
    assert!(report.feasible > 0);
    // All four shapes appear over 8 consecutive seeds.
    assert!(report.shapes.iter().all(|&(_, n)| n == 2));
    assert_eq!(report.total_violations(), 0, "{}", report.render_text());
}

#[test]
fn reports_are_deterministic_modulo_elapsed() {
    let options = FuzzOptions { count: 6, seed: 40, workers: Some(2), ..Default::default() };
    let a = normalize_run_shape(&fuzz::run(&options).to_json());
    let b = normalize_run_shape(&fuzz::run(&options).to_json());
    assert_eq!(a, b);
}

#[test]
fn replay_reproduces_a_case() {
    let options = FuzzOptions { count: 1, seed: 11, workers: Some(2), ..Default::default() };
    let first = fuzz::run_case(11, &options);
    let again = fuzz::run_case(11, &options);
    assert_eq!(first.cells, again.cells);
    assert_eq!(first.feasible, again.feasible);
    assert_eq!(first.violations.len(), again.violations.len());
    assert_eq!(first.shape, Shape::of(11));
}

#[test]
fn shapes_are_a_pure_function_of_the_seed() {
    assert_eq!(Shape::of(0), Shape::Wide);
    assert_eq!(Shape::of(1), Shape::Deep);
    assert_eq!(Shape::of(2), Shape::MulHeavy);
    assert_eq!(Shape::of(3), Shape::Degenerate);
    assert_eq!(Shape::of(7), Shape::of(3));
}

#[test]
fn mul_prob_override_reaches_the_generator() {
    // Forcing muls everywhere still fuzzes clean on a few seeds.
    let options = FuzzOptions {
        count: 4,
        seed: 2,
        mul_prob: Some(1.0),
        workers: Some(2),
        ..Default::default()
    };
    let report = fuzz::run(&options);
    assert_eq!(report.mul_prob, Some(1.0));
    assert_eq!(report.total_violations(), 0, "{}", report.render_text());
}

/// The differential path with a worker binary that dies instantly: every
/// shard fails, the coordinator recomputes in-process, and the report
/// must still normalize byte-identical to single-process — the exact
/// recovery contract `run_sharded` documents.
#[test]
fn differential_agrees_even_when_workers_die() {
    let dir = temp_dir("diff");
    let options = FuzzOptions {
        count: 4,
        seed: 20,
        workers: Some(2),
        differential: Some(Differential {
            cache_dir: dir.clone(),
            shards: 2,
            transport: Transport::Local(LocalTransport {
                worker_binary: PathBuf::from("false"),
                threads_per_worker: Some(1),
            }),
        }),
        ..Default::default()
    };
    let report = fuzz::run(&options);
    assert_eq!(report.total_violations(), 0, "{}", report.render_text());
    assert!(report.checks.iter().any(|&(i, n)| i == Invariant::ShardIdentity && n == 4));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fuzzer-found regression (replay seed 32 of `fuzz --seed 31 --count 8`
/// against a serve fleet): `cache_entries` counts the *whole* result
/// store, so two identical runs of one grid — one on a fresh store, one
/// on a store shared with earlier studies — could never byte-compare
/// even though every cell and hit/miss count agreed. `report normalize`
/// now blanks it like the other run-shape fields.
#[test]
fn normalized_reports_ignore_foreign_store_entries() {
    use bittrans_engine::{Engine, Study};

    let fresh = temp_dir("fresh_store");
    let shared = temp_dir("shared_store");
    let spec = |seed: u64| {
        bittrans_benchmarks::random_spec(seed, &bittrans_benchmarks::RandomSpecOptions::default())
    };
    // Populate the shared store with an unrelated study's entries.
    let warmup = Study::single(spec(90)).latencies([3, 4]);
    warmup.run(&Engine::default().with_cache_dir(&shared).unwrap());

    let study = Study::single(spec(91)).latencies([3, 4]).balance_both();
    let a = study.run(&Engine::default().with_cache_dir(&fresh).unwrap());
    let b = study.run(&Engine::default().with_cache_dir(&shared).unwrap());
    assert_ne!(a.stats.cache_entries, b.stats.cache_entries, "stores differ by construction");
    assert_eq!(
        normalize_run_shape(&a.to_json()),
        normalize_run_shape(&b.to_json()),
        "identical grids over differently-populated stores must normalize identically"
    );
    let _ = std::fs::remove_dir_all(&fresh);
    let _ = std::fs::remove_dir_all(&shared);
}

#[test]
fn the_json_document_is_well_formed() {
    let options = FuzzOptions { count: 2, seed: 0, workers: Some(2), ..Default::default() };
    let doc = fuzz::run(&options).to_json();
    let value = serde_json::from_str(&doc).expect("fuzz document parses");
    assert_eq!(value.get("schema").and_then(|v| v.as_str()), Some("bittrans-fuzz-v1"));
    assert_eq!(value.get("count").and_then(|v| v.as_u64()), Some(2));
    let violations = value.get("violations").unwrap();
    assert_eq!(violations.get("total").and_then(|v| v.as_u64()), Some(0));
    for key in ["adder_equivalence", "latency_monotonic", "staged_identity", "shard_identity"] {
        assert!(violations.get(key).is_some(), "missing violations.{key}");
    }
    assert!(value.get("elapsed_ms").is_some());
}
