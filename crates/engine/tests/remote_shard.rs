//! Network fault-injection suite for the remote shard transport: an
//! in-process `serve::Server` fleet on port-0 loopback listeners, driven
//! through `shard::run_sharded` with a `Remote` transport.
//!
//! The headline property mirrors the local sharding suite's: the
//! remote-sharded `StudyReport` must be **byte-identical** to a
//! single-process `Study::run` over the same grid and starting cache
//! state — modulo the wall-clock `elapsed_ms` and the pool-shape
//! `workers` count — and that identity must survive every injected
//! network fault: an endpoint dead on arrival, a connection dropped
//! mid-response, a garbage reply, and an endpoint that accepts and then
//! stalls past the read deadline. Each scenario must end in a correct
//! report via retry or in-process gap-fill — never a hang or a panic —
//! and each synchronizes on connection state or bounded timeouts, never
//! on sleeps.

mod support;

use bittrans_core::CompareOptions;
use bittrans_engine::shard::{
    assign_round_robin, partition, run_sharded, RemoteTransport, ShardOptions, ShardedStudy,
    Transport,
};
use bittrans_engine::{proto, Engine, StudyReport};
use bittrans_rtl::AdderArch;
use proptest::prelude::*;
use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use support::{dead_endpoint, fault_endpoint, Fault, Fleet};

const SOURCE: &str = "spec rmt { input A: u16; input B: u16; input D: u16; input F: u16;
  C: u16 = A + B; E: u16 = C + D; G: u16 = E + F; output G; }";

/// Generous deadline for healthy exchanges (loopback answers in
/// milliseconds; the margin absorbs loaded CI machines).
const TIMEOUT: Duration = Duration::from_secs(30);

/// Deadline for the stall scenario: long enough that a healthy loopback
/// server always answers well inside it, short enough to keep the test
/// bounded. The stalled endpoint costs exactly one such timeout.
const STALL_TIMEOUT: Duration = Duration::from_secs(2);

/// The grid every scenario runs: 1 spec × 4 latencies × 2 adders = 8
/// distinct jobs, verification off to keep each job cheap.
fn study() -> ShardedStudy {
    ShardedStudy {
        sources: vec![SOURCE.to_string()],
        latencies: vec![2, 3, 4, 5],
        adder_archs: Some(vec![AdderArch::RippleCarry, AdderArch::CarryLookahead]),
        balance: None,
        verify_vectors: None,
        base: CompareOptions { verify_vectors: 0, ..Default::default() },
    }
}

fn distinct_jobs(sharded: &ShardedStudy) -> usize {
    sharded.study().unwrap().distinct_jobs().len()
}

/// The cold single-process reference: the same grid on a fresh engine.
fn cold_reference(sharded: &ShardedStudy) -> StudyReport {
    sharded.study().unwrap().run(&Engine::default())
}

/// Blanks the two run-shape values two equivalent runs legitimately
/// disagree on — wall clock and pool width — leaving every other byte of
/// the compact report intact. Delegates to the library's own
/// normalization so tests and tooling share one definition.
fn normalized(report: &StudyReport) -> String {
    bittrans_engine::report::normalize_run_shape(&report.to_json())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bittrans_remote_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn remote(endpoints: Vec<String>, shards: usize, timeout: Duration) -> ShardOptions {
    ShardOptions { shards, transport: Transport::Remote(RemoteTransport { endpoints, timeout }) }
}

/// A raw shard request line: the study body plus the shard coordinates,
/// spelled exactly as the coordinator spells them.
fn shard_request(sharded: &ShardedStudy, index: usize, count: usize) -> String {
    let body = serde_json::to_string(sharded).unwrap();
    format!("{{\"shard_index\":{index},\"shard_count\":{count},{}", &body[1..])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-robin endpoint assignment is total (every shard assigned
    /// exactly once) and balanced (endpoint loads differ by at most one)
    /// over random shard counts and endpoint-list sizes — mirroring the
    /// `partition` totality/disjointness properties the local sharder is
    /// built on.
    #[test]
    fn prop_round_robin_is_total_and_balanced(shards in 0usize..600, endpoints in 1usize..40) {
        let assignment = assign_round_robin(shards, endpoints);
        prop_assert_eq!(assignment.len(), shards, "every shard assigned exactly once");
        let mut load = vec![0usize; endpoints];
        for &endpoint in &assignment {
            prop_assert!(endpoint < endpoints, "assignment targets a real endpoint");
            load[endpoint] += 1;
        }
        prop_assert_eq!(load.iter().sum::<usize>(), shards);
        let (min, max) = (*load.iter().min().unwrap(), *load.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced loads {:?}", load);
    }
}

#[test]
fn shard_slice_survives_absurd_coordinates() {
    use bittrans_engine::shard::shard_slice;
    let parsed = study().study().unwrap();
    let distinct = parsed.distinct_jobs().len();
    // A hostile count must cost neither an allocation proportional to it
    // nor an arithmetic overflow; each index holds at most one job (the
    // same cut partition() would make) and index >= count is empty.
    assert!(shard_slice(&parsed, 0, usize::MAX).len() <= 1);
    assert!(shard_slice(&parsed, usize::MAX - 1, usize::MAX).len() <= 1);
    assert!(shard_slice(&parsed, usize::MAX, usize::MAX).is_empty(), "index >= count");
    // The direct cut agrees with partition() wherever both are defined.
    for count in [1usize, 2, 3, 5, 16] {
        let total: usize = (0..count).map(|i| shard_slice(&parsed, i, count).len()).sum();
        assert_eq!(total, distinct, "count={count} must stay total");
        for (index, range) in partition(distinct, count).into_iter().enumerate() {
            assert_eq!(shard_slice(&parsed, index, count).len(), range.len());
        }
    }
}

#[test]
fn healthy_fleet_report_is_byte_identical_to_single_process() {
    let sharded = study();
    let dir = temp_dir("fleet");
    let fleet = Fleet::start(2, &dir, 1);
    let run = run_sharded(&sharded, &dir, &remote(fleet.endpoints.clone(), 3, TIMEOUT)).unwrap();

    assert!(run.failed.is_empty(), "healthy fleet: no failed shards");
    assert!(run.retried.is_empty(), "healthy fleet: nothing recomputed");
    assert_eq!(normalized(&run.report), normalized(&cold_reference(&sharded)));
    let distinct = distinct_jobs(&sharded) as u64;
    assert_eq!(run.report.stats.jobs, distinct);
    assert_eq!(run.report.stats.cache_hits, 0);
    assert_eq!(run.report.stats.cache_misses, distinct);
    assert_eq!(run.merged.jobs, distinct);

    // Per-endpoint attribution covers every shard exactly once, and the
    // round-robin homes held (no retries were needed).
    let mut served: Vec<usize> =
        run.endpoints.iter().flat_map(|endpoint| endpoint.shards.clone()).collect();
    served.sort_unstable();
    assert_eq!(served, vec![0, 1, 2]);
    for endpoint in &run.endpoints {
        assert!(fleet.endpoints.contains(&endpoint.endpoint), "{}", endpoint.endpoint);
    }

    let stats = fleet.shutdown();
    assert_eq!(stats.iter().map(|s| s.requests).sum::<u64>(), 3, "one request per shard");
    assert_eq!(stats.iter().map(|s| s.errors).sum::<u64>(), 0);
}

#[test]
fn warm_remote_rerun_is_served_from_the_shared_store() {
    let sharded = study();
    let dir = temp_dir("warm");
    let fleet = Fleet::start(2, &dir, 1);
    run_sharded(&sharded, &dir, &remote(fleet.endpoints.clone(), 2, TIMEOUT)).unwrap();

    // The warm single-process reference reads the same store (all hits,
    // so it writes nothing and perturbs nothing).
    let warm_engine = Engine::default().with_cache_dir(&dir).unwrap();
    let reference = sharded.study().unwrap().run(&warm_engine);

    let warm = run_sharded(&sharded, &dir, &remote(fleet.endpoints.clone(), 2, TIMEOUT)).unwrap();
    assert_eq!(normalized(&warm.report), normalized(&reference));
    let distinct = distinct_jobs(&sharded) as u64;
    assert_eq!(warm.report.stats.cache_hits, distinct, "warm rerun is 100% hits");
    assert_eq!(warm.report.stats.cache_misses, 0);
    assert!(warm.report.cells.iter().all(|cell| cell.from_cache));
    fleet.shutdown();
}

/// Fault (a): an endpoint dead on arrival — the connection is refused —
/// must cost a retry on the next endpoint, nothing else.
#[test]
fn dead_endpoint_shard_is_retried_on_the_next() {
    let sharded = study();
    let dir = temp_dir("doa");
    let fleet = Fleet::start(1, &dir, 1);
    let endpoints = vec![dead_endpoint(), fleet.endpoints[0].clone()];
    let run = run_sharded(&sharded, &dir, &remote(endpoints, 2, TIMEOUT)).unwrap();

    assert!(run.failed.is_empty(), "the live endpoint absorbs the dead one's shard");
    assert!(run.retried.is_empty());
    assert_eq!(normalized(&run.report), normalized(&cold_reference(&sharded)));
    // Everything was served by the one live endpoint.
    assert_eq!(run.endpoints.len(), 1);
    assert_eq!(run.endpoints[0].endpoint, fleet.endpoints[0]);
    assert_eq!(run.endpoints[0].shards.len(), 2);
    fleet.shutdown();
}

/// Fault (b): a connection dropped mid-response (half a reply, no
/// newline, then close) is a truncated line the codec rejects; the shard
/// is retried on the next endpoint.
#[test]
fn connection_dropped_mid_response_is_retried() {
    let sharded = study();
    let dir = temp_dir("drop");
    let fleet = Fleet::start(1, &dir, 1);
    let endpoints = vec![fault_endpoint(Fault::DropMidResponse), fleet.endpoints[0].clone()];
    let run = run_sharded(&sharded, &dir, &remote(endpoints, 2, TIMEOUT)).unwrap();

    assert!(run.failed.is_empty());
    assert_eq!(normalized(&run.report), normalized(&cold_reference(&sharded)));
    assert_eq!(run.endpoints.len(), 1, "only the live endpoint did work");
    fleet.shutdown();
}

/// Fault (c): a garbage (non-JSON) reply is rejected at parse time; the
/// shard is retried on the next endpoint.
#[test]
fn garbage_reply_is_retried() {
    let sharded = study();
    let dir = temp_dir("garbage");
    let fleet = Fleet::start(1, &dir, 1);
    let endpoints = vec![fault_endpoint(Fault::Garbage), fleet.endpoints[0].clone()];
    let run = run_sharded(&sharded, &dir, &remote(endpoints, 2, TIMEOUT)).unwrap();

    assert!(run.failed.is_empty());
    assert_eq!(normalized(&run.report), normalized(&cold_reference(&sharded)));
    fleet.shutdown();
}

/// Fault (d): an endpoint that accepts the request and then never writes
/// must trip the read deadline — one bounded timeout, then a retry —
/// never hang the coordinator.
#[test]
fn stalled_endpoint_times_out_and_is_retried() {
    let sharded = study();
    let dir = temp_dir("stall");
    let fleet = Fleet::start(1, &dir, 1);
    let endpoints = vec![fault_endpoint(Fault::Stall), fleet.endpoints[0].clone()];
    let started = Instant::now();
    let run = run_sharded(&sharded, &dir, &remote(endpoints, 2, STALL_TIMEOUT)).unwrap();

    assert!(run.failed.is_empty(), "the live endpoint absorbs the stalled one's shard");
    assert_eq!(normalized(&run.report), normalized(&cold_reference(&sharded)));
    // Bounded: one stall deadline plus real work, nowhere near a hang.
    assert!(started.elapsed() < STALL_TIMEOUT * 5, "took {:?}", started.elapsed());
    fleet.shutdown();
}

/// Every endpoint faulty: after bounded retries each shard is marked
/// failed and the coordinator's in-process gap-fill recomputes the whole
/// grid — the report must still match the single-process run exactly.
#[test]
fn exhausted_fleet_falls_back_to_in_process_gap_fill() {
    let sharded = study();
    let dir = temp_dir("exhausted");
    let endpoints = vec![dead_endpoint(), fault_endpoint(Fault::Garbage)];
    let run = run_sharded(&sharded, &dir, &remote(endpoints, 2, TIMEOUT)).unwrap();

    assert_eq!(run.failed, vec![0, 1]);
    assert!(run.shard_stats.iter().all(Option::is_none));
    assert_eq!(run.retried.len(), distinct_jobs(&sharded));
    assert_eq!(normalized(&run.report), normalized(&cold_reference(&sharded)));
    // The gap-fill work is attributed to the coordinator itself.
    assert_eq!(run.endpoints.len(), 1);
    assert_eq!(run.endpoints[0].endpoint, "coordinator");
    assert_eq!(run.endpoints[0].stats.jobs, distinct_jobs(&sharded) as u64);
}

/// The latent-timeout regression (the `client` path once read responses
/// with no deadline): a listener that accepts and never writes must cost
/// the shared codec one bounded `TimedOut` error, not a hang.
#[test]
fn codec_read_times_out_on_a_silent_listener() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let holder = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        // Hold the connection open and read until the client gives up
        // and closes (EOF) — never write a byte.
        let mut reader = BufReader::new(stream);
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {}
    });

    let started = Instant::now();
    let mut client = proto::LineClient::connect(&addr, Duration::from_millis(400)).unwrap();
    let err = client.request("{\"sources\": []}").expect_err("a silent server must time out");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    assert!(started.elapsed() < Duration::from_secs(20), "bounded, not a hang");
    drop(client);
    holder.join().unwrap();
}

/// The codec's deadline covers the whole response line, not each read: a
/// server trickling bytes faster than any per-read timeout — but never
/// finishing the line — must still be cut off at the overall budget.
#[test]
fn codec_bounds_a_slow_drip_endpoint() {
    use std::io::Write;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let dripper = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // One byte every 25 ms, never a newline. The sleep is the drip
        // generator (simulated hostile workload), not synchronization —
        // the assertion below synchronizes on the client's own deadline,
        // and the loop ends when the vanished client makes writes fail.
        while stream.write_all(b"x").is_ok() && stream.flush().is_ok() {
            std::thread::sleep(Duration::from_millis(25));
        }
    });

    let started = Instant::now();
    let mut client = proto::LineClient::connect(&addr, Duration::from_millis(400)).unwrap();
    let err = client.request("{\"sources\": []}").expect_err("a drip must not defeat the deadline");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    assert!(started.elapsed() < Duration::from_secs(20), "bounded, not a hang");
    drop(client);
    dripper.join().unwrap();
}

/// The serve-side shard-request contract: coordinates are validated,
/// and a server without a store (nothing to share with a coordinator)
/// rejects shard requests outright.
#[test]
fn shard_requests_validate_coords_and_need_a_store() {
    let sharded = study();

    // A fleet server (with a store) rejects malformed coordinates.
    let dir = temp_dir("coords");
    let fleet = Fleet::start(1, &dir, 1);
    let mut client = proto::LineClient::connect(&fleet.endpoints[0], TIMEOUT).unwrap();
    let body = serde_json::to_string(&sharded).unwrap();
    let index_only = format!("{{\"shard_index\":0,{}", &body[1..]);
    let reply = client.request(&index_only).unwrap();
    assert!(reply.contains("must be given together"), "{reply}");
    let reply = client.request(&shard_request(&sharded, 5, 2)).unwrap();
    assert!(reply.contains("out of range"), "{reply}");
    let ill_typed = format!("{{\"shard_index\":\"x\",\"shard_count\":2,{}", &body[1..]);
    let reply = client.request(&ill_typed).unwrap();
    assert!(reply.contains("unsigned integer"), "{reply}");
    // An absurd shard_count must cost one error response, never the
    // service (it once reached partition(), which materializes one
    // range per shard — an allocation a hostile request controlled).
    let reply = client.request(&shard_request(&sharded, 0, 1 << 40)).unwrap();
    assert!(reply.contains("exceeds"), "{reply}");
    drop(client);
    let stats = fleet.shutdown();
    assert_eq!(stats[0].errors, 4);
    assert_eq!(stats[0].requests, 0);

    // A store-less server rejects even a well-formed shard request.
    let server = bittrans_engine::Server::bind(&bittrans_engine::ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = proto::LineClient::connect(&addr, TIMEOUT).unwrap();
    let reply = client.request(&shard_request(&sharded, 0, 2)).unwrap();
    assert!(reply.contains("--cache-dir"), "{reply}");
    let reply = client.request("{\"shutdown\": true}").unwrap();
    assert!(reply.contains("\"shutdown\":true"), "{reply}");
    handle.join().unwrap();
}

/// A shard request runs exactly its slice of the key-sorted distinct job
/// list, answers with the batch statistics, and spills the results into
/// the shared store for the coordinator to read.
#[test]
fn shard_request_runs_the_range_and_fills_the_store() {
    let sharded = study();
    let dir = temp_dir("range");
    let fleet = Fleet::start(1, &dir, 1);
    let distinct = distinct_jobs(&sharded);
    let expected: Vec<usize> =
        partition(distinct, 2).into_iter().map(|range| range.len()).collect();

    let mut client = proto::LineClient::connect(&fleet.endpoints[0], TIMEOUT).unwrap();
    for (index, &size) in expected.iter().enumerate() {
        let reply = client.request(&shard_request(&sharded, index, 2)).unwrap();
        assert!(reply.starts_with("{\"ok\":true,"), "{reply}");
        assert!(reply.contains(&format!("\"shard_index\":{index}")), "{reply}");
        let value = serde_json::from_str(&reply).unwrap();
        let stats = proto::stats_from_value(value.get("stats").unwrap()).unwrap();
        assert_eq!(stats.jobs as usize, size, "shard {index} ran exactly its range");
    }
    drop(client);
    fleet.shutdown();

    // Both halves landed in the store: a fresh single-process run over it
    // is pure hits.
    let warm = Engine::default().with_cache_dir(&dir).unwrap();
    let report = sharded.study().unwrap().run(&warm);
    assert_eq!(report.stats.cache_hits, distinct as u64);
    assert_eq!(report.stats.cache_misses, 0);
}
