//! Fundamental identifier and attribute types shared by the whole IR.

use std::fmt;

/// Identifies a value (an input port or an operation result) inside a
/// [`Spec`](crate::spec::Spec).
///
/// Value ids are dense indices assigned in creation order; they are only
/// meaningful relative to the spec that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub(crate) u32);

impl ValueId {
    /// The dense index of this value.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `ValueId` from an index obtained via
    /// [`index`](Self::index). Intended for tables keyed by value.
    pub fn from_index(index: usize) -> Self {
        ValueId(u32::try_from(index).expect("value index overflow"))
    }
}

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifies an operation inside a [`Spec`](crate::spec::Spec).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The dense index of this operation.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs an `OpId` from an index obtained via
    /// [`index`](Self::index).
    pub fn from_index(index: usize) -> Self {
        OpId(u32::try_from(index).expect("op index overflow"))
    }
}

impl fmt::Debug for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Number representation used when an operation interprets its operands.
///
/// `Unsigned` operands are zero-extended, `Signed` operands sign-extended;
/// comparisons and multiplications follow the corresponding ordering and
/// product rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Signedness {
    /// Pure binary interpretation (zero extension).
    #[default]
    Unsigned,
    /// Two's-complement interpretation (sign extension).
    Signed,
}

impl Signedness {
    /// `true` for [`Signedness::Signed`].
    pub fn is_signed(self) -> bool {
        matches!(self, Signedness::Signed)
    }
}

impl fmt::Display for Signedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signedness::Unsigned => write!(f, "unsigned"),
            Signedness::Signed => write!(f, "signed"),
        }
    }
}

/// A contiguous range of bits `[lo, lo + width)` within a value.
///
/// Ranges use hardware conventions: bit 0 is the least-significant bit, and
/// the display form is `hi:lo` (inclusive), e.g. `[11:6]` for
/// `BitRange::new(6, 6)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitRange {
    lo: u32,
    width: u32,
}

impl BitRange {
    /// Creates a range of `width` bits starting at bit `lo`.
    pub fn new(lo: u32, width: u32) -> Self {
        BitRange { lo, width }
    }

    /// Creates the range covering bits `lo..=hi` (inclusive bounds, hardware
    /// style).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn inclusive(hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "bit range {hi}:{lo} has hi < lo");
        BitRange { lo, width: hi - lo + 1 }
    }

    /// Lowest bit index covered.
    pub fn lo(self) -> u32 {
        self.lo
    }

    /// Highest bit index covered.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn hi(self) -> u32 {
        assert!(self.width > 0, "empty bit range has no hi bit");
        self.lo + self.width - 1
    }

    /// Number of bits covered.
    pub fn width(self) -> u32 {
        self.width
    }

    /// One past the highest bit covered (`lo + width`).
    pub fn end(self) -> u32 {
        self.lo + self.width
    }

    /// `true` if the range covers no bits.
    pub fn is_empty(self) -> bool {
        self.width == 0
    }

    /// `true` if `bit` falls inside the range.
    pub fn contains(self, bit: u32) -> bool {
        bit >= self.lo && bit < self.end()
    }

    /// `true` if the two ranges share at least one bit.
    ///
    /// Empty ranges overlap nothing.
    pub fn overlaps(self, other: BitRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo < other.end() && other.lo < self.end()
    }
}

impl fmt::Display for BitRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 0 {
            write!(f, "[empty@{}]", self.lo)
        } else if self.width == 1 {
            write!(f, "[{}]", self.lo)
        } else {
            write!(f, "[{}:{}]", self.hi(), self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrange_bounds() {
        let r = BitRange::inclusive(11, 6);
        assert_eq!(r.lo(), 6);
        assert_eq!(r.hi(), 11);
        assert_eq!(r.width(), 6);
        assert_eq!(r.end(), 12);
        assert!(r.contains(6) && r.contains(11));
        assert!(!r.contains(5) && !r.contains(12));
    }

    #[test]
    fn bitrange_overlap() {
        let a = BitRange::new(0, 4);
        let b = BitRange::new(3, 2);
        let c = BitRange::new(4, 2);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(!a.overlaps(BitRange::new(1, 0)));
    }

    #[test]
    fn bitrange_display() {
        assert_eq!(BitRange::new(6, 6).to_string(), "[11:6]");
        assert_eq!(BitRange::new(3, 1).to_string(), "[3]");
        assert_eq!(BitRange::new(3, 0).to_string(), "[empty@3]");
    }

    #[test]
    #[should_panic(expected = "hi < lo")]
    fn bitrange_inclusive_validates() {
        BitRange::inclusive(2, 5);
    }

    #[test]
    fn id_roundtrip() {
        assert_eq!(ValueId::from_index(7).index(), 7);
        assert_eq!(OpId::from_index(3).index(), 3);
        assert_eq!(format!("{}", ValueId::from_index(7)), "v7");
        assert_eq!(format!("{:?}", OpId::from_index(3)), "op3");
    }

    #[test]
    fn signedness_helpers() {
        assert!(Signedness::Signed.is_signed());
        assert!(!Signedness::Unsigned.is_signed());
        assert_eq!(Signedness::default(), Signedness::Unsigned);
        assert_eq!(Signedness::Signed.to_string(), "signed");
    }
}
