//! Behavioural VHDL emission.
//!
//! Renders a [`Spec`] as a synthesisable-style VHDL entity/architecture pair
//! in the shape of the paper's Figures 1 a) and 2 a): one process, one
//! variable per operation result, `std_logic_vector` ports. This makes the
//! transformed specifications inspectable in the same form the paper prints
//! them.

use crate::op::OpKind;
use crate::operand::Operand;
use crate::spec::{Spec, ValueDef};
use crate::types::ValueId;
use std::fmt::Write as _;

/// Renders `spec` as behavioural VHDL.
///
/// The output is deterministic and intended for human inspection and
/// golden-file tests; it is not run through a VHDL simulator in this
/// repository (the functional simulator in `bittrans-sim` plays that role).
///
/// # Examples
///
/// ```
/// use bittrans_ir::prelude::*;
/// use bittrans_ir::vhdl;
///
/// let spec = Spec::parse(
///     "spec ex { input A: u8; input B: u8; C: u8 = A + B; output C; }",
/// ).unwrap();
/// let text = vhdl::emit(&spec);
/// assert!(text.contains("entity ex is"));
/// assert!(text.contains("C := "));
/// ```
pub fn emit(spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ieee;");
    let _ = writeln!(out, "use ieee.std_logic_1164.all;");
    let _ = writeln!(out, "use ieee.numeric_std.all;");
    let _ = writeln!(out);
    let _ = writeln!(out, "entity {} is", spec.name());
    let _ = writeln!(out, "  port (clk: in std_logic;");
    let mut ports = Vec::new();
    for &input in spec.inputs() {
        let v = spec.value(input);
        ports.push(format!(
            "        {}: in std_logic_vector({} downto 0)",
            spec.input_name(input),
            v.width() - 1
        ));
    }
    for port in spec.outputs() {
        let w = spec.operand_width(port.operand());
        ports.push(format!("        {}: out std_logic_vector({} downto 0)", port.name(), w - 1));
    }
    let _ = writeln!(out, "{});", ports.join(";\n"));
    let _ = writeln!(out, "end {};", spec.name());
    let _ = writeln!(out);
    let _ = writeln!(out, "architecture beh of {} is", spec.name());
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  main: process");
    for op in spec.ops() {
        let _ = writeln!(
            out,
            "    variable {}: std_logic_vector({} downto 0);",
            var_name(spec, op.result()),
            op.width() - 1
        );
    }
    let _ = writeln!(out, "  begin");
    for op in spec.ops() {
        let rhs = render_op(spec, op.id().index());
        let _ = writeln!(out, "    {} := {};", var_name(spec, op.result()), rhs);
    }
    for port in spec.outputs() {
        let _ = writeln!(out, "    {} <= {};", port.name(), render_operand(spec, port.operand()));
    }
    let _ = writeln!(out, "    wait on clk;");
    let _ = writeln!(out, "  end process main;");
    let _ = writeln!(out, "end beh;");
    out
}

/// The VHDL variable name for a value: its operation name when present,
/// otherwise a positional `v<n>` name; inputs use their port name.
fn var_name(spec: &Spec, v: ValueId) -> String {
    match spec.value(v).def() {
        ValueDef::Input { name } => name.clone(),
        ValueDef::Op(op) => match spec.op(*op).name() {
            Some(n) => n.to_string(),
            None => format!("v{}", v.index()),
        },
    }
}

fn render_operand(spec: &Spec, operand: &Operand) -> String {
    match operand {
        Operand::Value { value, range: None } => var_name(spec, *value),
        Operand::Value { value, range: Some(r) } => {
            if r.width() == 1 {
                format!("{}({})", var_name(spec, *value), r.lo())
            } else {
                format!("{}({} downto {})", var_name(spec, *value), r.hi(), r.lo())
            }
        }
        Operand::Const(bits) => format!("\"{bits:b}\""),
    }
}

fn render_op(spec: &Spec, op_index: usize) -> String {
    let op = &spec.ops()[op_index];
    let args: Vec<String> = op.operands().iter().map(|o| render_operand(spec, o)).collect();
    let unsigned = |s: &str| format!("unsigned({s})");
    match op.kind() {
        OpKind::Add => {
            let mut expr = format!("{} + {}", unsigned(&args[0]), unsigned(&args[1]));
            if args.len() == 3 {
                let _ = write!(expr, " + {}", unsigned(&args[2]));
            }
            format!("std_logic_vector(resize({expr}, {}))", op.width())
        }
        OpKind::Sub => format!(
            "std_logic_vector(resize({} - {}, {}))",
            unsigned(&args[0]),
            unsigned(&args[1]),
            op.width()
        ),
        OpKind::Neg => format!("std_logic_vector(resize(-signed({}), {}))", args[0], op.width()),
        OpKind::Mul => format!(
            "std_logic_vector(resize({} * {}, {}))",
            unsigned(&args[0]),
            unsigned(&args[1]),
            op.width()
        ),
        OpKind::Abs => {
            format!("std_logic_vector(resize(abs(signed({})), {}))", args[0], op.width())
        }
        OpKind::Lt => {
            bool_expr(&format!("{} < {}", unsigned(&args[0]), unsigned(&args[1])), op.width())
        }
        OpKind::Le => {
            bool_expr(&format!("{} <= {}", unsigned(&args[0]), unsigned(&args[1])), op.width())
        }
        OpKind::Gt => {
            bool_expr(&format!("{} > {}", unsigned(&args[0]), unsigned(&args[1])), op.width())
        }
        OpKind::Ge => {
            bool_expr(&format!("{} >= {}", unsigned(&args[0]), unsigned(&args[1])), op.width())
        }
        OpKind::Eq => bool_expr(&format!("{} = {}", args[0], args[1]), op.width()),
        OpKind::Ne => bool_expr(&format!("{} /= {}", args[0], args[1]), op.width()),
        OpKind::Max => format!("maximum({}, {})", args[0], args[1]),
        OpKind::Min => format!("minimum({}, {})", args[0], args[1]),
        OpKind::Shl(k) => format!(
            "std_logic_vector(resize(shift_left({}, {k}), {}))",
            unsigned(&args[0]),
            op.width()
        ),
        OpKind::Shr(k) => format!(
            "std_logic_vector(resize(shift_right({}, {k}), {}))",
            unsigned(&args[0]),
            op.width()
        ),
        OpKind::Not => format!("not {}", args[0]),
        OpKind::And => format!("{} and {}", args[0], args[1]),
        OpKind::Or => format!("{} or {}", args[0], args[1]),
        OpKind::Xor => format!("{} xor {}", args[0], args[1]),
        OpKind::Mux => format!("{} when {} = \"1\" else {}", args[1], args[0], args[2]),
        OpKind::RedOr => format!("(others => or_reduce({}))", args[0]),
        OpKind::RedAnd => format!("(others => and_reduce({}))", args[0]),
        OpKind::Concat => {
            // VHDL concatenation is MSB-first; our operand order is LSB-first.
            let mut rev = args.clone();
            rev.reverse();
            rev.join(" & ")
        }
    }
}

fn bool_expr(cond: &str, width: u32) -> String {
    let ones = "1".repeat(width as usize);
    let zeros = "0".repeat(width as usize);
    format!("\"{ones}\" when {cond} else \"{zeros}\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_paper_shape() {
        let spec = Spec::parse(
            "spec example {
                input A: u16; input B: u16; input D: u16; input F: u16;
                C: u16 = A + B;
                E: u16 = C + D;
                G: u16 = E + F;
                output G;
            }",
        )
        .unwrap();
        let text = emit(&spec);
        assert!(text.contains("entity example is"));
        assert!(text.contains("A: in std_logic_vector(15 downto 0)"));
        assert!(text.contains("G: out std_logic_vector(15 downto 0)"));
        assert!(text.contains("C := "));
        assert!(text.contains("main: process"));
        assert!(text.contains("end beh;"));
    }

    #[test]
    fn emits_slices_like_fig2() {
        let spec = Spec::parse(
            "spec beh2 {
                input A: u16; input B: u16;
                C: u7 = A[5:0] + B[5:0];
                C2: u7 = A[11:6] + B[11:6] + C[6];
                output C2;
            }",
        )
        .unwrap();
        let text = emit(&spec);
        assert!(text.contains("A(5 downto 0)"), "{text}");
        assert!(text.contains("A(11 downto 6)"));
        assert!(text.contains("C(6)"));
    }

    #[test]
    fn emits_all_kinds_without_panic() {
        let spec = Spec::parse(
            "spec all {
                input a: u8; input b: u8; input s: u1;
                add: u9 = a + b;
                sub: u8 = a - b;
                mul: u16 = a * b;
                ltr: u1 = a < b;
                ler: u1 = a <= b;
                gtr: u1 = a > b;
                ger: u1 = a >= b;
                eqr: u1 = a == b;
                ner: u1 = a != b;
                mx: u8 = max(a, b);
                mn: u8 = min(a, b);
                ng: i9 = -a;
                ab: i8 = abs(a);
                sl: u10 = a << 2;
                sr: u8 = a >> 1;
                nt: u8 = ~a;
                an: u8 = a & b;
                orr: u8 = a | b;
                xo: u8 = a ^ b;
                mu: u8 = mux(s, a, b);
                ro: u1 = redor(a);
                ra: u1 = redand(a);
                cc: u16 = concat(a, b);
                output cc;
            }",
        )
        .unwrap();
        let text = emit(&spec);
        for needle in ["abs(", "maximum(", "shift_left(", "or_reduce(", " & ", "when"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
