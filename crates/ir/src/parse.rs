//! Textual frontend for behavioural specifications.
//!
//! The grammar is a compact, VHDL-flavoured dataflow language; the paper's
//! motivational example looks like this:
//!
//! ```text
//! spec example {
//!     input A: u16;
//!     input B: u16;
//!     input D: u16;
//!     input F: u16;
//!     C: u16 = A + B;
//!     E: u16 = C + D;
//!     G: u16 = E + F;
//!     output G;
//! }
//! ```
//!
//! # Grammar
//!
//! ```text
//! spec      := "spec" IDENT "{" item* "}"
//! item      := "input" IDENT ":" type ";"
//!            | IDENT ":" type "=" expr ";"
//!            | "output" IDENT ("=" expr)? ";"
//! type      := ("u" | "i") WIDTH              -- e.g. u16, i8
//! expr      := or
//! or        := xor ("|" xor)*
//! xor       := and ("^" and)*
//! and       := cmp ("&" cmp)*
//! cmp       := shift (("<"|"<="|">"|">="|"=="|"!=") shift)?
//! shift     := addsub (("<<" | ">>") NUMBER)*
//! addsub    := term (("+" | "-") term)*
//! term      := unary ("*" unary)*
//! unary     := ("-" | "~")? primary
//! primary   := literal | call | IDENT slice? | "(" expr ")"
//! call      := ("max"|"min"|"abs"|"mux"|"redor"|"redand"|"concat")
//!              "(" expr ("," expr)* ")"
//! slice     := "[" NUMBER (":" NUMBER)? "]"  -- [hi:lo] or [bit]
//! literal   := NUMBER | WIDTH "'" ("d"|"b"|"h") DIGITS   -- e.g. 16'd42
//! ```
//!
//! # Typing rules
//!
//! Interior expression nodes take their *natural* width (`+`/`-`:
//! `max+1`, `*`: sum, comparisons: 1, shifts: width±amount, otherwise the
//! operand maximum). The statement's declared type fixes the width and
//! signedness of the *root* operation; all operations created by a
//! statement share the statement's signedness. A bare literal gets the
//! minimal width holding it unless written in sized form.

use crate::bits::Bits;
use crate::error::ParseError;
use crate::op::OpKind;
use crate::operand::Operand;
use crate::spec::{Spec, SpecBuilder};
use crate::types::{BitRange, Signedness};
use std::collections::BTreeMap;

/// Parses the textual DSL into a validated [`Spec`].
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first syntax error, unknown
/// identifier, or IR validation failure.
pub fn parse_spec(text: &str) -> Result<Spec, ParseError> {
    let tokens = lex(text)?;
    Parser::new(tokens).parse()
}

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(u64),
    /// Sized literal `width'basedigits`, e.g. `16'd42`.
    Sized(u32, Bits),
    Sym(&'static str),
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(text: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let bump = |i: &mut usize, line: &mut usize, col: &mut usize, c: char| {
        *i += 1;
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };
    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        if c.is_whitespace() {
            bump(&mut i, &mut line, &mut col, c);
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                let ch = chars[i];
                bump(&mut i, &mut line, &mut col, ch);
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                let ch = chars[i];
                s.push(ch);
                bump(&mut i, &mut line, &mut col, ch);
            }
            out.push(SpannedTok { tok: Tok::Ident(s), line: tline, col: tcol });
            continue;
        }
        if c.is_ascii_digit() {
            let mut n: u64 = 0;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                let ch = chars[i];
                if ch != '_' {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(ch as u64 - '0' as u64))
                        .ok_or_else(|| {
                            ParseError::new(tline, tcol, "number literal overflows u64")
                        })?;
                }
                bump(&mut i, &mut line, &mut col, ch);
            }
            // Sized literal?
            if i < chars.len() && chars[i] == '\'' {
                bump(&mut i, &mut line, &mut col, '\'');
                let base = chars.get(i).copied().ok_or_else(|| {
                    ParseError::new(line, col, "expected base character after `'`")
                })?;
                bump(&mut i, &mut line, &mut col, base);
                let mut digits = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    let ch = chars[i];
                    digits.push(ch);
                    bump(&mut i, &mut line, &mut col, ch);
                }
                let digits: String = digits.chars().filter(|&c| c != '_').collect();
                let width = u32::try_from(n)
                    .map_err(|_| ParseError::new(tline, tcol, "literal width too large"))?;
                let bits = match base {
                    'd' => {
                        let v: u64 = digits.parse().map_err(|_| {
                            ParseError::new(tline, tcol, format!("bad decimal digits `{digits}`"))
                        })?;
                        Bits::from_u64(v, width as usize)
                    }
                    'b' => Bits::parse_binary(&digits)
                        .ok_or_else(|| {
                            ParseError::new(tline, tcol, format!("bad binary digits `{digits}`"))
                        })?
                        .zext(width as usize),
                    'h' => {
                        let v = u64::from_str_radix(&digits, 16).map_err(|_| {
                            ParseError::new(tline, tcol, format!("bad hex digits `{digits}`"))
                        })?;
                        Bits::from_u64(v, width as usize)
                    }
                    other => {
                        return Err(ParseError::new(
                            tline,
                            tcol,
                            format!("unknown literal base `{other}` (use d, b or h)"),
                        ))
                    }
                };
                out.push(SpannedTok { tok: Tok::Sized(width, bits), line: tline, col: tcol });
            } else {
                out.push(SpannedTok { tok: Tok::Number(n), line: tline, col: tcol });
            }
            continue;
        }
        // Multi-character symbols first.
        let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
        let sym2 = match two.as_str() {
            "<<" => Some("<<"),
            ">>" => Some(">>"),
            "<=" => Some("<="),
            ">=" => Some(">="),
            "==" => Some("=="),
            "!=" => Some("!="),
            _ => None,
        };
        if let Some(s) = sym2 {
            let ch0 = chars[i];
            bump(&mut i, &mut line, &mut col, ch0);
            let ch1 = chars[i];
            bump(&mut i, &mut line, &mut col, ch1);
            out.push(SpannedTok { tok: Tok::Sym(s), line: tline, col: tcol });
            continue;
        }
        let sym1 = match c {
            '{' => "{",
            '}' => "}",
            '(' => "(",
            ')' => ")",
            '[' => "[",
            ']' => "]",
            ':' => ":",
            ';' => ";",
            ',' => ",",
            '=' => "=",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '~' => "~",
            '&' => "&",
            '|' => "|",
            '^' => "^",
            '<' => "<",
            '>' => ">",
            other => {
                return Err(ParseError::new(tline, tcol, format!("unexpected character `{other}`")))
            }
        };
        bump(&mut i, &mut line, &mut col, c);
        out.push(SpannedTok { tok: Tok::Sym(sym1), line: tline, col: tcol });
    }
    Ok(out)
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

/// Expression tree produced by the parser before lowering to IR.
#[derive(Debug, Clone)]
enum Expr {
    Operand(Operand),
    Ident(String, Option<BitRange>),
    Unary(OpKind, Box<Expr>),
    Binary(OpKind, Box<Expr>, Box<Expr>),
    Call(OpKind, Vec<Expr>),
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn new(toks: Vec<SpannedTok>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .map(|t| (t.line, t.col))
            .unwrap_or_else(|| self.toks.last().map(|t| (t.line, t.col + 1)).unwrap_or((1, 1)))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (l, c) = self.here();
        ParseError::new(l, c, msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Tok::Sym(t)) if *t == s => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected `{s}`, found {}", describe(other)))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected identifier, found {}", describe(other.as_ref()))))
            }
        }
    }

    fn expect_number(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Tok::Number(n)) => Ok(n),
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected number, found {}", describe(other.as_ref()))))
            }
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse(mut self) -> Result<Spec, ParseError> {
        match self.next() {
            Some(Tok::Ident(kw)) if kw == "spec" => {}
            other => {
                return Err(self.err(format!("expected `spec`, found {}", describe(other.as_ref()))))
            }
        }
        let name = self.expect_ident()?;
        self.expect_sym("{")?;
        let mut lower = Lowerer { builder: SpecBuilder::new(name), symbols: BTreeMap::new() };
        loop {
            match self.peek() {
                Some(Tok::Sym("}")) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Ident(kw)) if kw == "input" => {
                    self.pos += 1;
                    let name = self.expect_ident()?;
                    self.expect_sym(":")?;
                    let (width, signedness) = self.parse_type()?;
                    self.expect_sym(";")?;
                    if lower.symbols.contains_key(&name) {
                        return Err(self.err(format!("duplicate name `{name}`")));
                    }
                    let v = lower.builder.input(name.clone(), width);
                    lower.symbols.insert(name, Sym { operand: Operand::value(v), signedness });
                }
                Some(Tok::Ident(kw)) if kw == "output" => {
                    self.pos += 1;
                    let name = self.expect_ident()?;
                    if self.eat_sym("=") {
                        let expr = self.parse_expr()?;
                        self.expect_sym(";")?;
                        let operand =
                            lower.lower_root(&expr, None).map_err(|e| self.err(e.message))?;
                        lower.builder.output(name, operand);
                    } else {
                        self.expect_sym(";")?;
                        let sym = lower
                            .symbols
                            .get(&name)
                            .cloned()
                            .ok_or_else(|| self.err(format!("unknown output `{name}`")))?;
                        lower.builder.output(name, sym.operand);
                    }
                }
                Some(Tok::Ident(_)) => {
                    let name = self.expect_ident()?;
                    self.expect_sym(":")?;
                    let (width, signedness) = self.parse_type()?;
                    self.expect_sym("=")?;
                    let expr = self.parse_expr()?;
                    self.expect_sym(";")?;
                    if lower.symbols.contains_key(&name) {
                        return Err(self.err(format!("duplicate name `{name}`")));
                    }
                    let operand = lower
                        .lower_statement(&name, &expr, width)
                        .map_err(|e| self.err(e.message))?;
                    lower.symbols.insert(name, Sym { operand, signedness });
                }
                other => {
                    return Err(self.err(format!(
                        "expected `input`, `output`, a definition, or `}}`, found {}",
                        describe(other)
                    )))
                }
            }
        }
        lower.builder.finish().map_err(|e| ParseError::new(0, 0, e.to_string()))
    }

    /// Parses `u16` / `i8` style types.
    fn parse_type(&mut self) -> Result<(u32, Signedness), ParseError> {
        let t = self.expect_ident()?;
        let (sign, digits) = match t.split_at(1) {
            ("u", d) => (Signedness::Unsigned, d),
            ("i", d) => (Signedness::Signed, d),
            _ => return Err(self.err(format!("expected type like u16 or i8, found `{t}`"))),
        };
        let width: u32 =
            digits.parse().map_err(|_| self.err(format!("bad type width in `{t}`")))?;
        if width == 0 {
            return Err(self.err("type width must be positive"));
        }
        Ok((width, sign))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_xor()?;
        while self.eat_sym("|") {
            let rhs = self.parse_xor()?;
            lhs = Expr::Binary(OpKind::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_sym("^") {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(OpKind::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_sym("&") {
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(OpKind::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_shift()?;
        let kind = match self.peek() {
            Some(Tok::Sym("<")) => Some(OpKind::Lt),
            Some(Tok::Sym("<=")) => Some(OpKind::Le),
            Some(Tok::Sym(">")) => Some(OpKind::Gt),
            Some(Tok::Sym(">=")) => Some(OpKind::Ge),
            Some(Tok::Sym("==")) => Some(OpKind::Eq),
            Some(Tok::Sym("!=")) => Some(OpKind::Ne),
            _ => None,
        };
        if let Some(kind) = kind {
            self.pos += 1;
            let rhs = self.parse_shift()?;
            Ok(Expr::Binary(kind, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_addsub()?;
        loop {
            if self.eat_sym("<<") {
                let k = self.expect_number()? as u32;
                lhs = Expr::Unary(OpKind::Shl(k), Box::new(lhs));
            } else if self.eat_sym(">>") {
                let k = self.expect_number()? as u32;
                lhs = Expr::Unary(OpKind::Shr(k), Box::new(lhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_addsub(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            if self.eat_sym("+") {
                let rhs = self.parse_term()?;
                lhs = Expr::Binary(OpKind::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat_sym("-") {
                let rhs = self.parse_term()?;
                lhs = Expr::Binary(OpKind::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.eat_sym("*") {
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(OpKind::Mul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("-") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(OpKind::Neg, Box::new(e)));
        }
        if self.eat_sym("~") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary(OpKind::Not, Box::new(e)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Tok::Number(n)) => {
                let width = (64 - n.leading_zeros()).max(1) as usize;
                Ok(Expr::Operand(Operand::Const(Bits::from_u64(n, width))))
            }
            Some(Tok::Sized(_, bits)) => Ok(Expr::Operand(Operand::Const(bits))),
            Some(Tok::Sym("(")) => {
                let e = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                let call_kind = match name.as_str() {
                    "max" => Some(OpKind::Max),
                    "min" => Some(OpKind::Min),
                    "abs" => Some(OpKind::Abs),
                    "mux" => Some(OpKind::Mux),
                    "redor" => Some(OpKind::RedOr),
                    "redand" => Some(OpKind::RedAnd),
                    "concat" => Some(OpKind::Concat),
                    _ => None,
                };
                if let (Some(kind), Some(Tok::Sym("("))) = (call_kind, self.peek()) {
                    self.pos += 1;
                    let mut args = vec![self.parse_expr()?];
                    while self.eat_sym(",") {
                        args.push(self.parse_expr()?);
                    }
                    self.expect_sym(")")?;
                    return Ok(Expr::Call(kind, args));
                }
                // Optional slice.
                if self.eat_sym("[") {
                    let hi = self.expect_number()? as u32;
                    let range = if self.eat_sym(":") {
                        let lo = self.expect_number()? as u32;
                        if hi < lo {
                            return Err(self.err(format!("slice [{hi}:{lo}] has hi < lo")));
                        }
                        BitRange::inclusive(hi, lo)
                    } else {
                        BitRange::new(hi, 1)
                    };
                    self.expect_sym("]")?;
                    Ok(Expr::Ident(name, Some(range)))
                } else {
                    Ok(Expr::Ident(name, None))
                }
            }
            other => {
                Err(self.err(format!("expected expression, found {}", describe(other.as_ref()))))
            }
        }
    }
}

fn describe(tok: Option<&Tok>) -> String {
    match tok {
        None => "end of input".to_string(),
        Some(Tok::Ident(s)) => format!("`{s}`"),
        Some(Tok::Number(n)) => format!("number {n}"),
        Some(Tok::Sized(w, b)) => format!("literal {w}'{b:b}"),
        Some(Tok::Sym(s)) => format!("`{s}`"),
    }
}

// --------------------------------------------------------------------------
// Lowering to IR
// --------------------------------------------------------------------------

/// A named operand plus the signedness its declaration gave it.
#[derive(Clone, Debug)]
struct Sym {
    operand: Operand,
    signedness: Signedness,
}

struct Lowerer {
    builder: SpecBuilder,
    symbols: BTreeMap<String, Sym>,
}

impl Lowerer {
    /// Lowers a statement body at the declared width; the result is the
    /// operand the statement's name binds to. Operations take their
    /// signedness from their operands (signed wins), VHDL-style; the
    /// declared signedness is recorded on the symbol for later uses.
    fn lower_statement(
        &mut self,
        name: &str,
        expr: &Expr,
        width: u32,
    ) -> Result<Operand, ParseError> {
        self.lower_root(expr, Some((name, width)))
    }

    /// Lowers a root expression. With `target = Some((name, width))` the
    /// root operation is created at the declared width and named; bare
    /// operands are resized to the declared width.
    fn lower_root(
        &mut self,
        expr: &Expr,
        target: Option<(&str, u32)>,
    ) -> Result<Operand, ParseError> {
        match expr {
            Expr::Operand(_) | Expr::Ident(..) => {
                let (operand, sig) = self.lower(expr)?;
                match target {
                    Some((_, width)) if self.width_of(&operand) != width => {
                        self.resize(operand, width, sig)
                    }
                    _ => Ok(operand),
                }
            }
            _ => {
                let (name, width) = match target {
                    Some((n, w)) => (Some(n), Some(w)),
                    None => (None, None),
                };
                let (operand, _) = self.lower_node(expr, width, name)?;
                Ok(operand)
            }
        }
    }

    fn width_of(&self, operand: &Operand) -> u32 {
        match operand {
            Operand::Value { value, range: Some(r) } => {
                let _ = value;
                r.width()
            }
            Operand::Value { value, range: None } => self.builder.width_of(*value),
            Operand::Const(b) => b.width() as u32,
        }
    }

    /// Zero-/sign-extends or truncates `operand` to `width` using glue.
    fn resize(
        &mut self,
        operand: Operand,
        width: u32,
        signedness: Signedness,
    ) -> Result<Operand, ParseError> {
        let w = self.width_of(&operand);
        if w == width {
            return Ok(operand);
        }
        if w > width {
            return Ok(operand.subrange(BitRange::new(0, width)));
        }
        if let Operand::Const(b) = &operand {
            return Ok(Operand::Const(b.ext(width as usize, signedness.is_signed())));
        }
        let ext = width - w;
        let value = match signedness {
            Signedness::Unsigned => self.builder.op(
                OpKind::Concat,
                vec![operand, Operand::Const(Bits::zero(ext as usize))],
                width,
                Signedness::Unsigned,
                None,
            ),
            Signedness::Signed => {
                // Replicate the sign bit: fill = sign ? ones : zeros.
                let sign = operand.subrange(BitRange::new(w - 1, 1));
                let fill = self.builder.op(
                    OpKind::Mux,
                    vec![
                        sign,
                        Operand::Const(Bits::ones(ext as usize)),
                        Operand::Const(Bits::zero(ext as usize)),
                    ],
                    ext,
                    Signedness::Unsigned,
                    None,
                )?;
                self.builder.op(
                    OpKind::Concat,
                    vec![operand, fill.into()],
                    width,
                    Signedness::Unsigned,
                    None,
                )
            }
        }
        .map_err(ParseError::from)?;
        Ok(value.into())
    }

    /// Lowers any expression to an operand plus the signedness governing
    /// its interpretation (signed if any contributing name is signed).
    fn lower(&mut self, expr: &Expr) -> Result<(Operand, Signedness), ParseError> {
        match expr {
            Expr::Operand(op) => Ok((op.clone(), Signedness::Unsigned)),
            Expr::Ident(name, range) => {
                let sym = self
                    .symbols
                    .get(name)
                    .cloned()
                    .ok_or_else(|| ParseError::new(0, 0, format!("unknown name `{name}`")))?;
                match range {
                    None => Ok((sym.operand, sym.signedness)),
                    Some(r) => {
                        if r.end() > self.width_of(&sym.operand) {
                            return Err(ParseError::new(
                                0,
                                0,
                                format!(
                                    "slice {r} of `{name}` exceeds its width {}",
                                    self.width_of(&sym.operand)
                                ),
                            ));
                        }
                        // A slice re-interprets raw bits: unsigned.
                        Ok((sym.operand.subrange(*r), Signedness::Unsigned))
                    }
                }
            }
            _ => self.lower_node(expr, None, None),
        }
    }

    /// Lowers an operation node (unary/binary/call) into an IR op.
    fn lower_node(
        &mut self,
        expr: &Expr,
        force_width: Option<u32>,
        name: Option<&str>,
    ) -> Result<(Operand, Signedness), ParseError> {
        let (kind, lowered): (OpKind, Vec<(Operand, Signedness)>) = match expr {
            Expr::Unary(kind, a) => (*kind, vec![self.lower(a)?]),
            Expr::Binary(kind, a, b) => (*kind, vec![self.lower(a)?, self.lower(b)?]),
            Expr::Call(kind, exprs) => {
                let mut args = Vec::with_capacity(exprs.len());
                for e in exprs {
                    args.push(self.lower(e)?);
                }
                (*kind, args)
            }
            Expr::Operand(_) | Expr::Ident(..) => {
                unreachable!("operand exprs are handled by `lower`")
            }
        };
        let signedness = if lowered.iter().any(|(_, s)| s.is_signed()) {
            Signedness::Signed
        } else {
            Signedness::Unsigned
        };
        let args: Vec<Operand> = lowered.into_iter().map(|(o, _)| o).collect();
        let widths: Vec<u32> = args.iter().map(|a| self.width_of(a)).collect();
        let natural = natural_width(kind, &widths);
        let width = force_width.unwrap_or(natural);
        let value =
            self.builder.op(kind, args, width, signedness, name).map_err(ParseError::from)?;
        Ok((value.into(), signedness))
    }
}

/// The natural result width of `kind` applied to operands of `widths`.
fn natural_width(kind: OpKind, widths: &[u32]) -> u32 {
    let max = widths.iter().copied().max().unwrap_or(1);
    match kind {
        OpKind::Add | OpKind::Sub => max + 1,
        OpKind::Mul => widths.iter().sum(),
        OpKind::Neg => max + 1,
        OpKind::Abs => max,
        OpKind::Lt
        | OpKind::Le
        | OpKind::Gt
        | OpKind::Ge
        | OpKind::Eq
        | OpKind::Ne
        | OpKind::RedOr
        | OpKind::RedAnd => 1,
        OpKind::Max | OpKind::Min | OpKind::Not | OpKind::And | OpKind::Or | OpKind::Xor => max,
        OpKind::Mux => widths[1..].iter().copied().max().unwrap_or(1),
        OpKind::Shl(k) => max + k,
        OpKind::Shr(_) => max,
        OpKind::Concat => widths.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const THREE_ADDS: &str = "
        spec example {
            input A: u16;
            input B: u16;
            input D: u16;
            input F: u16;
            C: u16 = A + B;
            E: u16 = C + D;
            G: u16 = E + F;
            output G;
        }";

    #[test]
    fn parses_motivational_example() {
        let spec = parse_spec(THREE_ADDS).unwrap();
        assert_eq!(spec.name(), "example");
        assert_eq!(spec.ops().len(), 3);
        assert_eq!(spec.inputs().len(), 4);
        assert!(spec.is_additive_form());
        assert_eq!(spec.ops()[0].name(), Some("C"));
        assert_eq!(spec.ops()[0].width(), 16);
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let spec = parse_spec(
            "spec p { input a: u8; input b: u8; input c: u8;
              r: u16 = a + b * c;
              output r; }",
        )
        .unwrap();
        // mul first (natural width 16), then the root add at declared 16.
        let kinds: Vec<_> = spec.ops().iter().map(|o| o.kind()).collect();
        assert_eq!(kinds, vec![OpKind::Mul, OpKind::Add]);
        assert_eq!(spec.ops()[0].width(), 16);
        assert_eq!(spec.ops()[1].width(), 16);
    }

    #[test]
    fn parses_signed_types_and_calls() {
        let spec = parse_spec(
            "spec s { input a: i8; input b: i8;
              m: i8 = max(a, b);
              d: i9 = a - b;
              q: u1 = a < b;
              output m; output d; output q; }",
        )
        .unwrap();
        assert_eq!(spec.ops()[0].kind(), OpKind::Max);
        assert!(spec.ops()[0].signedness().is_signed());
        assert_eq!(spec.ops()[2].kind(), OpKind::Lt);
        assert_eq!(spec.ops()[2].width(), 1);
    }

    #[test]
    fn parses_slices_and_literals() {
        let spec = parse_spec(
            "spec s { input a: u16;
              lo: u8 = a[7:0] + 8'd3;
              bit: u1 = a[15];
              k: u4 = 4'b1010;
              output lo; output bit; output k; }",
        )
        .unwrap();
        assert_eq!(spec.ops().len(), 1); // only the add; bit/k are pure operands
        assert_eq!(spec.outputs().len(), 3);
        assert_eq!(spec.outputs()[2].operand().as_const().unwrap().to_u64(), 0b1010);
    }

    #[test]
    fn alias_resizes_with_glue() {
        let spec = parse_spec(
            "spec s { input a: u4;
              wide: u8 = a;
              output wide; }",
        )
        .unwrap();
        // zero extension uses one concat
        assert_eq!(spec.ops().len(), 1);
        assert_eq!(spec.ops()[0].kind(), OpKind::Concat);

        let spec = parse_spec(
            "spec s { input a: i4;
              wide: i8 = a;
              output wide; }",
        )
        .unwrap();
        // sign extension: mux + concat
        assert_eq!(spec.ops().len(), 2);
        assert_eq!(spec.ops()[0].kind(), OpKind::Mux);
    }

    #[test]
    fn parses_shifts_and_bitwise() {
        let spec = parse_spec(
            "spec s { input a: u8; input b: u8;
              x: u10 = a << 2;
              y: u8 = (a & b) | ~b;
              z: u8 = a >> 1;
              output x; output y; output z; }",
        )
        .unwrap();
        assert_eq!(spec.ops()[0].kind(), OpKind::Shl(2));
        let y_ops: Vec<_> = spec.ops().iter().map(|o| o.kind()).collect();
        assert!(y_ops.contains(&OpKind::And));
        assert!(y_ops.contains(&OpKind::Not));
        assert!(y_ops.contains(&OpKind::Or));
    }

    #[test]
    fn inline_output_expression() {
        let spec = parse_spec(
            "spec s { input a: u8; input b: u8;
              output sum = a + b; }",
        )
        .unwrap();
        assert_eq!(spec.outputs()[0].name(), "sum");
        assert_eq!(spec.ops().len(), 1);
        assert_eq!(spec.ops()[0].width(), 9); // natural width, no declared type
    }

    #[test]
    fn comments_are_skipped() {
        let spec = parse_spec(
            "spec s { // header
              input a: u4; // port
              output o = a + 1; }",
        )
        .unwrap();
        assert_eq!(spec.inputs().len(), 1);
    }

    #[test]
    fn error_reports_position() {
        let err = parse_spec("spec s { input a: u4; b: u4 = a @ a; output b; }").unwrap_err();
        assert!(err.to_string().contains('@'), "got: {err}");
        assert!(err.line >= 1);
    }

    #[test]
    fn error_on_unknown_name() {
        let err = parse_spec("spec s { input a: u4; output o = a + ghost; }").unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn error_on_duplicate_definition() {
        let err = parse_spec("spec s { input a: u4; a: u4 = a + 1; output a; }").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn error_on_bad_slice() {
        let err = parse_spec("spec s { input a: u4; output o = a[9:0]; }").unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn error_on_reversed_slice() {
        let err = parse_spec("spec s { input a: u8; output o = a[0:3]; }").unwrap_err();
        assert!(err.to_string().contains("hi < lo"));
    }

    #[test]
    fn sized_literal_bases() {
        let spec = parse_spec(
            "spec s { input a: u8;
              output h = a + 8'hff;
              output b = a + 8'b1111_0000;
              output d = a + 8'd200; }",
        )
        .unwrap();
        assert_eq!(spec.ops().len(), 3);
    }

    #[test]
    fn concat_call() {
        let spec = parse_spec(
            "spec s { input a: u4; input b: u4;
              w: u8 = concat(a, b);
              output w; }",
        )
        .unwrap();
        assert_eq!(spec.ops()[0].kind(), OpKind::Concat);
        assert_eq!(spec.ops()[0].width(), 8);
    }

    #[test]
    fn mux_call() {
        let spec = parse_spec(
            "spec s { input sel: u1; input a: u8; input b: u8;
              m: u8 = mux(sel, a, b);
              output m; }",
        )
        .unwrap();
        assert_eq!(spec.ops()[0].kind(), OpKind::Mux);
    }
}
