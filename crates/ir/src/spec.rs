//! The behavioural specification: a typed dataflow graph with ports.
//!
//! A [`Spec`] is the unit every pass in `bittrans` consumes and produces:
//! the user writes one (through [`SpecBuilder`] or the textual DSL), kernel
//! extraction rewrites it into *additive form*, and fragmentation rewrites
//! that into the transformed specification the paper synthesises.

use crate::bits::Bits;
use crate::error::IrError;
use crate::op::{OpKind, Operation};
use crate::operand::Operand;
use crate::types::{OpId, Signedness, ValueId};
use std::collections::BTreeMap;
use std::fmt;

/// How a value comes into existence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueDef {
    /// An input port with the given name.
    Input {
        /// Port name, unique within the spec.
        name: String,
    },
    /// The result of an operation.
    Op(OpId),
}

/// A value of the dataflow graph: an input port or an operation result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Value {
    pub(crate) id: ValueId,
    pub(crate) width: u32,
    pub(crate) def: ValueDef,
}

impl Value {
    /// The value's id.
    pub fn id(&self) -> ValueId {
        self.id
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// How the value is defined.
    pub fn def(&self) -> &ValueDef {
        &self.def
    }

    /// `true` if the value is an input port.
    pub fn is_input(&self) -> bool {
        matches!(self.def, ValueDef::Input { .. })
    }

    /// The defining operation, if any.
    pub fn defining_op(&self) -> Option<OpId> {
        match self.def {
            ValueDef::Op(op) => Some(op),
            ValueDef::Input { .. } => None,
        }
    }
}

/// A named output of the specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputPort {
    pub(crate) name: String,
    pub(crate) operand: Operand,
}

impl OutputPort {
    /// Port name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operand driven onto the port.
    pub fn operand(&self) -> &Operand {
        &self.operand
    }
}

/// A behavioural specification: dataflow graph plus input/output ports.
///
/// Construct one with [`SpecBuilder`] or by parsing the textual DSL via
/// [`Spec::parse`]. Operations are stored in topological order — an
/// operand always references a value defined earlier — which every
/// analysis in the workspace relies on.
///
/// # Examples
///
/// ```
/// use bittrans_ir::prelude::*;
///
/// # fn main() -> Result<(), IrError> {
/// let mut b = SpecBuilder::new("example");
/// let a = b.input("A", 16);
/// let bb = b.input("B", 16);
/// let d = b.input("D", 16);
/// let c = b.op(OpKind::Add, vec![a.into(), bb.into()], 16, Signedness::Unsigned, Some("C"))?;
/// let e = b.op(OpKind::Add, vec![c.into(), d.into()], 16, Signedness::Unsigned, Some("E"))?;
/// b.output("E", e);
/// let spec = b.finish()?;
/// assert_eq!(spec.ops().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spec {
    pub(crate) name: String,
    pub(crate) values: Vec<Value>,
    pub(crate) ops: Vec<Operation>,
    pub(crate) inputs: Vec<ValueId>,
    pub(crate) outputs: Vec<OutputPort>,
}

impl Spec {
    /// Parses the textual DSL form; see [`crate::parse`] for the grammar.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::error::ParseError`] describing the first syntax or
    /// validation problem.
    pub fn parse(text: &str) -> Result<Spec, crate::error::ParseError> {
        crate::parse::parse_spec(text)
    }

    /// The specification's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All operations in topological order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Looks up one operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this spec.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// All values (inputs first, then op results, in creation order).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Looks up one value.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this spec.
    pub fn value(&self, id: ValueId) -> &Value {
        &self.values[id.index()]
    }

    /// Input port value ids, in declaration order.
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// Output ports, in declaration order.
    pub fn outputs(&self) -> &[OutputPort] {
        &self.outputs
    }

    /// The input port with the given name.
    pub fn input_by_name(&self, name: &str) -> Option<ValueId> {
        self.inputs
            .iter()
            .copied()
            .find(|&v| matches!(self.value(v).def(), ValueDef::Input { name: n } if n == name))
    }

    /// The name of an input port value.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an input.
    pub fn input_name(&self, id: ValueId) -> &str {
        match self.value(id).def() {
            ValueDef::Input { name } => name,
            ValueDef::Op(_) => panic!("{id} is not an input port"),
        }
    }

    /// Effective width of an operand: the slice width, the full value width,
    /// or the constant width.
    ///
    /// # Panics
    ///
    /// Panics if the operand references a value outside this spec.
    pub fn operand_width(&self, operand: &Operand) -> u32 {
        match operand {
            Operand::Value { value, range: Some(r) } => {
                let _ = self.value(*value);
                r.width()
            }
            Operand::Value { value, range: None } => self.value(*value).width(),
            Operand::Const(bits) => bits.width() as u32,
        }
    }

    /// The consumers of every value: `users[v]` lists `(op, operand index)`
    /// pairs reading `v`. Output ports are not included.
    pub fn users(&self) -> BTreeMap<ValueId, Vec<(OpId, usize)>> {
        let mut map: BTreeMap<ValueId, Vec<(OpId, usize)>> = BTreeMap::new();
        for op in &self.ops {
            for (i, operand) in op.operands().iter().enumerate() {
                if let Some(v) = operand.value_id() {
                    map.entry(v).or_default().push((op.id(), i));
                }
            }
        }
        map
    }

    /// `true` when every non-glue operation is an `Add` — the *additive
    /// form* produced by kernel extraction.
    pub fn is_additive_form(&self) -> bool {
        self.ops.iter().all(|op| op.kind() == OpKind::Add || op.kind().is_glue())
    }

    /// Counts of operations by family; the paper reports "number of
    /// operations" deltas between the original and transformed specs.
    pub fn stats(&self) -> SpecStats {
        let mut s = SpecStats::default();
        for op in &self.ops {
            s.total += 1;
            match op.kind() {
                OpKind::Add => s.adds += 1,
                OpKind::Mul => s.muls += 1,
                k if k.is_glue() => s.glue += 1,
                _ => s.other += 1,
            }
            s.max_width = s.max_width.max(op.width());
        }
        s
    }

    /// Re-checks every structural invariant (arity, bounds, widths,
    /// topological order, port uniqueness).
    ///
    /// Builder-produced specs are always valid; call this after manual
    /// surgery on a cloned spec.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut seen = std::collections::BTreeSet::new();
        for &input in &self.inputs {
            let name = self.input_name(input).to_string();
            if !seen.insert(name.clone()) {
                return Err(IrError::DuplicatePort(name));
            }
        }
        for op in &self.ops {
            validate_op(self, op)?;
            // topological order: operands reference values defined earlier
            for operand in op.operands() {
                if let Some(v) = operand.value_id() {
                    if v.index() >= self.values.len() {
                        return Err(IrError::UnknownValue(v));
                    }
                    if let Some(def_op) = self.value(v).defining_op() {
                        if def_op.index() >= op.id().index() {
                            return Err(IrError::WidthMismatch {
                                op: op.id(),
                                reason: format!(
                                    "operand {v} is defined by later operation {def_op} (cycle)"
                                ),
                            });
                        }
                    }
                }
            }
        }
        for port in &self.outputs {
            if !seen.insert(port.name.clone()) {
                return Err(IrError::DuplicatePort(port.name.clone()));
            }
            if let Some(v) = port.operand.value_id() {
                if v.index() >= self.values.len() {
                    return Err(IrError::BadOutput {
                        port: port.name.clone(),
                        reason: format!("references unknown value {v}"),
                    });
                }
                if let Some(r) = port.operand.range() {
                    if r.end() > self.value(v).width() {
                        return Err(IrError::BadOutput {
                            port: port.name.clone(),
                            reason: format!(
                                "slice {r} exceeds value width {}",
                                self.value(v).width()
                            ),
                        });
                    }
                }
            }
        }
        if self.outputs.is_empty() {
            return Err(IrError::NoOutputs);
        }
        Ok(())
    }
}

/// Operation counts reported by [`Spec::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Total number of operations.
    pub total: usize,
    /// Number of `Add` operations.
    pub adds: usize,
    /// Number of `Mul` operations.
    pub muls: usize,
    /// Number of glue (bitwise/wiring) operations.
    pub glue: usize,
    /// Everything else (sub, comparisons, …).
    pub other: usize,
    /// Widest operation result.
    pub max_width: u32,
}

impl SpecStats {
    /// Operations that are not glue — what the paper counts as "operations".
    pub fn non_glue(&self) -> usize {
        self.total - self.glue
    }
}

/// Incrementally constructs a valid [`Spec`].
///
/// Every `op` call validates its arguments against the values added so far,
/// so an invalid graph is rejected at the point of the mistake.
///
/// # Examples
///
/// ```
/// use bittrans_ir::prelude::*;
///
/// # fn main() -> Result<(), IrError> {
/// let mut b = SpecBuilder::new("three_adds");
/// let a = b.input("A", 16);
/// let b_in = b.input("B", 16);
/// let c = b.add("C", a, b_in, 16)?;
/// b.output("C", c);
/// let spec = b.finish()?;
/// assert_eq!(spec.name(), "three_adds");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    spec: Spec,
}

impl SpecBuilder {
    /// Starts a new, empty specification.
    pub fn new(name: impl Into<String>) -> Self {
        SpecBuilder {
            spec: Spec {
                name: name.into(),
                values: Vec::new(),
                ops: Vec::new(),
                inputs: Vec::new(),
                outputs: Vec::new(),
            },
        }
    }

    /// Declares an input port of `width` bits and returns its value.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> ValueId {
        assert!(width > 0, "input ports must be at least one bit wide");
        let id = ValueId::from_index(self.spec.values.len());
        self.spec.values.push(Value { id, width, def: ValueDef::Input { name: name.into() } });
        self.spec.inputs.push(id);
        id
    }

    /// Appends an operation and returns the value it defines.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] when the operands violate the kind's arity or
    /// width rules, reference unknown values, or slice out of bounds.
    pub fn op(
        &mut self,
        kind: OpKind,
        operands: Vec<Operand>,
        width: u32,
        signedness: Signedness,
        name: Option<&str>,
    ) -> Result<ValueId, IrError> {
        self.op_with_origin(kind, operands, width, signedness, name, None)
    }

    /// Like [`op`](Self::op) but records provenance to an operation of a
    /// source specification (used by the transformation passes).
    ///
    /// # Errors
    ///
    /// Same as [`op`](Self::op).
    pub fn op_with_origin(
        &mut self,
        kind: OpKind,
        operands: Vec<Operand>,
        width: u32,
        signedness: Signedness,
        name: Option<&str>,
        origin: Option<OpId>,
    ) -> Result<ValueId, IrError> {
        let op_id = OpId::from_index(self.spec.ops.len());
        let result = ValueId::from_index(self.spec.values.len());
        let op = Operation {
            id: op_id,
            kind,
            operands,
            width,
            signedness,
            result,
            name: name.map(str::to_owned),
            origin,
        };
        validate_op(&self.spec, &op)?;
        self.spec.values.push(Value { id: result, width, def: ValueDef::Op(op_id) });
        self.spec.ops.push(op);
        Ok(result)
    }

    /// Declares an output port driven by `operand`.
    pub fn output(&mut self, name: impl Into<String>, operand: impl Into<Operand>) {
        self.spec.outputs.push(OutputPort { name: name.into(), operand: operand.into() });
    }

    /// Finishes construction, validating ports.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] if the spec has no outputs, duplicated port
    /// names, or invalid output operands.
    pub fn finish(self) -> Result<Spec, IrError> {
        self.spec.validate()?;
        Ok(self.spec)
    }

    /// The number of operations added so far.
    pub fn op_count(&self) -> usize {
        self.spec.ops.len()
    }

    /// Width of a previously added value.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this builder.
    pub fn width_of(&self, v: ValueId) -> u32 {
        self.spec.value(v).width()
    }

    // --- convenience constructors (all panic on invalid input; use `op`
    //     for the fallible API) -------------------------------------------

    /// Unsigned addition `a + b` at `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if the operands are invalid; see [`op`](Self::op) for the
    /// fallible form.
    pub fn add(
        &mut self,
        name: &str,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        width: u32,
    ) -> Result<ValueId, IrError> {
        self.op(OpKind::Add, vec![a.into(), b.into()], width, Signedness::Unsigned, Some(name))
    }

    /// Addition with carry-in `a + b + cin` at `width` bits.
    ///
    /// # Errors
    ///
    /// Returns an error if `cin` is not one bit wide.
    pub fn add_carry(
        &mut self,
        name: &str,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        cin: impl Into<Operand>,
        width: u32,
    ) -> Result<ValueId, IrError> {
        self.op(
            OpKind::Add,
            vec![a.into(), b.into(), cin.into()],
            width,
            Signedness::Unsigned,
            Some(name),
        )
    }

    /// Subtraction `a - b` at `width` bits.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn sub(
        &mut self,
        name: &str,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        width: u32,
        signedness: Signedness,
    ) -> Result<ValueId, IrError> {
        self.op(OpKind::Sub, vec![a.into(), b.into()], width, signedness, Some(name))
    }

    /// Multiplication `a * b` at `width` bits.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn mul(
        &mut self,
        name: &str,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        width: u32,
        signedness: Signedness,
    ) -> Result<ValueId, IrError> {
        self.op(OpKind::Mul, vec![a.into(), b.into()], width, signedness, Some(name))
    }

    /// Comparison `a < b` producing one bit.
    ///
    /// # Errors
    ///
    /// Propagates operand validation failures.
    pub fn lt(
        &mut self,
        name: &str,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        signedness: Signedness,
    ) -> Result<ValueId, IrError> {
        self.op(OpKind::Lt, vec![a.into(), b.into()], 1, signedness, Some(name))
    }

    /// A constant value materialised as an operand (no operation is added).
    pub fn constant(&self, v: u64, width: usize) -> Operand {
        Operand::Const(Bits::from_u64(v, width))
    }
}

/// Validates a single operation against the spec built so far.
pub(crate) fn validate_op(spec: &Spec, op: &Operation) -> Result<(), IrError> {
    if op.width == 0 {
        return Err(IrError::ZeroWidth(op.id));
    }
    let (min, max) = op.kind.arity();
    if op.operands.len() < min || op.operands.len() > max {
        return Err(IrError::BadArity {
            op: op.id,
            kind: op.kind.mnemonic(),
            got: op.operands.len(),
            expected: (min, max),
        });
    }
    for operand in &op.operands {
        if let Operand::Value { value, range } = operand {
            if value.index() >= spec.values.len() {
                return Err(IrError::UnknownValue(*value));
            }
            let vw = spec.value(*value).width();
            if let Some(r) = range {
                if r.end() > vw || r.is_empty() {
                    return Err(IrError::RangeOutOfBounds {
                        op: op.id,
                        value: *value,
                        range: *r,
                        value_width: vw,
                    });
                }
            }
        }
    }
    // Kind-specific width rules.
    match op.kind {
        OpKind::Add if op.operands.len() == 3 => {
            let cw = spec.operand_width(&op.operands[2]);
            if cw != 1 {
                return Err(IrError::WidthMismatch {
                    op: op.id,
                    reason: format!("carry-in must be 1 bit, got {cw}"),
                });
            }
        }
        OpKind::Mux => {
            let sw = spec.operand_width(&op.operands[0]);
            if sw != 1 {
                return Err(IrError::WidthMismatch {
                    op: op.id,
                    reason: format!("mux select must be 1 bit, got {sw}"),
                });
            }
        }
        OpKind::Concat => {
            let sum: u32 = op.operands.iter().map(|o| spec.operand_width(o)).sum();
            if sum != op.width {
                return Err(IrError::WidthMismatch {
                    op: op.id,
                    reason: format!("concat of {sum} bits declared as {} bits", op.width),
                });
            }
        }
        _ => {}
    }
    Ok(())
}

impl fmt::Display for Spec {
    /// Renders the human-oriented DSL-like dump used by the examples and
    /// diffs. This format is *not* re-parseable (op ids, unnamed
    /// operations, provenance and glue constructs have no surface
    /// syntax); for a guaranteed round trip use
    /// [`Spec::to_canonical`](crate::canonical) /
    /// [`Spec::from_canonical`], and see `parse` for the hand-written
    /// input grammar.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "spec {} {{", self.name)?;
        for &input in &self.inputs {
            let v = self.value(input);
            writeln!(f, "  input {}: u{};  // {}", self.input_name(input), v.width(), input)?;
        }
        for op in &self.ops {
            let args: Vec<String> = op.operands().iter().map(|o| o.to_string()).collect();
            writeln!(
                f,
                "  {} = {}({}) : {}{};",
                op.result(),
                op.kind(),
                args.join(", "),
                if op.signedness().is_signed() { "i" } else { "u" },
                op.width(),
            )?;
        }
        for port in &self.outputs {
            writeln!(f, "  output {} = {};", port.name(), port.operand())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BitRange;

    fn three_adds() -> Spec {
        let mut b = SpecBuilder::new("ex");
        let a = b.input("A", 16);
        let b_ = b.input("B", 16);
        let d = b.input("D", 16);
        let f = b.input("F", 16);
        let c = b.add("C", a, b_, 16).unwrap();
        let e = b.add("E", c, d, 16).unwrap();
        let g = b.add("G", e, f, 16).unwrap();
        b.output("G", g);
        b.finish().unwrap()
    }

    #[test]
    fn build_and_inspect() {
        let s = three_adds();
        assert_eq!(s.ops().len(), 3);
        assert_eq!(s.inputs().len(), 4);
        assert_eq!(s.outputs().len(), 1);
        assert_eq!(s.op(OpId::from_index(0)).name(), Some("C"));
        assert!(s.is_additive_form());
        assert_eq!(s.stats().adds, 3);
        assert_eq!(s.stats().non_glue(), 3);
        assert_eq!(s.input_by_name("D"), Some(ValueId::from_index(2)));
        assert_eq!(s.input_name(ValueId::from_index(0)), "A");
        s.validate().unwrap();
    }

    #[test]
    fn users_map() {
        let s = three_adds();
        let users = s.users();
        let c = s.op(OpId::from_index(0)).result();
        assert_eq!(users[&c], vec![(OpId::from_index(1), 0)]);
        // G is only used by the output port, not by any op.
        let g = s.op(OpId::from_index(2)).result();
        assert!(!users.contains_key(&g));
    }

    #[test]
    fn rejects_unknown_value() {
        let mut b = SpecBuilder::new("bad");
        let a = b.input("A", 4);
        let ghost = ValueId::from_index(99);
        let err = b
            .op(OpKind::Add, vec![a.into(), ghost.into()], 4, Signedness::Unsigned, None)
            .unwrap_err();
        assert_eq!(err, IrError::UnknownValue(ghost));
    }

    #[test]
    fn rejects_out_of_bounds_slice() {
        let mut b = SpecBuilder::new("bad");
        let a = b.input("A", 4);
        let err = b
            .op(
                OpKind::Not,
                vec![Operand::slice(a, BitRange::new(2, 4))],
                4,
                Signedness::Unsigned,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, IrError::RangeOutOfBounds { .. }));
    }

    #[test]
    fn rejects_bad_arity() {
        let mut b = SpecBuilder::new("bad");
        let a = b.input("A", 4);
        let err = b.op(OpKind::Mux, vec![a.into()], 4, Signedness::Unsigned, None).unwrap_err();
        assert!(matches!(err, IrError::BadArity { .. }));
    }

    #[test]
    fn rejects_wide_carry() {
        let mut b = SpecBuilder::new("bad");
        let a = b.input("A", 4);
        let c = b.input("CIN", 2);
        let err = b.add_carry("X", a, a, c, 5).unwrap_err();
        assert!(matches!(err, IrError::WidthMismatch { .. }));
    }

    #[test]
    fn rejects_bad_concat_width() {
        let mut b = SpecBuilder::new("bad");
        let a = b.input("A", 4);
        let err = b
            .op(OpKind::Concat, vec![a.into(), a.into()], 9, Signedness::Unsigned, None)
            .unwrap_err();
        assert!(matches!(err, IrError::WidthMismatch { .. }));
    }

    #[test]
    fn rejects_zero_width() {
        let mut b = SpecBuilder::new("bad");
        let a = b.input("A", 4);
        let err = b.op(OpKind::Not, vec![a.into()], 0, Signedness::Unsigned, None).unwrap_err();
        assert!(matches!(err, IrError::ZeroWidth(_)));
    }

    #[test]
    fn rejects_no_outputs() {
        let mut b = SpecBuilder::new("empty");
        b.input("A", 4);
        assert_eq!(b.finish().unwrap_err(), IrError::NoOutputs);
    }

    #[test]
    fn rejects_duplicate_ports() {
        let mut b = SpecBuilder::new("dup");
        let a = b.input("A", 4);
        b.input("A", 4);
        b.output("O", a);
        assert_eq!(b.finish().unwrap_err(), IrError::DuplicatePort("A".into()));

        let mut b = SpecBuilder::new("dup2");
        let a = b.input("A", 4);
        b.output("O", a);
        b.output("O", a);
        assert_eq!(b.finish().unwrap_err(), IrError::DuplicatePort("O".into()));
    }

    #[test]
    fn rejects_bad_output_slice() {
        let mut b = SpecBuilder::new("bad");
        let a = b.input("A", 4);
        b.output("O", Operand::slice(a, BitRange::new(2, 4)));
        assert!(matches!(b.finish().unwrap_err(), IrError::BadOutput { .. }));
    }

    #[test]
    fn display_dump() {
        let s = three_adds();
        let text = s.to_string();
        assert!(text.contains("spec ex {"));
        assert!(text.contains("input A: u16"));
        assert!(text.contains("add("));
        assert!(text.contains("output G"));
    }

    #[test]
    fn operand_width_resolution() {
        let s = three_adds();
        let a = ValueId::from_index(0);
        assert_eq!(s.operand_width(&a.into()), 16);
        assert_eq!(s.operand_width(&Operand::slice(a, BitRange::new(3, 5))), 5);
        assert_eq!(s.operand_width(&Operand::const_u64(7, 3)), 3);
    }
}
