//! Error types for IR construction, validation and parsing.

use crate::types::{BitRange, OpId, ValueId};
use std::fmt;

/// Errors produced while building or validating a specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// An operand references a value id that does not exist in the spec.
    UnknownValue(ValueId),
    /// An operand slice reaches outside the referenced value.
    RangeOutOfBounds {
        /// The referencing operation.
        op: OpId,
        /// The referenced value.
        value: ValueId,
        /// The offending range.
        range: BitRange,
        /// Width of the referenced value.
        value_width: u32,
    },
    /// The number of operands does not match the operation kind's arity.
    BadArity {
        /// The offending operation.
        op: OpId,
        /// Mnemonic of the operation kind.
        kind: &'static str,
        /// Number of operands supplied.
        got: usize,
        /// Acceptable operand count range.
        expected: (usize, usize),
    },
    /// An operation constraint on widths was violated (e.g. a carry-in that
    /// is not one bit wide, or a concat whose width is not the operand sum).
    WidthMismatch {
        /// The offending operation.
        op: OpId,
        /// Description of the violated constraint.
        reason: String,
    },
    /// An operation has a zero result width.
    ZeroWidth(OpId),
    /// Two ports share the same name.
    DuplicatePort(String),
    /// An output port references an unknown or invalid operand.
    BadOutput {
        /// Name of the output port.
        port: String,
        /// Description of the problem.
        reason: String,
    },
    /// The specification has no output ports, so it computes nothing.
    NoOutputs,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownValue(v) => write!(f, "operand references unknown value {v}"),
            IrError::RangeOutOfBounds { op, value, range, value_width } => write!(
                f,
                "operation {op} slices {value}{range} but the value is only {value_width} bits wide"
            ),
            IrError::BadArity { op, kind, got, expected } => {
                if expected.0 == expected.1 {
                    write!(f, "operation {op} ({kind}) takes {} operands, got {got}", expected.0)
                } else {
                    write!(
                        f,
                        "operation {op} ({kind}) takes {}..={} operands, got {got}",
                        expected.0, expected.1
                    )
                }
            }
            IrError::WidthMismatch { op, reason } => {
                write!(f, "operation {op} has inconsistent widths: {reason}")
            }
            IrError::ZeroWidth(op) => write!(f, "operation {op} has zero result width"),
            IrError::DuplicatePort(name) => write!(f, "duplicate port name `{name}`"),
            IrError::BadOutput { port, reason } => {
                write!(f, "output `{port}` is invalid: {reason}")
            }
            IrError::NoOutputs => write!(f, "specification has no outputs"),
        }
    }
}

impl std::error::Error for IrError {}

/// Errors produced by the textual specification parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError { line, col, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<IrError> for ParseError {
    fn from(e: IrError) -> Self {
        ParseError::new(0, 0, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{OpId, ValueId};

    #[test]
    fn display_messages() {
        let e = IrError::UnknownValue(ValueId::from_index(4));
        assert!(e.to_string().contains("v4"));
        let e =
            IrError::BadArity { op: OpId::from_index(1), kind: "mux", got: 2, expected: (3, 3) };
        assert!(e.to_string().contains("takes 3 operands, got 2"));
        let e =
            IrError::BadArity { op: OpId::from_index(1), kind: "add", got: 5, expected: (2, 3) };
        assert!(e.to_string().contains("2..=3"));
        let p = ParseError::new(3, 7, "expected `;`");
        assert_eq!(p.to_string(), "parse error at 3:7: expected `;`");
    }
}
