//! Operation kinds and the [`Operation`] node of the dataflow graph.

use crate::operand::Operand;
use crate::types::{OpId, Signedness, ValueId};
use std::fmt;

/// The kind of an operation node.
///
/// Kinds are split in three families that later passes treat differently:
///
/// * **Additive kernel** ([`OpKind::is_additive`]): operations whose cost is
///   dominated by a carry-propagating addition. These are what the paper's
///   kernel extraction reduces everything to, and what fragmentation breaks
///   up.
/// * **Glue** ([`OpKind::is_glue`]): bitwise/wiring logic introduced by
///   kernel extraction (inverters, partial-product ANDs, muxes, …). Glue
///   carries no δ-delay in the paper's timing model but does cost area.
/// * **Macro operations**: `Mul`, `Sub`, comparisons, `Max`/`Min`, … — the
///   user-facing operations that kernel extraction rewrites away.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Addition: `a + b (+ cin)`, modulo `2^width`.
    ///
    /// Takes two operands plus an optional third 1-bit carry-in operand.
    /// Making the result one bit wider than the operands preserves the
    /// carry out, which fragments rely on.
    Add,
    /// Subtraction `a - b`, modulo `2^width`.
    Sub,
    /// Negation `-a`, modulo `2^width`.
    Neg,
    /// Multiplication `a * b`, modulo `2^width`; operands are interpreted
    /// per the operation's [`Signedness`].
    Mul,
    /// Absolute value of a signed operand, modulo `2^width`.
    Abs,
    /// `a < b` (1-bit result, zero-extended to `width`).
    Lt,
    /// `a <= b`.
    Le,
    /// `a > b`.
    Gt,
    /// `a >= b`.
    Ge,
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
    /// The larger of `a` and `b` per the operation's signedness.
    Max,
    /// The smaller of `a` and `b` per the operation's signedness.
    Min,
    /// Left shift by a constant amount (zero fill).
    Shl(u32),
    /// Right shift by a constant amount (zero or sign fill per signedness).
    Shr(u32),
    /// Bitwise NOT (glue).
    Not,
    /// Bitwise AND (glue).
    And,
    /// Bitwise OR (glue).
    Or,
    /// Bitwise XOR (glue).
    Xor,
    /// Two-way multiplexer: operands `[sel, a, b]`, result `sel ? a : b`
    /// (glue).
    Mux,
    /// OR-reduction of the single operand to one bit (glue).
    RedOr,
    /// AND-reduction of the single operand to one bit (glue).
    RedAnd,
    /// Concatenation of operands, first operand lowest (wiring glue).
    Concat,
}

impl OpKind {
    /// Number of operands the kind accepts, as `(min, max)`.
    pub fn arity(self) -> (usize, usize) {
        match self {
            OpKind::Add => (2, 3),
            OpKind::Sub
            | OpKind::Mul
            | OpKind::Lt
            | OpKind::Le
            | OpKind::Gt
            | OpKind::Ge
            | OpKind::Eq
            | OpKind::Ne
            | OpKind::Max
            | OpKind::Min
            | OpKind::And
            | OpKind::Or
            | OpKind::Xor => (2, 2),
            OpKind::Neg
            | OpKind::Abs
            | OpKind::Not
            | OpKind::RedOr
            | OpKind::RedAnd
            | OpKind::Shl(_)
            | OpKind::Shr(_) => (1, 1),
            OpKind::Mux => (3, 3),
            OpKind::Concat => (1, usize::MAX),
        }
    }

    /// `true` for operations whose kernel is a carry-propagating addition
    /// (the paper's "additive operations"): `Add`, `Sub`, `Neg`, `Mul`,
    /// `Abs`, ordered comparisons, `Max`, `Min`.
    pub fn is_additive(self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Neg
                | OpKind::Mul
                | OpKind::Abs
                | OpKind::Lt
                | OpKind::Le
                | OpKind::Gt
                | OpKind::Ge
                | OpKind::Max
                | OpKind::Min
        )
    }

    /// `true` for zero-δ bitwise/wiring logic.
    pub fn is_glue(self) -> bool {
        matches!(
            self,
            OpKind::Not
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Mux
                | OpKind::RedOr
                | OpKind::RedAnd
                | OpKind::Concat
                | OpKind::Shl(_)
                | OpKind::Shr(_)
        )
    }

    /// `true` for the 1-bit-result relational operations.
    pub fn is_comparison(self) -> bool {
        matches!(self, OpKind::Lt | OpKind::Le | OpKind::Gt | OpKind::Ge | OpKind::Eq | OpKind::Ne)
    }

    /// Short mnemonic used in textual dumps (`add`, `mul`, `mux`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Neg => "neg",
            OpKind::Mul => "mul",
            OpKind::Abs => "abs",
            OpKind::Lt => "lt",
            OpKind::Le => "le",
            OpKind::Gt => "gt",
            OpKind::Ge => "ge",
            OpKind::Eq => "eq",
            OpKind::Ne => "ne",
            OpKind::Max => "max",
            OpKind::Min => "min",
            OpKind::Shl(_) => "shl",
            OpKind::Shr(_) => "shr",
            OpKind::Not => "not",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Mux => "mux",
            OpKind::RedOr => "redor",
            OpKind::RedAnd => "redand",
            OpKind::Concat => "concat",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Shl(k) => write!(f, "shl<{k}>"),
            OpKind::Shr(k) => write!(f, "shr<{k}>"),
            other => write!(f, "{}", other.mnemonic()),
        }
    }
}

/// A node of the dataflow graph: one operation producing one value.
///
/// Operations are stored inside a [`Spec`](crate::spec::Spec) in topological
/// order (operands always reference earlier values); fields are read through
/// accessors to protect the spec's invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Operation {
    pub(crate) id: OpId,
    pub(crate) kind: OpKind,
    pub(crate) operands: Vec<Operand>,
    pub(crate) width: u32,
    pub(crate) signedness: Signedness,
    pub(crate) result: ValueId,
    pub(crate) name: Option<String>,
    /// The operation of the *source* spec this node derives from, when the
    /// spec was produced by a transformation (kernel extraction keeps
    /// provenance so fragmentation can report per-original-op results).
    pub(crate) origin: Option<OpId>,
}

impl Operation {
    /// This operation's id within its spec.
    pub fn id(&self) -> OpId {
        self.id
    }

    /// The operation kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The input operands, in kind-specific order.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// Result width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Operand interpretation.
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }

    /// The value this operation defines.
    pub fn result(&self) -> ValueId {
        self.result
    }

    /// Optional human-readable label (e.g. the variable name in the source).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Provenance: the source-spec operation this one derives from, if any.
    pub fn origin(&self) -> Option<OpId> {
        self.origin
    }

    /// The label used in diagnostics: the name when present, otherwise the id.
    pub fn label(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => self.id.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_table() {
        assert_eq!(OpKind::Add.arity(), (2, 3));
        assert_eq!(OpKind::Mux.arity(), (3, 3));
        assert_eq!(OpKind::Not.arity(), (1, 1));
        assert_eq!(OpKind::Concat.arity().0, 1);
    }

    #[test]
    fn families_are_disjoint() {
        let all = [
            OpKind::Add,
            OpKind::Sub,
            OpKind::Neg,
            OpKind::Mul,
            OpKind::Abs,
            OpKind::Lt,
            OpKind::Le,
            OpKind::Gt,
            OpKind::Ge,
            OpKind::Eq,
            OpKind::Ne,
            OpKind::Max,
            OpKind::Min,
            OpKind::Shl(1),
            OpKind::Shr(2),
            OpKind::Not,
            OpKind::And,
            OpKind::Or,
            OpKind::Xor,
            OpKind::Mux,
            OpKind::RedOr,
            OpKind::RedAnd,
            OpKind::Concat,
        ];
        for k in all {
            assert!(!(k.is_additive() && k.is_glue()), "{k} is both additive and glue");
        }
        // Eq/Ne are comparisons but not additive (XOR-based, no carry chain).
        assert!(OpKind::Eq.is_comparison() && !OpKind::Eq.is_additive());
        assert!(OpKind::Lt.is_comparison() && OpKind::Lt.is_additive());
    }

    #[test]
    fn display_forms() {
        assert_eq!(OpKind::Add.to_string(), "add");
        assert_eq!(OpKind::Shl(3).to_string(), "shl<3>");
        assert_eq!(OpKind::RedAnd.mnemonic(), "redand");
    }
}
