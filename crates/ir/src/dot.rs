//! Graphviz (DOT) emission of dataflow graphs.
//!
//! Renders a [`Spec`] as a `digraph` for visual inspection of benchmark
//! structure and of the transformations' output — handy when debugging a
//! fragmentation plan or documenting a workload.

use crate::spec::{Spec, ValueDef};
use crate::Operand;
use std::fmt::Write as _;

/// Options for [`emit`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DotOptions {
    /// Include glue (wiring/bitwise) operations; off by default to keep
    /// kernel graphs readable.
    pub show_glue: bool,
}

/// Renders `spec` as a Graphviz digraph.
///
/// Inputs are boxes, operations are ellipses (glue dashed, when shown),
/// outputs are double octagons. Edges through hidden glue are collapsed to
/// their producing non-glue sources.
///
/// # Examples
///
/// ```
/// use bittrans_ir::{dot, Spec};
///
/// let spec = Spec::parse(
///     "spec ex { input a: u8; input b: u8; s: u8 = a + b; output s; }",
/// ).unwrap();
/// let text = dot::emit(&spec, &dot::DotOptions::default());
/// assert!(text.contains("digraph ex"));
/// ```
pub fn emit(spec: &Spec, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(spec.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for &input in spec.inputs() {
        let v = spec.value(input);
        let _ = writeln!(
            out,
            "  v{} [shape=box, label=\"{}: u{}\"];",
            input.index(),
            spec.input_name(input),
            v.width()
        );
    }
    for op in spec.ops() {
        let hidden = op.kind().is_glue() && !options.show_glue;
        if hidden {
            continue;
        }
        let style = if op.kind().is_glue() { ", style=dashed" } else { "" };
        let _ = writeln!(
            out,
            "  v{} [label=\"{} {}\\nu{}\"{}];",
            op.result().index(),
            op.label(),
            op.kind(),
            op.width(),
            style
        );
        for operand in op.operands() {
            for src in visible_sources(spec, operand, options) {
                let _ = writeln!(out, "  v{src} -> v{};", op.result().index());
            }
        }
    }
    for (i, port) in spec.outputs().iter().enumerate() {
        let _ = writeln!(out, "  out{i} [shape=doubleoctagon, label=\"{}\"];", port.name());
        for src in visible_sources(spec, port.operand(), options) {
            let _ = writeln!(out, "  v{src} -> out{i};");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// The visible producers an operand connects to, tracing through hidden
/// glue.
fn visible_sources(spec: &Spec, operand: &Operand, options: &DotOptions) -> Vec<usize> {
    let Some(v) = operand.value_id() else {
        return Vec::new();
    };
    let visible = match spec.value(v).def() {
        ValueDef::Input { .. } => true,
        ValueDef::Op(op) => options.show_glue || !spec.op(*op).kind().is_glue(),
    };
    if visible {
        return vec![v.index()];
    }
    // Hidden glue: recurse into its operands (dedup to keep edges tidy).
    let ValueDef::Op(op) = spec.value(v).def() else {
        unreachable!("non-input hidden value has a defining op")
    };
    let mut sources: Vec<usize> =
        spec.op(*op).operands().iter().flat_map(|o| visible_sources(spec, o, options)).collect();
    sources.sort_unstable();
    sources.dedup();
    sources
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Spec {
        Spec::parse(
            "spec g { input a: u8; input b: u8;
              n: u8 = ~a;
              s: u8 = n + b;
              p: u16 = s * b;
              output p; }",
        )
        .unwrap()
    }

    #[test]
    fn hides_glue_by_default() {
        let text = emit(&spec(), &DotOptions::default());
        assert!(text.contains("digraph g {"));
        assert!(!text.contains("not"), "glue hidden:\n{text}");
        // The edge from a bypasses the inverter.
        assert!(text.contains("v0 -> v3"), "{text}");
    }

    #[test]
    fn shows_glue_on_request() {
        let text = emit(&spec(), &DotOptions { show_glue: true });
        assert!(text.contains("not"), "{text}");
        assert!(text.contains("style=dashed"));
    }

    #[test]
    fn outputs_are_rendered() {
        let text = emit(&spec(), &DotOptions::default());
        assert!(text.contains("doubleoctagon"));
        assert!(text.contains("out0"));
    }

    #[test]
    fn kinds_are_labelled() {
        let text = emit(&spec(), &DotOptions::default());
        assert!(text.contains("mul"));
        assert!(text.contains("u16"));
    }

    #[test]
    fn sanitizes_names() {
        let s = Spec::parse("spec a1 { input x: u4; output o = x + 1; }").unwrap();
        let text = emit(&s, &DotOptions::default());
        assert!(text.starts_with("digraph a1 {"));
    }
}
